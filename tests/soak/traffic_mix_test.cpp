// soak::generateTrafficMix: the schedule is a pure function of the config
// (same seed, same plans, on any platform), arrivals land exactly and follow
// the diurnal shape, and the tenant configs are plan-distinct by
// construction (distinct fingerprints -- the property the TrackCache keying
// and the CapacityModel's structural hit-rate prediction both lean on).
#include "soak/traffic_mix.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

namespace anno::soak {
namespace {

TrafficMixConfig smallConfig() {
  TrafficMixConfig cfg;
  cfg.sessions = 3000;
  cfg.daySeconds = 60.0;
  cfg.tenantCount = 8;
  return cfg;
}

TEST(TrafficMix, SameConfigSameSchedule) {
  const TrafficMix a = generateTrafficMix(smallConfig());
  const TrafficMix b = generateTrafficMix(smallConfig());
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.arrivalsPerHour, b.arrivalsPerHour);
}

TEST(TrafficMix, SeedChangesSchedule) {
  TrafficMixConfig other = smallConfig();
  other.seed ^= 0xDEADBEEF;
  EXPECT_NE(generateTrafficMix(smallConfig()).sessions,
            generateTrafficMix(other).sessions);
}

TEST(TrafficMix, ArrivalsLandExactlyAndSorted) {
  const TrafficMix mix = generateTrafficMix(smallConfig());
  ASSERT_EQ(mix.sessions.size(), smallConfig().sessions);
  EXPECT_TRUE(std::is_sorted(mix.sessions.begin(), mix.sessions.end(),
                             [](const SessionPlan& a, const SessionPlan& b) {
                               return a.arrivalTick < b.arrivalTick;
                             }));
  for (const SessionPlan& plan : mix.sessions) {
    EXPECT_LT(plan.arrivalTick, mix.ticks);
    EXPECT_LT(plan.deviceClass, mix.config.deviceClasses.size());
    EXPECT_LT(plan.contentProfile, mix.config.contentProfiles.size());
    EXPECT_LT(plan.tenant, mix.tenants.size());
    EXPECT_GT(plan.bandwidthScale, 0.0);
  }
  ASSERT_EQ(mix.arrivalsPerHour.size(), 24u);
  EXPECT_EQ(std::accumulate(mix.arrivalsPerHour.begin(),
                            mix.arrivalsPerHour.end(), std::size_t{0}),
            smallConfig().sessions);
}

TEST(TrafficMix, DiurnalShapePeaksAtPeakHour) {
  const TrafficMix mix = generateTrafficMix(smallConfig());
  // Default shape: peak at hour 20, trough 12 hours away at hour 8.
  EXPECT_GT(mix.arrivalsPerHour[20], 2 * mix.arrivalsPerHour[8]);
  EXPECT_GT(diurnalWeight(mix.config.diurnal, 20.0),
            diurnalWeight(mix.config.diurnal, 8.0));
}

TEST(TrafficMix, TenantFingerprintsDistinct) {
  const auto tenants = makeTenantConfigs(16);
  ASSERT_EQ(tenants.size(), 16u);
  std::set<std::uint64_t> fingerprints;
  for (const core::AnnotatorConfig& t : tenants) {
    fingerprints.insert(t.fingerprint());
  }
  EXPECT_EQ(fingerprints.size(), tenants.size())
      << "tenant configs must be plan-distinct";
}

TEST(TrafficMix, UniqueAnnotationKeysMatchBruteForce) {
  const TrafficMix mix = generateTrafficMix(smallConfig());
  std::set<std::pair<std::uint32_t, std::uint64_t>> keys;
  for (const SessionPlan& plan : mix.sessions) {
    keys.insert({plan.contentProfile,
                 mix.tenants[plan.tenant].fingerprint()});
  }
  EXPECT_EQ(mix.uniqueAnnotationKeys(), keys.size());
  EXPECT_GT(mix.uniqueAnnotationKeys(), 0u);
  EXPECT_LE(mix.uniqueAnnotationKeys(),
            mix.config.contentProfiles.size() * mix.tenants.size());
}

TEST(TrafficMix, LeaveAndFaultFractionsApproximatelyHonored) {
  const TrafficMix mix = generateTrafficMix(smallConfig());
  std::size_t leavers = 0;
  std::size_t faulted = 0;
  for (const SessionPlan& plan : mix.sessions) {
    if (plan.leaveAfterTicks != 0) ++leavers;
    if (plan.faultSeed != 0) ++faulted;
  }
  const auto n = static_cast<double>(mix.sessions.size());
  EXPECT_NEAR(static_cast<double>(leavers) / n, mix.config.leaveFraction,
              0.01);
  EXPECT_NEAR(static_cast<double>(faulted) / n, mix.config.faultFraction,
              0.01);
  EXPECT_GT(faulted, 0u);
}

TEST(TrafficMix, DefaultsFilledIn) {
  const TrafficMix mix = generateTrafficMix(smallConfig());
  EXPECT_EQ(mix.config.deviceClasses.size(), defaultDeviceClasses().size());
  EXPECT_FALSE(mix.config.contentProfiles.empty());
  EXPECT_EQ(mix.tenants.size(), smallConfig().tenantCount);
}

TEST(TrafficMix, DegenerateConfigsThrow) {
  TrafficMixConfig cfg = smallConfig();
  cfg.sessions = 0;
  EXPECT_THROW((void)generateTrafficMix(cfg), std::invalid_argument);
  cfg = smallConfig();
  cfg.tickSeconds = 0.0;
  EXPECT_THROW((void)generateTrafficMix(cfg), std::invalid_argument);
  cfg = smallConfig();
  cfg.daySeconds = -1.0;
  EXPECT_THROW((void)generateTrafficMix(cfg), std::invalid_argument);
  cfg = smallConfig();
  cfg.tenantCount = 0;
  EXPECT_THROW((void)generateTrafficMix(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace anno::soak
