// core::TrackCache under LONG-RUN churn: sustained ingest/re-ingest cycles
// against a tight byte budget, with live CachedTrackPtr holders outstanding
// across eviction waves.  Pins the lifecycle claims the fleet soak leans on:
// evicted values stay valid for their holders (the directory stops
// advertising them; the shared_ptr keeps them alive), fills stay equal to
// unique (clipId, fingerprint) keys when the budget allows, every miss runs
// exactly one fill, and the shard accounting survives concurrent churn.
// Runs under the ANNO_SANITIZE matrix via the `soak` ctest label.
#include "core/track_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace anno::core {
namespace {

/// A filled value with a verifiable payload tag and an explicit charge.
CachedTrackPtr makeValue(std::uint64_t tag, std::size_t bytes = 4096) {
  auto v = std::make_shared<CachedTrack>();
  v->track.clipName = "churn-" + std::to_string(tag);
  v->track.fps = static_cast<double>(tag);
  v->bytes = bytes;
  return v;
}

TEST(TrackCacheChurn, LiveHoldersSurviveEvictionWaves) {
  // Budget fits ~8 entries; we stream 200 through, holding every 10th.
  TrackCache cache({/*shardCount=*/1, /*byteBudget=*/8 * 4096});
  std::vector<std::pair<std::uint64_t, CachedTrackPtr>> held;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const TrackKey key{"clip-" + std::to_string(i), i};
    const CachedTrackPtr p =
        cache.getOrFill(key, [i] { return makeValue(i); });
    ASSERT_NE(p, nullptr);
    if (i % 10 == 0) held.emplace_back(i, p);
  }
  const TrackCacheStats stats = cache.stats();
  EXPECT_EQ(stats.fills, 200u);
  EXPECT_EQ(stats.misses, 200u);
  EXPECT_GT(stats.evictions, 150u) << "the budget must actually churn";
  EXPECT_LE(stats.bytes, 8u * 4096u);
  // Every held pointer -- including ones evicted dozens of waves ago --
  // still dereferences to its original payload.
  for (const auto& [tag, ptr] : held) {
    EXPECT_EQ(ptr->track.fps, static_cast<double>(tag));
    EXPECT_EQ(ptr->track.clipName, "churn-" + std::to_string(tag));
  }
}

TEST(TrackCacheChurn, EvictedKeyRefillsOnNextRequest) {
  TrackCache cache({/*shardCount=*/1, /*byteBudget=*/2 * 4096});
  int fillsOfA = 0;
  const TrackKey a{"a", 1};
  (void)cache.getOrFill(a, [&] { ++fillsOfA; return makeValue(1); });
  // Push A out of the 2-entry budget.
  (void)cache.getOrFill({"b", 2}, [] { return makeValue(2); });
  (void)cache.getOrFill({"c", 3}, [] { return makeValue(3); });
  EXPECT_EQ(cache.peek(a), nullptr) << "A should have been evicted";
  const CachedTrackPtr again =
      cache.getOrFill(a, [&] { ++fillsOfA; return makeValue(1); });
  EXPECT_EQ(fillsOfA, 2) << "an evicted key costs a fresh engine pass";
  EXPECT_EQ(again->track.fps, 1.0);
}

TEST(TrackCacheChurn, ReingestCyclesKeepFillsEqualToUniqueKeys) {
  // Unbounded budget: across re-ingest epochs (new revisioned clipIds, old
  // revision erased), fills must track unique keys exactly no matter how
  // many times each key is re-requested.
  TrackCache cache({/*shardCount=*/4, /*byteBudget=*/0});
  constexpr std::uint64_t kKeys = 32;
  constexpr std::uint64_t kEpochs = 20;
  constexpr int kRequestsPerEpoch = 3;
  for (std::uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    for (int pass = 0; pass < kRequestsPerEpoch; ++pass) {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        const TrackKey key{
            "clip-" + std::to_string(k) + "@rev" + std::to_string(epoch), k};
        const std::uint64_t tag = epoch * kKeys + k;
        const CachedTrackPtr p =
            cache.getOrFill(key, [tag] { return makeValue(tag, 256); });
        ASSERT_EQ(p->track.fps, static_cast<double>(tag));
      }
    }
    if (epoch > 0) {
      // Reclaim the previous revision (content replaced upstream).
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        (void)cache.eraseClip("clip-" + std::to_string(k) + "@rev" +
                              std::to_string(epoch - 1));
      }
    }
  }
  const TrackCacheStats stats = cache.stats();
  EXPECT_EQ(stats.fills, kEpochs * kKeys);
  EXPECT_EQ(stats.misses, stats.fills);
  EXPECT_EQ(stats.hits,
            kEpochs * kKeys * (kRequestsPerEpoch - 1));
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, kKeys) << "only the live revision remains";
}

TEST(TrackCacheChurn, ConcurrentChurnWithLiveHoldersAndErase) {
  // Sustained multi-thread churn against a tight budget: rotating keyspace,
  // live holders accumulated per thread, periodic eraseClip of a cold
  // revision.  The sanitizer matrix (`soak` label) turns this into a
  // lifetime/race check; the assertions pin the accounting invariants.
  TrackCache cache({/*shardCount=*/4, /*byteBudget=*/16 * 4096});
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 2000;
  constexpr std::uint64_t kKeySpace = 64;
  std::atomic<std::uint64_t> fillersRun{0};
  std::vector<std::thread> workers;
  std::vector<std::vector<std::pair<std::uint64_t, CachedTrackPtr>>> held(
      kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        // Each generation remaps the keyspace so entries keep churning.
        const std::uint64_t generation = i / 500;
        const std::uint64_t k =
            (i * 7 + static_cast<std::uint64_t>(t) * 13) % kKeySpace;
        const std::uint64_t tag = generation * kKeySpace + k;
        const TrackKey key{"gen-" + std::to_string(generation) + "-" +
                              std::to_string(k),
                          k};
        const CachedTrackPtr p = cache.getOrFill(key, [&fillersRun, tag] {
          fillersRun.fetch_add(1, std::memory_order_relaxed);
          return makeValue(tag);
        });
        if (p->track.fps != static_cast<double>(tag)) {
          ADD_FAILURE() << "payload mismatch for tag " << tag;
          return;
        }
        if (i % 97 == 0) held[static_cast<std::size_t>(t)].emplace_back(tag, p);
        if (i % 613 == 0 && generation > 0) {
          (void)cache.eraseClip("gen-" + std::to_string(generation - 1) +
                                "-" + std::to_string(k));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const TrackCacheStats stats = cache.stats();
  EXPECT_EQ(stats.fills, fillersRun.load());
  EXPECT_EQ(stats.misses, stats.fills)
      << "single-flight: every miss runs exactly one filler";
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread)
      << "every request resolves as exactly one hit or miss";
  EXPECT_GT(stats.evictions, 0u);
  // Holders taken across the whole run -- most of their entries long since
  // evicted or erased -- must all still read back intact.
  for (const auto& perThread : held) {
    for (const auto& [tag, ptr] : perThread) {
      EXPECT_EQ(ptr->track.fps, static_cast<double>(tag));
    }
  }
}

}  // namespace
}  // namespace anno::core
