// soak::runSoak: the fleet soak against the REAL serving stack at test
// scale.  Pins the determinism contract (same config -> byte-identical
// deterministic core, INCLUDING across deliveryThreads settings -- the
// scheduler's worker-pool tick must be indistinguishable from serial), the
// accounting invariants (every planned session joins and terminates, hour
// buckets and cells sum to the totals), and the fault-injection arm's
// liveness + never-throws contract.
#include "soak/driver.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>

#include "soak/traffic_mix.h"

namespace anno::soak {
namespace {

SoakConfig smallSoak() {
  SoakConfig cfg;
  cfg.mix.sessions = 400;
  cfg.mix.daySeconds = 30.0;
  cfg.mix.tenantCount = 6;
  return cfg;
}

TEST(SoakDriver, RunsEverySessionToTerminal) {
  const FleetSoakReport r = runSoak(smallSoak());
  EXPECT_EQ(r.sessionsPlanned, 400u);
  EXPECT_EQ(r.sessionsJoined, r.sessionsPlanned);
  EXPECT_EQ(r.sessionsCompleted + r.sessionsLeft, r.sessionsJoined);
  EXPECT_GT(r.peakConcurrentSessions, 0u);
  EXPECT_GT(r.ticks, 0u);
}

TEST(SoakDriver, ReportMetricsAreSane) {
  const FleetSoakReport r = runSoak(smallSoak());
  EXPECT_GT(r.servedHours, 0.0);
  EXPECT_GT(r.joulesSaved, 0.0);
  EXPECT_GT(r.wattsSavedPerMillionSessions, 0.0);
  EXPECT_GT(r.backlightSavingsFraction, 0.0);
  EXPECT_LT(r.backlightSavingsFraction, 1.0);
  EXPECT_GT(r.cacheHitRate, 0.0);
  EXPECT_LE(r.cacheHitRate, 1.0);
  EXPECT_GT(r.cacheFills, 0u);
  EXPECT_GE(r.startupP99Seconds, r.startupP50Seconds);
  EXPECT_GE(r.rebufferP99Seconds, r.rebufferP50Seconds);
  EXPECT_GT(r.bytesDelivered, 0u);
  EXPECT_GT(r.enginePassesPerServedHour, 0.0);
  // The cache makes engine passes a function of unique (profile, tenant)
  // keys, not session count -- the whole point of the sharing layer.
  EXPECT_LT(r.cacheFills, r.sessionsJoined);
}

TEST(SoakDriver, HourBucketsAndCellsSumToTotals) {
  const FleetSoakReport r = runSoak(smallSoak());
  ASSERT_EQ(r.hours.size(), 24u);
  std::size_t arrivals = 0;
  std::size_t completions = 0;
  for (const SoakHourBucket& h : r.hours) {
    arrivals += h.arrivals;
    completions += h.completions;
  }
  EXPECT_EQ(arrivals, r.sessionsJoined);
  EXPECT_EQ(completions, r.sessionsCompleted);
  std::uint64_t cellSessions = 0;
  double cellServed = 0.0;
  for (const SoakCell& c : r.cells) {
    cellSessions += c.sessions;
    cellServed += c.servedSeconds;
  }
  EXPECT_EQ(cellSessions, r.sessionsJoined);
  EXPECT_NEAR(cellServed / 3600.0, r.servedHours, 1e-9);
}

TEST(SoakDriver, DeterministicCoreByteIdentical) {
  const std::string a = deterministicJson(runSoak(smallSoak()));
  const std::string b = deterministicJson(runSoak(smallSoak()));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(SoakDriver, WorkerPoolDeliveryPinnedToSerial) {
  SoakConfig serial = smallSoak();
  serial.deliveryThreads = 1;
  SoakConfig pooled = smallSoak();
  pooled.deliveryThreads = 4;
  EXPECT_EQ(deterministicJson(runSoak(serial)),
            deterministicJson(runSoak(pooled)))
      << "parallel delivery must be bit-identical to single-threaded tick";
}

TEST(SoakDriver, WorkerPoolDeliveryPinnedUnderDeadlinePolicy) {
  SoakConfig serial = smallSoak();
  serial.policy = stream::SchedulePolicy::kDeadline;
  serial.serviceBudgetPerTick = 8;
  SoakConfig pooled = serial;
  pooled.deliveryThreads = 3;
  EXPECT_EQ(deterministicJson(runSoak(serial)),
            deterministicJson(runSoak(pooled)));
}

TEST(SoakDriver, FaultArmLiveAndClientNeverThrows) {
  const FleetSoakReport r = runSoak(smallSoak());
  EXPECT_GT(r.faultSessions, 0u);
  EXPECT_GT(r.faultMutationsApplied, 0u);
  EXPECT_EQ(r.faultSessions,
            r.faultDecodeOk + r.faultFallbacks + r.faultUndecodable)
      << "every damaged stream lands in exactly one outcome bucket";
  EXPECT_EQ(r.faultThrows, 0u)
      << "ClientSession::receive must degrade, never throw";
}

TEST(SoakDriver, FaultInjectionSwitchActuallyGates) {
  SoakConfig off = smallSoak();
  off.faultInjection = false;
  const FleetSoakReport r = runSoak(off);
  EXPECT_EQ(r.faultSessions, 0u);
  EXPECT_EQ(r.faultMutationsApplied, 0u);
}

TEST(SoakDriver, JsonCarriesDeterministicCoreAndMeasuredBlock) {
  const FleetSoakReport r = runSoak(smallSoak());
  const std::string det = deterministicJson(r);
  const std::string full = toJson(r, "  \"extra_marker\": true\n");
  EXPECT_NE(det.find("\"watts_saved_per_million_sessions\""),
            std::string::npos);
  EXPECT_NE(det.find("\"cache_hit_rate\""), std::string::npos);
  EXPECT_EQ(det.find("\"soak_wall_seconds\""), std::string::npos)
      << "wall clock must stay out of the determinism digest";
  EXPECT_NE(full.find("\"soak_wall_seconds\""), std::string::npos);
  EXPECT_NE(full.find("\"extra_marker\": true"), std::string::npos);
}

}  // namespace
}  // namespace anno::soak
