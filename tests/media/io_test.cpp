#include "media/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>

#include <fstream>

#include "media/luminance.h"
#include "media/rng.h"

namespace anno::media {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("annolight_io_test_" +
            std::to_string(std::random_device{}()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, PpmRoundtrip) {
  SplitMix64 rng(1);
  Image img(13, 7);
  for (Rgb8& p : img.pixels()) {
    p = Rgb8{static_cast<std::uint8_t>(rng.below(256)),
             static_cast<std::uint8_t>(rng.below(256)),
             static_cast<std::uint8_t>(rng.below(256))};
  }
  writePpm(img, path("a.ppm"));
  EXPECT_EQ(readPpm(path("a.ppm")), img);
}

TEST_F(IoTest, PgmRoundtrip) {
  SplitMix64 rng(2);
  GrayImage img(9, 11);
  for (std::uint8_t& p : img.pixels()) {
    p = static_cast<std::uint8_t>(rng.below(256));
  }
  writePgm(img, path("a.pgm"));
  EXPECT_EQ(readPgm(path("a.pgm")), img);
}

TEST_F(IoTest, WriteEmptyThrows) {
  EXPECT_THROW(writePpm(Image{}, path("x.ppm")), std::invalid_argument);
  EXPECT_THROW(writePgm(GrayImage{}, path("x.pgm")), std::invalid_argument);
}

TEST_F(IoTest, ReadMissingFileThrows) {
  EXPECT_THROW((void)readPpm(path("missing.ppm")), std::runtime_error);
  EXPECT_THROW((void)readPgm(path("missing.pgm")), std::runtime_error);
}

TEST_F(IoTest, ReadWrongMagicThrows) {
  GrayImage g(2, 2, 7);
  writePgm(g, path("g.pgm"));
  EXPECT_THROW((void)readPpm(path("g.pgm")), std::runtime_error);
}

TEST_F(IoTest, Y4mRoundtripLosslessInYcbcr) {
  // RGB<->YCbCr is lossy in the last bit, so compare luma planes, which
  // round-trip within a code value.
  SplitMix64 rng(3);
  VideoClip clip;
  clip.name = "t";
  clip.fps = 12.5;
  for (int i = 0; i < 3; ++i) {
    Image frame(16, 8);
    for (Rgb8& p : frame.pixels()) {
      p = Rgb8{static_cast<std::uint8_t>(rng.below(256)),
               static_cast<std::uint8_t>(rng.below(256)),
               static_cast<std::uint8_t>(rng.below(256))};
    }
    clip.frames.push_back(std::move(frame));
  }
  writeY4m(clip, path("t.y4m"));
  const VideoClip back = readY4m(path("t.y4m"));
  ASSERT_EQ(back.frames.size(), 3u);
  EXPECT_NEAR(back.fps, 12.5, 1e-9);
  EXPECT_EQ(back.width(), 16);
  EXPECT_EQ(back.height(), 8);
  for (std::size_t i = 0; i < 3; ++i) {
    const GrayImage a = lumaPlane(clip.frames[i]);
    const GrayImage b = lumaPlane(back.frames[i]);
    for (std::size_t px = 0; px < a.pixelCount(); ++px) {
      EXPECT_NEAR(a.pixels()[px], b.pixels()[px], 2.0);
    }
  }
}

TEST_F(IoTest, Y4mHeaderIsStandard) {
  VideoClip clip;
  clip.fps = 12.0;
  clip.frames.assign(1, Image(4, 4));
  writeY4m(clip, path("h.y4m"));
  std::ifstream f(path("h.y4m"));
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "YUV4MPEG2 W4 H4 F12000:1000 Ip A1:1 C444");
}

TEST_F(IoTest, Y4mValidation) {
  EXPECT_THROW((void)readY4m(path("missing.y4m")), std::runtime_error);
  VideoClip empty;
  EXPECT_THROW(writeY4m(empty, path("x.y4m")), std::invalid_argument);
  // A PGM is not a Y4M.
  writePgm(GrayImage(2, 2, 1), path("not.y4m"));
  EXPECT_THROW((void)readY4m(path("not.y4m")), std::runtime_error);
}

TEST_F(IoTest, CsvRendering) {
  CsvWriter csv({"clip", "q", "savings"});
  csv.addRow(std::vector<std::string>{"themovie", "0.05", "0.62"});
  csv.addRow(std::vector<double>{1.0, 0.1, 0.5});
  const std::string s = csv.str();
  EXPECT_EQ(s, "clip,q,savings\nthemovie,0.05,0.62\n1,0.1,0.5\n");
}

TEST_F(IoTest, CsvValidation) {
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.addRow(std::vector<std::string>{"1"}),
               std::invalid_argument);
}

TEST_F(IoTest, CsvSaveWritesFile) {
  CsvWriter csv({"x"});
  csv.addRow(std::vector<double>{42.0});
  csv.save(path("t.csv"));
  EXPECT_TRUE(std::filesystem::exists(path("t.csv")));
}

}  // namespace
}  // namespace anno::media
