#include "media/image.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace anno::media {
namespace {

TEST(Image, DefaultIsEmpty) {
  Image img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.width(), 0);
  EXPECT_EQ(img.height(), 0);
  EXPECT_EQ(img.pixelCount(), 0u);
}

TEST(Image, ConstructionFills) {
  Image img(4, 3, Rgb8{1, 2, 3});
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.pixelCount(), 12u);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(img(x, y), (Rgb8{1, 2, 3}));
    }
  }
}

TEST(Image, InvalidDimensionsThrow) {
  EXPECT_THROW(Image(0, 5), std::invalid_argument);
  EXPECT_THROW(Image(5, 0), std::invalid_argument);
  EXPECT_THROW(Image(-1, 5), std::invalid_argument);
  EXPECT_THROW(Image(Image::kMaxDim + 1, 5), std::invalid_argument);
}

TEST(Image, RowMajorAddressing) {
  Image img(3, 2);
  img(2, 1) = Rgb8{9, 9, 9};
  EXPECT_EQ(img.pixels()[1 * 3 + 2], (Rgb8{9, 9, 9}));
}

TEST(Image, CheckedAccessThrows) {
  Image img(3, 2);
  EXPECT_NO_THROW((void)img.at(2, 1));
  EXPECT_THROW((void)img.at(3, 0), std::out_of_range);
  EXPECT_THROW((void)img.at(0, 2), std::out_of_range);
  EXPECT_THROW((void)img.at(-1, 0), std::out_of_range);
}

TEST(Image, EqualityComparesPixels) {
  Image a(2, 2, Rgb8{5, 5, 5});
  Image b(2, 2, Rgb8{5, 5, 5});
  EXPECT_EQ(a, b);
  b(1, 1) = Rgb8{0, 0, 0};
  EXPECT_NE(a, b);
}

TEST(GrayImage, ConstructionAndAccess) {
  GrayImage img(4, 2, 42);
  EXPECT_EQ(img.pixelCount(), 8u);
  EXPECT_EQ(img(3, 1), 42);
  img(0, 0) = 7;
  EXPECT_EQ(img.at(0, 0), 7);
  EXPECT_THROW((void)img.at(4, 0), std::out_of_range);
  EXPECT_THROW(GrayImage(0, 1), std::invalid_argument);
}

TEST(Resize, IdentityWhenSameSize) {
  Image img(8, 6);
  img(3, 2) = Rgb8{10, 20, 30};
  img(7, 5) = Rgb8{200, 100, 50};
  EXPECT_EQ(resizeBilinear(img, 8, 6), img);
}

TEST(Resize, UniformStaysUniform) {
  const Image img(16, 12, Rgb8{77, 88, 99});
  for (auto [w, h] : {std::pair{8, 6}, {32, 24}, {5, 17}}) {
    const Image out = resizeBilinear(img, w, h);
    EXPECT_EQ(out.width(), w);
    EXPECT_EQ(out.height(), h);
    for (const Rgb8& p : out.pixels()) {
      EXPECT_EQ(p, (Rgb8{77, 88, 99})) << w << "x" << h;
    }
  }
}

TEST(Resize, DownscalePreservesMeanApproximately) {
  Image img(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      const auto v = static_cast<std::uint8_t>((x * 255) / 31);
      img(x, y) = Rgb8{v, v, v};
    }
  }
  const Image small = resizeBilinear(img, 8, 8);
  double meanBig = 0.0, meanSmall = 0.0;
  for (const Rgb8& p : img.pixels()) meanBig += p.r;
  for (const Rgb8& p : small.pixels()) meanSmall += p.r;
  meanBig /= static_cast<double>(img.pixelCount());
  meanSmall /= static_cast<double>(small.pixelCount());
  EXPECT_NEAR(meanSmall, meanBig, 4.0);
}

TEST(Resize, UpscaleInterpolatesBetweenNeighbours) {
  Image img(2, 1);
  img(0, 0) = Rgb8{0, 0, 0};
  img(1, 0) = Rgb8{200, 200, 200};
  const Image wide = resizeBilinear(img, 4, 1);
  // Interior samples must be strictly between the endpoints.
  EXPECT_GT(wide(1, 0).r, 0);
  EXPECT_LT(wide(2, 0).r, 200);
  EXPECT_LE(wide(1, 0).r, wide(2, 0).r);
}

TEST(Resize, Validation) {
  EXPECT_THROW((void)resizeBilinear(Image{}, 4, 4), std::invalid_argument);
  Image img(4, 4);
  EXPECT_THROW((void)resizeBilinear(img, 0, 4), std::invalid_argument);
  EXPECT_THROW((void)resizeBilinear(img, 4, -1), std::invalid_argument);
}

TEST(GrayImage, Equality) {
  GrayImage a(2, 2, 1);
  GrayImage b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(0, 1) = 2;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace anno::media
