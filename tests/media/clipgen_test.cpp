#include "media/clipgen.h"

#include <gtest/gtest.h>

#include "media/histogram.h"
#include "media/luminance.h"

namespace anno::media {
namespace {

TEST(ClipGen, DeterministicForProfile) {
  const VideoClip a = generatePaperClip(PaperClip::kCatwoman, 0.02, 32, 24);
  const VideoClip b = generatePaperClip(PaperClip::kCatwoman, 0.02, 32, 24);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i], b.frames[i]) << "frame " << i;
  }
}

TEST(ClipGen, FrameCountMatchesDuration) {
  ClipProfile p;
  p.name = "t";
  p.fps = 10.0;
  p.scenes.push_back(SceneSpec{2.0});
  p.scenes.push_back(SceneSpec{3.0});
  const VideoClip clip = generateClip(p);
  EXPECT_EQ(clip.frames.size(), 50u);
  EXPECT_NEAR(clip.durationSeconds(), 5.0, 1e-9);
}

TEST(ClipGen, ValidationErrors) {
  ClipProfile p;
  p.name = "bad";
  EXPECT_THROW((void)generateClip(p), std::invalid_argument);  // no scenes
  p.scenes.push_back(SceneSpec{1.0});
  p.fps = 0.0;
  EXPECT_THROW((void)generateClip(p), std::invalid_argument);
  EXPECT_THROW((void)paperClipProfile(PaperClip::kIceAge, 0.0),
               std::invalid_argument);
  SplitMix64 rng(1);
  EXPECT_THROW((void)renderSceneFrame(SceneSpec{}, 0, 8, 0.0, rng),
               std::invalid_argument);
}

TEST(ClipGen, AllTenPaperClipsPresent) {
  const auto clips = allPaperClips();
  EXPECT_EQ(clips.size(), static_cast<std::size_t>(kPaperClipCount));
  EXPECT_EQ(paperClipName(clips.front()), "themovie");
  EXPECT_EQ(paperClipName(clips.back()), "theincredibles-tlr2");
}

TEST(ClipGen, SceneMaxLumaIsStableWithinScene) {
  SceneSpec scene;
  scene.backgroundLuma = 60;
  scene.backgroundSpread = 25;
  scene.highlightFraction = 0.01;
  scene.highlightLuma = 245;
  scene.flicker = 2.0;
  SplitMix64 rng(33);
  std::uint8_t lo = 255, hi = 0;
  for (int i = 0; i < 24; ++i) {
    const Image f = renderSceneFrame(scene, 64, 48, i / 12.0, rng);
    const std::uint8_t m = analyzeLuminance(f).maxLuma;
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  // Paper's scene criterion: <10% variation within a scene.
  EXPECT_LT(static_cast<double>(hi - lo) / hi, 0.10);
}

TEST(ClipGen, HighlightsRaiseMaxLumaNotMean) {
  SceneSpec dark;
  dark.backgroundLuma = 50;
  dark.backgroundSpread = 20;
  dark.highlightFraction = 0.0;
  SceneSpec spots = dark;
  spots.highlightFraction = 0.005;
  spots.highlightLuma = 250;
  SplitMix64 rng(44);
  const Image plain = renderSceneFrame(dark, 96, 72, 0.0, rng);
  SplitMix64 rng2(44);
  const Image lit = renderSceneFrame(spots, 96, 72, 0.0, rng2);
  const FrameLuminance pl = analyzeLuminance(plain);
  const FrameLuminance ll = analyzeLuminance(lit);
  EXPECT_GT(ll.maxLuma, pl.maxLuma + 100);     // spots hit the top
  EXPECT_NEAR(ll.meanLuma, pl.meanLuma, 6.0);  // sparse: mean barely moves
}

TEST(ClipGen, DarkClipsAreDarkerThanIceAge) {
  const auto meanLuma = [](PaperClip c) {
    const VideoClip v = generatePaperClip(c, 0.05, 48, 36);
    double sum = 0.0;
    for (const Image& f : v.frames) sum += analyzeLuminance(f).meanLuma;
    return sum / static_cast<double>(v.frames.size());
  };
  const double rotk = meanLuma(PaperClip::kReturnOfTheKing);
  const double iceAge = meanLuma(PaperClip::kIceAge);
  const double hunter = meanLuma(PaperClip::kHunterSubres);
  EXPECT_LT(rotk, iceAge - 60.0);
  EXPECT_LT(rotk, hunter - 40.0);
}

TEST(ClipGen, IceAgeMassConcentratedHigh) {
  // Paper: "pixels are concentrated in the high luminance range" for
  // ice_age, defeating the clipping budget.
  const VideoClip v = generatePaperClip(PaperClip::kIceAge, 0.05, 48, 36);
  Histogram h;
  for (const Image& f : v.frames) h.accumulate(Histogram::ofImage(f));
  EXPECT_GT(h.averagePoint(), 150.0);
  // Even clipping 20% of mass barely lowers the ceiling.
  EXPECT_GT(static_cast<int>(h.quantile(0.80)), 160);
}

TEST(ClipGen, DurationScaleShrinksClip) {
  const VideoClip small = generatePaperClip(PaperClip::kOfficeXp, 0.02, 32, 24);
  const VideoClip large = generatePaperClip(PaperClip::kOfficeXp, 0.08, 32, 24);
  EXPECT_LT(small.frames.size(), large.frames.size());
}

TEST(ClipGen, ResolutionHonored) {
  const VideoClip v = generatePaperClip(PaperClip::kShrek2, 0.01, 40, 30);
  EXPECT_EQ(v.width(), 40);
  EXPECT_EQ(v.height(), 30);
}

class AllClipsProfile : public ::testing::TestWithParam<PaperClip> {};

TEST_P(AllClipsProfile, GeneratesValidClip) {
  const VideoClip v = generatePaperClip(GetParam(), 0.02, 32, 24);
  EXPECT_NO_THROW(validateClip(v));
  EXPECT_EQ(v.name, paperClipName(GetParam()));
  EXPECT_GT(v.frames.size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    PaperClips, AllClipsProfile, ::testing::ValuesIn(allPaperClips()),
    [](const ::testing::TestParamInfo<PaperClip>& paramInfo) {
      std::string n = paperClipName(paramInfo.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace anno::media
