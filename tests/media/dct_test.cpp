#include "media/dct.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "media/rng.h"

namespace anno::media {
namespace {

TEST(Dct, ConstantBlockHasOnlyDc) {
  Block8x8 spatial;
  spatial.fill(100.0);
  const Block8x8 freq = forwardDct(spatial);
  // Orthonormal DCT: DC = 8 * value for a constant block.
  EXPECT_NEAR(freq[0], 800.0, 1e-9);
  for (int i = 1; i < 64; ++i) {
    EXPECT_NEAR(freq[i], 0.0, 1e-9) << "coefficient " << i;
  }
}

TEST(Dct, RoundtripIsIdentity) {
  SplitMix64 rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    Block8x8 spatial;
    for (double& v : spatial) v = rng.uniform(-128.0, 127.0);
    const Block8x8 back = inverseDct(forwardDct(spatial));
    for (int i = 0; i < 64; ++i) {
      EXPECT_NEAR(back[i], spatial[i], 1e-9);
    }
  }
}

TEST(Dct, PreservesEnergy) {
  // Orthonormal transform: sum of squares is invariant (Parseval).
  SplitMix64 rng(22);
  Block8x8 spatial;
  for (double& v : spatial) v = rng.uniform(-100.0, 100.0);
  const Block8x8 freq = forwardDct(spatial);
  const auto energy = [](const Block8x8& b) {
    return std::inner_product(b.begin(), b.end(), b.begin(), 0.0);
  };
  EXPECT_NEAR(energy(spatial), energy(freq), 1e-6);
}

TEST(Dct, LinearityProperty) {
  SplitMix64 rng(23);
  Block8x8 a, b, sum;
  for (int i = 0; i < 64; ++i) {
    a[i] = rng.uniform(-50.0, 50.0);
    b[i] = rng.uniform(-50.0, 50.0);
    sum[i] = a[i] + b[i];
  }
  const Block8x8 fa = forwardDct(a);
  const Block8x8 fb = forwardDct(b);
  const Block8x8 fsum = forwardDct(sum);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(fsum[i], fa[i] + fb[i], 1e-9);
  }
}

TEST(Zigzag, IsPermutationOf64) {
  const auto& zz = zigzagOrder();
  std::set<int> seen(zz.begin(), zz.end());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 63);
}

TEST(Zigzag, JpegPrefix) {
  // First entries of the JPEG zigzag: 0, (0,1), (1,0), (2,0), (1,1), (0,2).
  const auto& zz = zigzagOrder();
  EXPECT_EQ(zz[0], 0);
  EXPECT_EQ(zz[1], 1);       // row 0, col 1
  EXPECT_EQ(zz[2], 8);       // row 1, col 0
  EXPECT_EQ(zz[3], 16);      // row 2, col 0
  EXPECT_EQ(zz[4], 9);       // row 1, col 1
  EXPECT_EQ(zz[5], 2);       // row 0, col 2
  EXPECT_EQ(zz[63], 63);     // last is bottom-right
}

TEST(Dct, HorizontalCosineConcentratesInOneCoefficient) {
  // A pure horizontal basis function should produce (almost) one non-zero
  // frequency-domain coefficient.
  constexpr double kPi = 3.14159265358979323846;
  Block8x8 spatial;
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      spatial[y * 8 + x] = std::cos((2 * x + 1) * 3 * kPi / 16.0);
    }
  }
  const Block8x8 freq = forwardDct(spatial);
  // Expect energy only at (j=0, k=3).
  for (int j = 0; j < 8; ++j) {
    for (int k = 0; k < 8; ++k) {
      if (j == 0 && k == 3) {
        EXPECT_GT(std::abs(freq[j * 8 + k]), 1.0);
      } else {
        EXPECT_NEAR(freq[j * 8 + k], 0.0, 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace anno::media
