// Property tests for the SIMD kernel layer: every available dispatch level
// must produce output BYTE-IDENTICAL to the scalar reference, on every
// input shape that exercises a different code path -- ragged tails (sizes
// not divisible by any vector width), empty and 1-pixel frames, full
// saturation, and randomized content.  See kernels.h for the contract.
#include "media/kernels/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "compensate/compensate.h"
#include "media/histogram.h"
#include "media/image.h"
#include "media/luminance.h"
#include "media/pixel.h"
#include "media/rng.h"

namespace anno::media::kernels {
namespace {

// Sizes chosen to straddle every vector width in play (2, 4, 16, 32
// pixels per iteration) plus their overread guards.
constexpr std::size_t kSizes[] = {0,  1,  2,  3,  4,   5,   6,   7,  8,
                                  15, 16, 17, 31, 32,  33,  47,  48, 49,
                                  63, 64, 95, 97, 255, 256, 1000};

Image randomImage(std::size_t n, std::uint64_t seed) {
  // Histogram/EMD inputs live on frames; fake a 1-row frame of n pixels.
  Image img = n == 0 ? Image{} : Image(static_cast<int>(n), 1);
  SplitMix64 rng(seed);
  for (Rgb8& p : img.pixels()) {
    const std::uint64_t r = rng.next();
    p = Rgb8{static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(r >> 8),
             static_cast<std::uint8_t>(r >> 16)};
  }
  return img;
}

GrayImage randomGray(std::size_t n, std::uint64_t seed) {
  GrayImage img = n == 0 ? GrayImage{} : GrayImage(static_cast<int>(n), 1);
  SplitMix64 rng(seed);
  for (std::uint8_t& p : img.pixels()) {
    p = static_cast<std::uint8_t>(rng.next());
  }
  return img;
}

/// Straight-line per-pixel reference, written independently of the kernel
/// layer's shared helpers.
FrameProfile referenceProfile(std::span<const Rgb8> px) {
  FrameProfile out;
  int mn = 255;
  int mx = 0;
  for (const Rgb8& p : px) {
    const std::uint8_t y = luma8(p);
    ++out.hist[y];
    out.lumaSum += y;
    mn = std::min<int>(mn, y);
    mx = std::max<int>(mx, y);
  }
  out.minLuma = px.empty() ? 0 : static_cast<std::uint8_t>(mn);
  out.maxLuma = px.empty() ? 0 : static_cast<std::uint8_t>(mx);
  return out;
}

void expectProfileEq(const FrameProfile& got, const FrameProfile& want,
                     const char* what, Level level, std::size_t n) {
  SCOPED_TRACE(testing::Message() << what << " level=" << levelName(level)
                                  << " n=" << n);
  EXPECT_EQ(got.hist, want.hist);
  EXPECT_EQ(got.lumaSum, want.lumaSum);
  EXPECT_EQ(got.minLuma, want.minLuma);
  EXPECT_EQ(got.maxLuma, want.maxLuma);
}

TEST(Kernels, ScalarAlwaysAvailable) {
  EXPECT_TRUE(available(Level::kScalar));
  ASSERT_NE(tableFor(Level::kScalar), nullptr);
  EXPECT_EQ(tableFor(Level::kScalar)->level, Level::kScalar);
  EXPECT_FALSE(availableLevels().empty());
  EXPECT_EQ(availableLevels().front(), Level::kScalar);
}

TEST(Kernels, LevelNamesRoundTrip) {
  for (Level level : {Level::kScalar, Level::kSse2, Level::kAvx2,
                      Level::kNeon}) {
    EXPECT_EQ(parseLevel(levelName(level)), level);
  }
  EXPECT_EQ(parseLevel("mmx"), std::nullopt);
  EXPECT_EQ(parseLevel(""), std::nullopt);
}

TEST(Kernels, ProfileRgbMatchesScalarOnAllShapes) {
  for (Level level : availableLevels()) {
    const KernelTable* table = tableFor(level);
    ASSERT_NE(table, nullptr);
    for (std::size_t n : kSizes) {
      const Image img = randomImage(n, 0xA11CE + n);
      const FrameProfile want = referenceProfile(img.pixels());
      FrameProfile got;
      table->profileRgb(img.pixels().data(), n, got);
      expectProfileEq(got, want, "profileRgb", level, n);
    }
  }
}

TEST(Kernels, ProfileRgbSaturatedAndFlat) {
  for (Level level : availableLevels()) {
    const KernelTable* table = tableFor(level);
    for (std::size_t n : {1u, 31u, 64u, 333u}) {
      Image img(static_cast<int>(n), 1, Rgb8{255, 255, 255});
      FrameProfile got;
      table->profileRgb(img.pixels().data(), n, got);
      EXPECT_EQ(got.hist[255], n);
      EXPECT_EQ(got.lumaSum, 255u * n);
      EXPECT_EQ(got.minLuma, 255);
      EXPECT_EQ(got.maxLuma, 255);
    }
  }
}

TEST(Kernels, ProfileGrayMatchesScalarOnAllShapes) {
  const KernelTable* scalar = tableFor(Level::kScalar);
  for (Level level : availableLevels()) {
    const KernelTable* table = tableFor(level);
    for (std::size_t n : kSizes) {
      const GrayImage img = randomGray(n, 0xBEEF + n);
      FrameProfile want;
      scalar->profileGray(img.pixels().data(), n, want);
      FrameProfile got;
      table->profileGray(img.pixels().data(), n, got);
      expectProfileEq(got, want, "profileGray", level, n);
    }
  }
}

TEST(Kernels, MaxChannelHistogramMatchesScalar) {
  const KernelTable* scalar = tableFor(Level::kScalar);
  for (Level level : availableLevels()) {
    const KernelTable* table = tableFor(level);
    for (std::size_t n : kSizes) {
      const Image img = randomImage(n, 0xC0FFEE + n);
      std::uint64_t want[256] = {};
      std::uint64_t got[256] = {};
      scalar->maxChannelHistogram(img.pixels().data(), n, want);
      table->maxChannelHistogram(img.pixels().data(), n, got);
      for (int v = 0; v < 256; ++v) {
        ASSERT_EQ(got[v], want[v]) << levelName(level) << " n=" << n
                                   << " bin=" << v;
      }
    }
  }
}

TEST(Kernels, MaxChannelHistogramMatchesIndependentReference) {
  // MatchesScalar above compares dispatch variants against each other,
  // which is vacuous while every level delegates to one shared helper --
  // if that helper miscounted, all levels would agree on the wrong answer.
  // This case pins every level against an independent per-pixel
  // max(r,g,b) walk, so a future vectorized variant (and the current
  // scalar one) is checked against ground truth, not against itself.
  for (Level level : availableLevels()) {
    const KernelTable* table = tableFor(level);
    for (std::size_t n : kSizes) {
      const Image img = randomImage(n, 0x3A9C + n);
      std::uint64_t want[256] = {};
      for (const Rgb8& p : img.pixels()) {
        ++want[std::max({p.r, p.g, p.b})];
      }
      std::uint64_t got[256] = {};
      table->maxChannelHistogram(img.pixels().data(), n, got);
      for (int v = 0; v < 256; ++v) {
        ASSERT_EQ(got[v], want[v])
            << levelName(level) << " n=" << n << " bin=" << v;
      }
    }
  }
}

TEST(Kernels, MaxChannelHistogramAccumulatesIntoExistingBins) {
  // The kernel contract is ACCUMULATE, not assign: Histogram::ofMaxChannel
  // hands over a zeroed array, but callers may merge several pixel ranges
  // into one histogram.  A vectorized variant that folds its banked
  // counters with an assignment would pass every zero-start case above and
  // still be wrong here.
  for (Level level : availableLevels()) {
    const KernelTable* table = tableFor(level);
    for (std::size_t n : {5u, 16u, 33u, 250u}) {
      const Image img = randomImage(n, 0xADD + n);
      std::uint64_t want[256];
      std::uint64_t got[256];
      for (int v = 0; v < 256; ++v) {
        want[v] = got[v] = 7u * static_cast<unsigned>(v) + 1;
      }
      for (const Rgb8& p : img.pixels()) {
        ++want[std::max({p.r, p.g, p.b})];
      }
      table->maxChannelHistogram(img.pixels().data(), n, got);
      for (int v = 0; v < 256; ++v) {
        ASSERT_EQ(got[v], want[v])
            << levelName(level) << " n=" << n << " bin=" << v;
      }
    }
  }
}

TEST(Kernels, MaxChannelHistogramChannelDominancePatterns) {
  // Crafted frames where one known channel holds the maximum at every
  // pixel: catches a deinterleave that samples the wrong byte lane, which
  // random content can mask when maxima land on mixed channels.
  for (Level level : availableLevels()) {
    const KernelTable* table = tableFor(level);
    for (int dom = 0; dom < 3; ++dom) {
      const std::size_t n = 129;  // ragged for every vector width in play
      Image img(static_cast<int>(n), 1);
      std::uint64_t want[256] = {};
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t hi = static_cast<std::uint8_t>(100 + i % 156);
        const std::uint8_t lo = static_cast<std::uint8_t>(i % 100);
        Rgb8 p{lo, lo, lo};
        (dom == 0 ? p.r : dom == 1 ? p.g : p.b) = hi;
        img.pixels()[i] = p;
        ++want[hi];
      }
      std::uint64_t got[256] = {};
      table->maxChannelHistogram(img.pixels().data(), n, got);
      for (int v = 0; v < 256; ++v) {
        ASSERT_EQ(got[v], want[v])
            << levelName(level) << " dom=" << dom << " bin=" << v;
      }
    }
  }
}

TEST(Kernels, LumaPlaneMatchesPerPixelLuma8) {
  for (Level level : availableLevels()) {
    const KernelTable* table = tableFor(level);
    for (std::size_t n : kSizes) {
      const Image img = randomImage(n, 0x7E57 + n);
      std::vector<std::uint8_t> got(n + 1, 0xEE);  // +1 canary
      table->lumaPlane(img.pixels().data(), n, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], luma8(img.pixels()[i]))
            << levelName(level) << " n=" << n << " i=" << i;
      }
      EXPECT_EQ(got[n], 0xEE) << levelName(level) << " wrote past the end";
    }
  }
}

TEST(Kernels, HistAccumulateMatchesScalar) {
  SplitMix64 rng(0xACC);
  std::uint64_t src[256];
  for (std::uint64_t& c : src) c = rng.next() >> 30;
  for (Level level : availableLevels()) {
    std::uint64_t want[256];
    std::uint64_t got[256];
    for (int v = 0; v < 256; ++v) want[v] = got[v] = rng.next() >> 40;
    tableFor(Level::kScalar)->histAccumulate(want, src);
    tableFor(level)->histAccumulate(got, src);
    for (int v = 0; v < 256; ++v) {
      ASSERT_EQ(got[v], want[v]) << levelName(level) << " bin=" << v;
    }
  }
}

TEST(Kernels, ScalePixelsMatchesPerPixelScale) {
  const double ks[] = {1.0, 1.2, 1.7320508075688772, 2.5, 8.0, 300.0};
  for (Level level : availableLevels()) {
    const KernelTable* table = tableFor(level);
    for (std::size_t n : kSizes) {
      const Image img = randomImage(n, 0x5CA1E + n);
      for (double k : ks) {
        std::vector<Rgb8> got(n + 1, Rgb8{9, 9, 9});  // +1 canary
        table->scalePixels(img.pixels().data(), n, k, got.data());
        for (std::size_t i = 0; i < n; ++i) {
          const Rgb8 want = scale(img.pixels()[i], k);
          ASSERT_EQ(got[i].r, want.r) << levelName(level) << " k=" << k;
          ASSERT_EQ(got[i].g, want.g) << levelName(level) << " k=" << k;
          ASSERT_EQ(got[i].b, want.b) << levelName(level) << " k=" << k;
        }
        EXPECT_EQ(got[n].r, 9) << levelName(level) << " wrote past the end";
      }
    }
  }
}

TEST(Kernels, CountClippedMatchesPerPixelPredicate) {
  const double ks[] = {0.0, 1.0, 1.00001, 1.5, 2.0, 4.0, 128.0, 1e9};
  for (Level level : availableLevels()) {
    const KernelTable* table = tableFor(level);
    for (std::size_t n : kSizes) {
      const Image img = randomImage(n, 0xC11B + n);
      for (double k : ks) {
        std::size_t want = 0;
        for (const Rgb8& p : img.pixels()) {
          if (clipsWhenScaled(p, k)) ++want;
        }
        ASSERT_EQ(table->countClipped(img.pixels().data(), n, k), want)
            << levelName(level) << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(Kernels, ClipThresholdMatchesPredicateEverywhere) {
  // The threshold IS the predicate: for every k, code c clips iff
  // c >= clipThreshold(k).
  const double ks[] = {0.0, 0.5, 1.0, 255.0 / 254.0, 1.5,
                       2.0, 17.0, 255.0, 256.0, 1e12};
  for (double k : ks) {
    const int t = clipThreshold(k);
    for (int c = 0; c <= 255; ++c) {
      EXPECT_EQ(static_cast<double>(c) * k > 255.0, c >= t)
          << "k=" << k << " c=" << c;
    }
  }
}

TEST(Kernels, TailScansMatchScalar) {
  SplitMix64 rng(0x7A11);
  for (int trial = 0; trial < 8; ++trial) {
    std::uint64_t counts[256] = {};
    std::uint64_t total = 0;
    for (std::uint64_t& c : counts) {
      c = trial == 0 ? 0 : rng.next() >> (40 + (trial % 3) * 8);
      total += c;
    }
    const std::uint64_t budgets[] = {0, 1, total / 100, total / 10,
                                     total / 2, total, total + 1};
    const KernelTable* scalar = tableFor(Level::kScalar);
    for (Level level : availableLevels()) {
      const KernelTable* table = tableFor(level);
      for (std::uint64_t b : budgets) {
        EXPECT_EQ(table->tailBudgetLevel(counts, b),
                  scalar->tailBudgetLevel(counts, b));
        EXPECT_EQ(table->lowPoint(counts, b), scalar->lowPoint(counts, b));
        EXPECT_EQ(table->highPoint(counts, b), scalar->highPoint(counts, b));
      }
    }
  }
}

TEST(Kernels, EmdNumeratorMatchesScalarAndIsSymmetric) {
  SplitMix64 rng(0xE3D);
  for (int trial = 0; trial < 12; ++trial) {
    std::uint64_t a[256] = {};
    std::uint64_t b[256] = {};
    std::uint64_t ta = 0;
    std::uint64_t tb = 0;
    for (int v = 0; v < 256; ++v) {
      a[v] = rng.next() >> (44 - (trial % 4) * 4);
      b[v] = rng.next() >> (44 - (trial % 4) * 4);
      ta += a[v];
      tb += b[v];
    }
    if (trial % 3 == 0 && tb <= ta) {
      // Exercise the equal-totals factoring (the scene detector's case).
      b[255] += ta - tb;
      tb = ta;
    }
    const Uint128 want =
        tableFor(Level::kScalar)->emdNumerator(a, ta, b, tb);
    for (Level level : availableLevels()) {
      const Uint128 got = tableFor(level)->emdNumerator(a, ta, b, tb);
      EXPECT_TRUE(got == want) << levelName(level) << " trial=" << trial;
      const Uint128 sym = tableFor(level)->emdNumerator(b, tb, a, ta);
      EXPECT_TRUE(sym == want) << levelName(level) << " asymmetric";
    }
  }
}

TEST(Kernels, EmdNumeratorWideOperandsUseExactPath) {
  // Totals far above the 2^27 fast-path bound: every variant must fall
  // back to the 128-bit reference and still agree exactly.
  std::uint64_t a[256] = {};
  std::uint64_t b[256] = {};
  a[0] = 1ull << 40;
  a[255] = 1ull << 40;
  b[128] = (1ull << 41) + 12345;
  const std::uint64_t ta = a[0] + a[255];
  const std::uint64_t tb = b[128];
  const Uint128 want = tableFor(Level::kScalar)->emdNumerator(a, ta, b, tb);
  EXPECT_TRUE(want > 0);
  for (Level level : availableLevels()) {
    EXPECT_TRUE(tableFor(level)->emdNumerator(a, ta, b, tb) == want)
        << levelName(level);
  }
}

TEST(Kernels, EarthMoversBitIdenticalAcrossLevels) {
  // Public-API check: the one value the scene detector thresholds on.
  const Image x = randomImage(997, 1);
  const Image y = randomImage(997, 2);
  const Histogram hx = Histogram::ofImage(x);
  const Histogram hy = Histogram::ofImage(y);
  const double want = [&] {
    ScopedLevel guard(Level::kScalar);
    return Histogram::earthMovers(hx, hy);
  }();
  for (Level level : availableLevels()) {
    ScopedLevel guard(level);
    const double got = Histogram::earthMovers(hx, hy);
    EXPECT_EQ(got, want) << levelName(level);  // bitwise, not NEAR
    EXPECT_EQ(Histogram::earthMovers(hy, hx), want) << levelName(level);
  }
}

TEST(Kernels, ScopedLevelSwapsAndRestores) {
  const Level before = activeLevel();
  {
    ScopedLevel guard(Level::kScalar);
    EXPECT_EQ(activeLevel(), Level::kScalar);
    const Image img = randomImage(123, 3);
    // Public API flows through the override.
    const Histogram h = Histogram::ofImage(img);
    EXPECT_EQ(h.total(), 123u);
  }
  EXPECT_EQ(activeLevel(), before);
}

TEST(Kernels, PublicApiIdenticalUnderEveryLevel) {
  // End-to-end equality through the real entry points, per level: the
  // values engine + planner consume must not depend on dispatch.
  const Image img = randomImage(1001, 4);
  struct Snapshot {
    Histogram hist;
    Histogram maxHist;
    FrameLuminance lum;
    GrayImage plane;
    double clipped;
  };
  auto snapshot = [&img] {
    return Snapshot{Histogram::ofImage(img), Histogram::ofMaxChannel(img),
                    analyzeLuminance(img), lumaPlane(img),
                    compensate::clippedFraction(img, 1.9)};
  };
  const Snapshot want = [&] {
    ScopedLevel guard(Level::kScalar);
    return snapshot();
  }();
  for (Level level : availableLevels()) {
    ScopedLevel guard(level);
    const Snapshot got = snapshot();
    EXPECT_EQ(got.hist, want.hist) << levelName(level);
    EXPECT_EQ(got.maxHist, want.maxHist) << levelName(level);
    EXPECT_EQ(got.lum, want.lum) << levelName(level);
    EXPECT_TRUE(std::ranges::equal(got.plane.pixels(), want.plane.pixels()))
        << levelName(level);
    EXPECT_EQ(got.clipped, want.clipped) << levelName(level);
  }
}

TEST(Kernels, ClippedFractionHistogramPathIsExact) {
  // Satellite: the O(256) histogram overload equals the pixel walk EXACTLY
  // (same double), for any gain, because both reduce to the same integer
  // count.
  const double ks[] = {0.0, 1.0, 1.0001, 1.3, 2.0, 5.5, 1e6};
  for (std::size_t n : {1u, 17u, 48u, 1000u}) {
    const Image img = randomImage(n, 0xFAB + n);
    const Histogram maxHist = Histogram::ofMaxChannel(img);
    EXPECT_EQ(maxHist.total(), n);
    for (double k : ks) {
      EXPECT_EQ(compensate::clippedFraction(maxHist, k),
                compensate::clippedFraction(img, k))
          << "n=" << n << " k=" << k;
    }
  }
  EXPECT_EQ(compensate::clippedFraction(Histogram{}, 2.0), 0.0);
}

TEST(Kernels, AnalyzeLuminanceIntegerSumMatchesReference) {
  // Satellite: meanLuma is now sum(luma8)/n with one final divide; check
  // against an independently computed exact mean.
  for (std::size_t n : {1u, 7u, 64u, 999u}) {
    const Image img = randomImage(n, 0x5EED + n);
    std::uint64_t sum = 0;
    for (const Rgb8& p : img.pixels()) sum += luma8(p);
    const FrameLuminance fl = analyzeLuminance(img);
    EXPECT_EQ(fl.meanLuma,
              static_cast<double>(sum) / static_cast<double>(n));
    EXPECT_EQ(fl.pixelCount, n);
  }
  EXPECT_EQ(analyzeLuminance(Image{}).pixelCount, 0u);
}

}  // namespace
}  // namespace anno::media::kernels
