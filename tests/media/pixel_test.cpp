#include "media/pixel.h"

#include <gtest/gtest.h>

namespace anno::media {
namespace {

TEST(Pixel, LumaWeightsSumToOne) {
  EXPECT_NEAR(kLumaR + kLumaG + kLumaB, 1.0, 1e-12);
}

TEST(Pixel, LuminanceOfPrimaries) {
  EXPECT_NEAR(luminance(Rgb8{255, 0, 0}), 255.0 * kLumaR, 1e-9);
  EXPECT_NEAR(luminance(Rgb8{0, 255, 0}), 255.0 * kLumaG, 1e-9);
  EXPECT_NEAR(luminance(Rgb8{0, 0, 255}), 255.0 * kLumaB, 1e-9);
}

TEST(Pixel, LuminanceOfGrayEqualsGray) {
  for (int g = 0; g <= 255; g += 17) {
    const auto v = static_cast<std::uint8_t>(g);
    EXPECT_NEAR(luminance(Rgb8{v, v, v}), g, 1e-9) << "gray=" << g;
    EXPECT_EQ(luma8(Rgb8{v, v, v}), v);
  }
}

TEST(Pixel, Luma8RoundsAndSaturates) {
  EXPECT_EQ(luma8(Rgb8{255, 255, 255}), 255);
  EXPECT_EQ(luma8(Rgb8{0, 0, 0}), 0);
}

TEST(Pixel, Clamp8Boundaries) {
  EXPECT_EQ(clamp8(-5.0), 0);
  EXPECT_EQ(clamp8(0.0), 0);
  EXPECT_EQ(clamp8(254.4), 254);
  EXPECT_EQ(clamp8(254.6), 255);
  EXPECT_EQ(clamp8(255.0), 255);
  EXPECT_EQ(clamp8(1e9), 255);
}

TEST(Pixel, ScaleIsSaturating) {
  const Rgb8 p{100, 200, 50};
  const Rgb8 s = scale(p, 2.0);
  EXPECT_EQ(s.r, 200);
  EXPECT_EQ(s.g, 255);  // 400 clips
  EXPECT_EQ(s.b, 100);
}

TEST(Pixel, ScaleByOneIsIdentity) {
  const Rgb8 p{12, 34, 56};
  EXPECT_EQ(scale(p, 1.0), p);
}

TEST(Pixel, OffsetIsSaturating) {
  const Rgb8 p{250, 100, 0};
  const Rgb8 o = offset(p, 10.0);
  EXPECT_EQ(o.r, 255);
  EXPECT_EQ(o.g, 110);
  EXPECT_EQ(o.b, 10);
}

TEST(Pixel, ClipsWhenScaledMatchesScaleSaturation) {
  const Rgb8 p{100, 128, 60};
  EXPECT_FALSE(clipsWhenScaled(p, 1.9));   // 128*1.9 = 243.2
  EXPECT_TRUE(clipsWhenScaled(p, 2.1));    // 128*2.1 = 268.8
}

TEST(Pixel, MaxScaleWithoutClipExact) {
  const Rgb8 p{100, 200, 50};
  const double k = maxScaleWithoutClip(p);
  EXPECT_NEAR(k, 255.0 / 200.0, 1e-12);
  EXPECT_FALSE(clipsWhenScaled(p, k));
  EXPECT_TRUE(clipsWhenScaled(p, k * 1.001));
}

TEST(Pixel, MaxScaleOfBlackIsHuge) {
  EXPECT_GT(maxScaleWithoutClip(Rgb8{0, 0, 0}), 1e8);
}

}  // namespace
}  // namespace anno::media
