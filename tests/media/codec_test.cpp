#include "media/codec.h"

#include <gtest/gtest.h>

#include "media/clipgen.h"
#include "media/rng.h"
#include "quality/metrics.h"

namespace anno::media {
namespace {

Image testFrame(int w = 48, int h = 32, std::uint64_t seed = 5) {
  SplitMix64 rng(seed);
  Image img(w, h);
  // Smooth content plus a few sharp features: representative of video.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double base = 100.0 + 60.0 * std::sin(x * 0.2) * std::cos(y * 0.15);
      img(x, y) = Rgb8{clamp8(base + rng.uniform(-4, 4)),
                       clamp8(base * 0.8 + rng.uniform(-4, 4)),
                       clamp8(base * 1.1 + rng.uniform(-4, 4))};
    }
  }
  return img;
}

TEST(Codec, FrameRoundtripIsFaithful) {
  const Image frame = testFrame();
  const EncodedFrame enc = encodeFrame(frame, {90});
  const Image dec = decodeFrame(enc, frame.width(), frame.height());
  EXPECT_GT(quality::psnr(frame, dec), 32.0);
}

TEST(Codec, CompressesSmoothContent) {
  const Image frame = testFrame();
  const EncodedFrame enc = encodeFrame(frame, {75});
  EXPECT_LT(enc.sizeBytes(), frame.pixelCount() * 3 / 2)
      << "expected at least 2x compression on smooth content";
}

TEST(Codec, HigherQualityLargerAndBetter) {
  const Image frame = testFrame();
  const EncodedFrame lo = encodeFrame(frame, {30});
  const EncodedFrame hi = encodeFrame(frame, {95});
  EXPECT_LT(lo.sizeBytes(), hi.sizeBytes());
  const Image decLo = decodeFrame(lo, frame.width(), frame.height());
  const Image decHi = decodeFrame(hi, frame.width(), frame.height());
  EXPECT_LT(quality::psnr(frame, decLo), quality::psnr(frame, decHi));
}

TEST(Codec, NonMultipleOf8Dimensions) {
  const Image frame = testFrame(37, 23);
  const EncodedFrame enc = encodeFrame(frame, {85});
  const Image dec = decodeFrame(enc, 37, 23);
  EXPECT_EQ(dec.width(), 37);
  EXPECT_EQ(dec.height(), 23);
  EXPECT_GT(quality::psnr(frame, dec), 28.0);
}

TEST(Codec, QualityValidation) {
  const Image frame = testFrame(8, 8);
  EXPECT_THROW((void)encodeFrame(frame, {0}), std::invalid_argument);
  EXPECT_THROW((void)encodeFrame(frame, {101}), std::invalid_argument);
  EXPECT_THROW((void)encodeFrame(Image{}, {50}), std::invalid_argument);
}

TEST(Codec, DecodeValidation) {
  EXPECT_THROW((void)decodeFrame(EncodedFrame{}, 0, 8), std::invalid_argument);
  // Garbage payload must throw, not crash.
  EncodedFrame garbage;
  garbage.bytes = {50, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_ANY_THROW((void)decodeFrame(garbage, 16, 16));
}

TEST(Codec, ClipRoundtrip) {
  const VideoClip clip = generatePaperClip(PaperClip::kOfficeXp, 0.02, 48, 32);
  const EncodedClip enc = encodeClip(clip, {85});
  EXPECT_EQ(enc.frames.size(), clip.frames.size());
  const VideoClip dec = decodeClip(enc);
  EXPECT_EQ(dec.frames.size(), clip.frames.size());
  EXPECT_EQ(dec.fps, clip.fps);
  EXPECT_EQ(dec.name, clip.name);
  for (std::size_t i = 0; i < clip.frames.size(); i += 7) {
    EXPECT_GT(quality::psnr(clip.frames[i], dec.frames[i]), 28.0)
        << "frame " << i;
  }
}

TEST(Codec, SerializeParseRoundtrip) {
  const VideoClip clip = generatePaperClip(PaperClip::kOfficeXp, 0.01, 32, 24);
  const EncodedClip enc = encodeClip(clip, {70});
  const std::vector<std::uint8_t> bytes = serializeClip(enc);
  const EncodedClip parsed = parseClip(bytes);
  EXPECT_EQ(parsed.name, enc.name);
  EXPECT_EQ(parsed.width, enc.width);
  EXPECT_EQ(parsed.height, enc.height);
  EXPECT_DOUBLE_EQ(parsed.fps, enc.fps);
  EXPECT_EQ(parsed.quality, enc.quality);
  ASSERT_EQ(parsed.frames.size(), enc.frames.size());
  for (std::size_t i = 0; i < enc.frames.size(); ++i) {
    EXPECT_EQ(parsed.frames[i].bytes, enc.frames[i].bytes);
  }
}

TEST(Codec, ParseRejectsBadMagic) {
  std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW((void)parseClip(bytes), std::runtime_error);
}

TEST(Codec, ParseRejectsTruncation) {
  const VideoClip clip = generatePaperClip(PaperClip::kOfficeXp, 0.01, 32, 24);
  std::vector<std::uint8_t> bytes = serializeClip(encodeClip(clip, {70}));
  bytes.resize(bytes.size() / 2);
  EXPECT_ANY_THROW((void)parseClip(bytes));
}

TEST(Codec, PFrameRoundtrip) {
  const Image ref = testFrame(48, 32, 5);
  // A slightly moved/brightened version of the reference.
  Image cur = ref;
  for (Rgb8& p : cur.pixels()) p = offset(p, 6.0);
  const Image refDec = decodeFrame(encodeFrame(ref, {90}), 48, 32);
  const EncodedFrame p = encodePFrame(cur, refDec, {90});
  EXPECT_FALSE(p.intra);
  const Image dec = decodeFrame(p, 48, 32, &refDec);
  EXPECT_GT(quality::psnr(cur, dec), 32.0);
}

TEST(Codec, PFrameOfIdenticalContentIsTiny) {
  const Image frame = testFrame(48, 32, 6);
  const Image refDec = decodeFrame(encodeFrame(frame, {90}), 48, 32);
  const EncodedFrame p = encodePFrame(refDec, refDec, {90});
  const EncodedFrame i = encodeFrame(refDec, {90});
  // All blocks SKIP: one mode byte per block per plane + header.
  EXPECT_LT(p.sizeBytes() * 5, i.sizeBytes());
  const Image dec = decodeFrame(p, 48, 32, &refDec);
  EXPECT_GT(quality::psnr(refDec, dec), 45.0);
}

TEST(Codec, PFrameNeedsReference) {
  const Image frame = testFrame(32, 24, 7);
  const EncodedFrame p = encodePFrame(frame, frame, {80});
  EXPECT_THROW((void)decodeFrame(p, 32, 24, nullptr), std::runtime_error);
  const Image wrongSize(16, 16);
  EXPECT_THROW((void)decodeFrame(p, 32, 24, &wrongSize),
               std::invalid_argument);
  const Image small(16, 16);
  EXPECT_THROW((void)encodePFrame(frame, small, {80}),
               std::invalid_argument);
}

TEST(Codec, GopEncodingShrinksStaticContent) {
  // A mostly static synthetic scene: P frames should be far smaller than
  // I frames, so a GOP-coded clip beats intra-only substantially.
  const VideoClip clip = generatePaperClip(PaperClip::kTheMovie, 0.02, 48, 32);
  CodecConfig intraOnly{75, 1, 1.5};
  CodecConfig gop{75, 12, 1.5};
  const EncodedClip a = encodeClip(clip, intraOnly);
  const EncodedClip b = encodeClip(clip, gop);
  EXPECT_LT(b.totalBytes() * 3, a.totalBytes() * 2)
      << "GOP coding should save >= ~33% on this content";
  // And the decode must remain faithful (closed-loop encoder: no drift).
  const VideoClip dec = decodeClip(b);
  for (std::size_t i = 0; i < clip.frames.size(); i += 5) {
    EXPECT_GT(quality::psnr(clip.frames[i], dec.frames[i]), 27.0)
        << "frame " << i;
  }
}

TEST(Codec, GopPatternIsPeriodic) {
  const VideoClip clip = generatePaperClip(PaperClip::kOfficeXp, 0.02, 32, 24);
  const EncodedClip enc = encodeClip(clip, {75, 6, 1.5});
  for (std::size_t i = 0; i < enc.frames.size(); ++i) {
    EXPECT_EQ(enc.frames[i].intra, i % 6 == 0) << "frame " << i;
  }
  EXPECT_THROW((void)encodeClip(clip, {75, 0, 1.5}), std::invalid_argument);
}

TEST(Codec, SerializePreservesFrameTypes) {
  const VideoClip clip = generatePaperClip(PaperClip::kOfficeXp, 0.02, 32, 24);
  const EncodedClip enc = encodeClip(clip, {75, 4, 1.5});
  const EncodedClip parsed = parseClip(serializeClip(enc));
  ASSERT_EQ(parsed.frames.size(), enc.frames.size());
  for (std::size_t i = 0; i < enc.frames.size(); ++i) {
    EXPECT_EQ(parsed.frames[i].intra, enc.frames[i].intra);
  }
}

class CodecQualitySweep : public ::testing::TestWithParam<int> {};

TEST_P(CodecQualitySweep, RoundtripFidelityScalesWithQuality) {
  const int quality = GetParam();
  const Image frame = testFrame(48, 32, 11);
  const EncodedFrame enc = encodeFrame(frame, {quality});
  const Image dec = decodeFrame(enc, 48, 32);
  // Even the lowest quality must stay recognizable; high quality must be
  // genuinely faithful.
  const double floor = quality >= 75 ? 30.0 : (quality >= 40 ? 26.0 : 20.0);
  EXPECT_GT(quality::psnr(frame, dec), floor) << "quality=" << quality;
}

INSTANTIATE_TEST_SUITE_P(Qualities, CodecQualitySweep,
                         ::testing::Values(5, 20, 40, 60, 75, 90, 100));

class CodecGopSweep : public ::testing::TestWithParam<int> {};

TEST_P(CodecGopSweep, AnyGopLengthRoundtrips) {
  const int gop = GetParam();
  const VideoClip clip = generatePaperClip(PaperClip::kCatwoman, 0.02, 32, 24);
  const EncodedClip enc = encodeClip(clip, {80, gop, 1.5});
  const VideoClip dec = decodeClip(enc);
  ASSERT_EQ(dec.frames.size(), clip.frames.size());
  for (std::size_t i = 0; i < clip.frames.size(); i += 6) {
    EXPECT_GT(quality::psnr(clip.frames[i], dec.frames[i]), 26.0)
        << "gop=" << gop << " frame=" << i;
  }
  // Serialization stays consistent at every GOP length.
  EXPECT_EQ(parseClip(serializeClip(enc)).frames.size(), enc.frames.size());
}

INSTANTIATE_TEST_SUITE_P(GopLengths, CodecGopSweep,
                         ::testing::Values(1, 2, 5, 12, 1000));

TEST(Codec, TotalBytesSumsFrames) {
  const VideoClip clip = generatePaperClip(PaperClip::kOfficeXp, 0.01, 32, 24);
  const EncodedClip enc = encodeClip(clip, {70});
  std::size_t sum = 0;
  for (const auto& f : enc.frames) sum += f.sizeBytes();
  EXPECT_EQ(enc.totalBytes(), sum);
}

}  // namespace
}  // namespace anno::media
