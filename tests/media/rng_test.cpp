#include "media/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace anno::media {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, KnownReferenceValues) {
  // Reference outputs of SplitMix64 with seed 1234567 (cross-checked with
  // the published algorithm); guards against accidental edits.
  SplitMix64 rng(1234567);
  EXPECT_EQ(rng.next(), 6457827717110365317ULL);
  EXPECT_EQ(rng.next(), 3203168211198807973ULL);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, UniformInUnitInterval) {
  SplitMix64 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(SplitMix64, UniformRange) {
  SplitMix64 rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(SplitMix64, BelowStaysInRange) {
  SplitMix64 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit over 1000 draws
}

TEST(SplitMix64, BetweenInclusive) {
  SplitMix64 rng(10);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.between(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    sawLo |= (v == -2);
    sawHi |= (v == 2);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(SplitMix64, GaussianMoments) {
  SplitMix64 rng(11);
  double sum = 0.0, sumSq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumSq += g * g;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(SplitMix64, GaussianScaled) {
  SplitMix64 rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(SplitMix64, SplitYieldsIndependentStream) {
  SplitMix64 parent(13);
  SplitMix64 child = parent.split();
  // Child stream differs from the continuation of the parent stream.
  EXPECT_NE(child.next(), parent.next());
}

}  // namespace
}  // namespace anno::media
