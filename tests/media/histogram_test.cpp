#include "media/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "media/rng.h"

namespace anno::media {
namespace {

Histogram uniformHist(int lo, int hi, std::uint64_t perBin = 10) {
  Histogram h;
  for (int v = lo; v <= hi; ++v) {
    h.add(static_cast<std::uint8_t>(v), perBin);
  }
  return h;
}

TEST(Histogram, EmptyDefaults) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.averagePoint(), 0.0);
  EXPECT_EQ(h.lowPoint(), 0);
  EXPECT_EQ(h.highPoint(), 255);
}

TEST(Histogram, OfImageCountsLuma) {
  Image img(2, 2);
  img(0, 0) = Rgb8{0, 0, 0};
  img(1, 0) = Rgb8{255, 255, 255};
  img(0, 1) = Rgb8{100, 100, 100};
  img(1, 1) = Rgb8{100, 100, 100};
  const Histogram h = Histogram::ofImage(img);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(100), 2u);
  EXPECT_EQ(h.count(255), 1u);
}

TEST(Histogram, OfGrayCounts) {
  GrayImage img(3, 1, 50);
  img(2, 0) = 200;
  const Histogram h = Histogram::ofGray(img);
  EXPECT_EQ(h.count(50), 2u);
  EXPECT_EQ(h.count(200), 1u);
}

TEST(Histogram, AveragePoint) {
  Histogram h;
  h.add(10, 1);
  h.add(30, 3);
  EXPECT_DOUBLE_EQ(h.averagePoint(), (10.0 + 90.0) / 4.0);
}

TEST(Histogram, DynamicRangeNoTrim) {
  const Histogram h = uniformHist(40, 200);
  EXPECT_EQ(h.lowPoint(), 40);
  EXPECT_EQ(h.highPoint(), 200);
  EXPECT_EQ(h.dynamicRange(), 160);
}

TEST(Histogram, DynamicRangeTrimsOutliers) {
  Histogram h = uniformHist(100, 110, 1000);
  h.add(255, 1);  // single hot pixel
  EXPECT_EQ(h.highPoint(0.0), 255);
  EXPECT_EQ(h.highPoint(0.001), 110);  // the outlier is trimmed away
}

TEST(Histogram, TrimValidation) {
  const Histogram h = uniformHist(0, 10);
  EXPECT_THROW((void)h.dynamicRange(-0.1), std::invalid_argument);
  EXPECT_THROW((void)h.dynamicRange(0.5), std::invalid_argument);
}

TEST(Histogram, QuantileMonotone) {
  const Histogram h = uniformHist(0, 255, 4);
  std::uint8_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    const std::uint8_t v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_THROW((void)h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)h.quantile(1.1), std::invalid_argument);
}

TEST(Histogram, FractionAbove) {
  Histogram h;
  h.add(10, 90);
  h.add(250, 10);
  EXPECT_DOUBLE_EQ(h.fractionAbove(10), 0.1);
  EXPECT_DOUBLE_EQ(h.fractionAbove(250), 0.0);
  EXPECT_DOUBLE_EQ(h.fractionAbove(5), 1.0);
}

TEST(Histogram, AccumulateAddsCounts) {
  Histogram a = uniformHist(0, 9, 1);
  const Histogram b = uniformHist(5, 14, 1);
  a.accumulate(b);
  EXPECT_EQ(a.total(), 20u);
  EXPECT_EQ(a.count(7), 2u);
  EXPECT_EQ(a.count(12), 1u);
}

TEST(Histogram, FromCountsMatchesAdds) {
  std::array<std::uint64_t, 256> counts{};
  counts[3] = 5;
  counts[200] = 7;
  const Histogram h = Histogram::fromCounts(counts);
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.count(3), 5u);
}

TEST(HistogramDistance, IdenticalAreZero) {
  const Histogram h = uniformHist(10, 60);
  EXPECT_DOUBLE_EQ(Histogram::intersection(h, h), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::chiSquared(h, h), 0.0);
  EXPECT_DOUBLE_EQ(Histogram::earthMovers(h, h), 0.0);
}

TEST(HistogramDistance, DisjointAreMaximal) {
  const Histogram a = uniformHist(0, 50);
  const Histogram b = uniformHist(100, 150);
  EXPECT_DOUBLE_EQ(Histogram::intersection(a, b), 0.0);
  EXPECT_NEAR(Histogram::chiSquared(a, b), 1.0, 1e-12);
}

TEST(HistogramDistance, EmdEqualsShiftForTranslation) {
  // EMD of a distribution against itself shifted by d bins is exactly d.
  Histogram a, b;
  a.add(50, 7);
  b.add(73, 7);
  EXPECT_NEAR(Histogram::earthMovers(a, b), 23.0, 1e-9);
}

TEST(HistogramDistance, EmdIsSymmetric) {
  SplitMix64 rng(5);
  Histogram a, b;
  for (int i = 0; i < 100; ++i) {
    a.add(static_cast<std::uint8_t>(rng.below(256)));
    b.add(static_cast<std::uint8_t>(rng.below(256)));
  }
  EXPECT_NEAR(Histogram::earthMovers(a, b), Histogram::earthMovers(b, a),
              1e-12);
}

TEST(Histogram, AsciiPlotGeometry) {
  const Histogram h = uniformHist(0, 255);
  const std::string plot = h.asciiPlot(5, 32);
  // 5 data rows + 1 axis row, each 32 chars + newline.
  EXPECT_EQ(plot.size(), 6u * 33u);
  EXPECT_THROW(h.asciiPlot(0, 10), std::invalid_argument);
  EXPECT_THROW(h.asciiPlot(5, 300), std::invalid_argument);
}

class HistogramQuantileProperty : public ::testing::TestWithParam<int> {};

TEST_P(HistogramQuantileProperty, QuantileBoundsFractionAbove) {
  // Property: at most `q` of the mass lies strictly above quantile(1-q)...
  // verified over random histograms.
  SplitMix64 rng(GetParam());
  Histogram h;
  const int n = 1 + static_cast<int>(rng.below(5000));
  for (int i = 0; i < n; ++i) {
    h.add(static_cast<std::uint8_t>(rng.below(256)));
  }
  for (double q : {0.0, 0.05, 0.1, 0.2, 0.5}) {
    const std::uint8_t cutoff = h.quantile(1.0 - q);
    EXPECT_LE(h.fractionAbove(cutoff), q + 1e-12)
        << "q=" << q << " cutoff=" << int(cutoff) << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomHistograms, HistogramQuantileProperty,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace anno::media
