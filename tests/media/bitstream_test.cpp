#include "media/bitstream.h"

#include <gtest/gtest.h>

#include <limits>

#include "media/rng.h"

namespace anno::media {
namespace {

TEST(ByteWriter, FixedWidthLittleEndian) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 7u);
  EXPECT_EQ(d[0], 0xAB);
  EXPECT_EQ(d[1], 0x34);
  EXPECT_EQ(d[2], 0x12);
  EXPECT_EQ(d[3], 0xEF);
  EXPECT_EQ(d[4], 0xBE);
  EXPECT_EQ(d[5], 0xAD);
  EXPECT_EQ(d[6], 0xDE);
}

TEST(ByteReader, FixedWidthRoundtrip) {
  ByteWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(123456789);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 123456789u);
  EXPECT_TRUE(r.atEnd());
}

class VarintRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundtrip, Exact) {
  ByteWriter w;
  w.varint(GetParam());
  ByteReader r(w.data());
  EXPECT_EQ(r.varint(), GetParam());
  EXPECT_TRUE(r.atEnd());
}

INSTANTIATE_TEST_SUITE_P(
    EdgeValues, VarintRoundtrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 129ULL, 16383ULL, 16384ULL,
                      (1ULL << 32) - 1, 1ULL << 32, (1ULL << 56) + 12345,
                      std::numeric_limits<std::uint64_t>::max()));

TEST(Varint, EncodedSizes) {
  const auto size = [](std::uint64_t v) {
    ByteWriter w;
    w.varint(v);
    return w.size();
  };
  EXPECT_EQ(size(0), 1u);
  EXPECT_EQ(size(127), 1u);
  EXPECT_EQ(size(128), 2u);
  EXPECT_EQ(size(16383), 2u);
  EXPECT_EQ(size(16384), 3u);
  EXPECT_EQ(size(std::numeric_limits<std::uint64_t>::max()), 10u);
}

class SvarintRoundtrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SvarintRoundtrip, Exact) {
  ByteWriter w;
  w.svarint(GetParam());
  ByteReader r(w.data());
  EXPECT_EQ(r.svarint(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    EdgeValues, SvarintRoundtrip,
    ::testing::Values(0LL, 1LL, -1LL, 63LL, -64LL, 64LL, -65LL, 1000000LL,
                      -1000000LL, std::numeric_limits<std::int64_t>::max(),
                      std::numeric_limits<std::int64_t>::min()));

TEST(Svarint, ZigzagKeepsSmallMagnitudesShort) {
  ByteWriter w;
  w.svarint(-1);
  EXPECT_EQ(w.size(), 1u);  // -1 maps to 1, not a huge unsigned
}

TEST(ByteReader, UnderrunThrows) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.data());
  (void)r.u8();
  EXPECT_THROW((void)r.u8(), std::out_of_range);
  ByteReader r2(w.data());
  EXPECT_THROW((void)r2.u32(), std::out_of_range);
  ByteReader r3(w.data());
  EXPECT_THROW((void)r3.bytes(2), std::out_of_range);
}

TEST(ByteReader, MalformedVarintThrows) {
  // Eleven continuation bytes: longer than any valid 64-bit varint.
  std::vector<std::uint8_t> bad(11, 0x80);
  ByteReader r(bad);
  EXPECT_THROW((void)r.varint(), std::runtime_error);
}

TEST(ByteReader, BytesSpanAndPosition) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  w.u8(3);
  ByteReader r(w.data());
  auto s = r.bytes(2);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], 2);
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(Rle, RoundtripRandom) {
  SplitMix64 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> data;
    const int n = static_cast<int>(rng.below(500));
    for (int i = 0; i < n; ++i) {
      // Small alphabet to create runs.
      data.push_back(static_cast<std::uint8_t>(rng.below(4)));
    }
    EXPECT_EQ(rleDecode(rleEncode(data)), data);
  }
}

TEST(Rle, CompressesRuns) {
  std::vector<std::uint8_t> data(10000, 42);
  const auto enc = rleEncode(data);
  EXPECT_LT(enc.size(), 10u);  // one (run,value) pair
  EXPECT_EQ(rleDecode(enc), data);
}

TEST(Rle, EmptyInput) {
  EXPECT_TRUE(rleEncode({}).empty());
  EXPECT_TRUE(rleDecode({}).empty());
}

TEST(Rle, MalformedInputThrows) {
  // run = 0 is invalid.
  std::vector<std::uint8_t> bad = {0x00, 0x42};
  EXPECT_THROW((void)rleDecode(bad), std::runtime_error);
  // Truncated: run without value.
  std::vector<std::uint8_t> trunc = {0x05};
  EXPECT_THROW((void)rleDecode(trunc), std::out_of_range);
}

}  // namespace
}  // namespace anno::media
