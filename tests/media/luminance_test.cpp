#include "media/luminance.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "media/rng.h"

namespace anno::media {
namespace {

Image gradientImage() {
  Image img(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      const auto v = static_cast<std::uint8_t>(y * 16 + x);
      img(x, y) = Rgb8{v, v, v};
    }
  }
  return img;
}

TEST(Luminance, LumaPlaneMatchesPerPixel) {
  Image img(3, 1);
  img(0, 0) = Rgb8{255, 0, 0};
  img(1, 0) = Rgb8{0, 255, 0};
  img(2, 0) = Rgb8{12, 34, 56};
  const GrayImage plane = lumaPlane(img);
  EXPECT_EQ(plane(0, 0), luma8(img(0, 0)));
  EXPECT_EQ(plane(1, 0), luma8(img(1, 0)));
  EXPECT_EQ(plane(2, 0), luma8(img(2, 0)));
}

TEST(Luminance, LumaPlaneOfEmptyIsEmpty) {
  EXPECT_TRUE(lumaPlane(Image{}).empty());
}

TEST(Luminance, AnalyzeGradient) {
  const FrameLuminance fl = analyzeLuminance(gradientImage());
  EXPECT_EQ(fl.minLuma, 0);
  EXPECT_EQ(fl.maxLuma, 255);
  EXPECT_EQ(fl.pixelCount, 256u);
  EXPECT_NEAR(fl.meanLuma, 127.5, 0.01);
}

TEST(Luminance, AnalyzeUniform) {
  const Image img(5, 5, Rgb8{80, 80, 80});
  const FrameLuminance fl = analyzeLuminance(img);
  EXPECT_EQ(fl.minLuma, 80);
  EXPECT_EQ(fl.maxLuma, 80);
  EXPECT_DOUBLE_EQ(fl.meanLuma, 80.0);
}

TEST(Luminance, ClipSafeZeroFractionIsMax) {
  EXPECT_EQ(clipSafeLuma(gradientImage(), 0.0), 255);
}

TEST(Luminance, ClipSafeTrimsBudget) {
  // Gradient has one pixel per value 0..255; clipping 10% (25.6 pixels)
  // admits values above 230 to clip: safe level is 230.
  EXPECT_EQ(clipSafeLuma(gradientImage(), 0.1), 230);
}

TEST(Luminance, ClipSafeValidatesFraction) {
  EXPECT_THROW((void)clipSafeLuma(gradientImage(), -0.01), std::invalid_argument);
  EXPECT_THROW((void)clipSafeLuma(gradientImage(), 1.0), std::invalid_argument);
}

TEST(Luminance, ClipSafeHistogramOverloadAgrees) {
  SplitMix64 rng(3);
  Image img(32, 32);
  for (Rgb8& p : img.pixels()) {
    const auto v = static_cast<std::uint8_t>(rng.below(256));
    p = Rgb8{v, v, v};
  }
  std::uint64_t counts[256] = {};
  for (const Rgb8& p : img.pixels()) ++counts[luma8(p)];
  for (double q : {0.0, 0.05, 0.1, 0.2}) {
    EXPECT_EQ(clipSafeLuma(img, q),
              clipSafeLuma(counts, img.pixelCount(), q));
  }
}

class ClipSafeProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClipSafeProperty, BudgetNeverExceeded) {
  SplitMix64 rng(100 + GetParam());
  Image img(24, 24);
  for (Rgb8& p : img.pixels()) {
    const auto v = static_cast<std::uint8_t>(rng.below(256));
    p = Rgb8{v, v, v};
  }
  for (double q : {0.0, 0.02, 0.05, 0.1, 0.15, 0.2, 0.5}) {
    const std::uint8_t safe = clipSafeLuma(img, q);
    // Count pixels strictly above the safe level: must be <= budget.
    std::size_t above = 0;
    for (const Rgb8& p : img.pixels()) {
      if (luma8(p) > safe) ++above;
    }
    EXPECT_LE(static_cast<double>(above),
              q * static_cast<double>(img.pixelCount()) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomImages, ClipSafeProperty,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace anno::media
