#include "media/video.h"

#include <gtest/gtest.h>

#include "media/clipgen.h"
#include "media/luminance.h"

namespace anno::media {
namespace {

TEST(Video, ProfileFrameConsistentWithDirectAnalysis) {
  const VideoClip clip = generatePaperClip(PaperClip::kIRobot, 0.01, 32, 24);
  for (const Image& f : clip.frames) {
    const FrameStats fs = profileFrame(f);
    const FrameLuminance direct = analyzeLuminance(f);
    EXPECT_EQ(fs.luminance.maxLuma, direct.maxLuma);
    EXPECT_EQ(fs.luminance.minLuma, direct.minLuma);
    EXPECT_NEAR(fs.luminance.meanLuma, direct.meanLuma, 1e-9);
    EXPECT_EQ(fs.histogram.total(), f.pixelCount());
  }
}

TEST(Video, ProfileClipCoversAllFrames) {
  const VideoClip clip = generatePaperClip(PaperClip::kIRobot, 0.01, 32, 24);
  const auto stats = profileClip(clip);
  EXPECT_EQ(stats.size(), clip.frames.size());
}

TEST(Video, DurationAndGeometry) {
  VideoClip clip;
  clip.fps = 20.0;
  clip.frames.assign(40, Image(8, 6));
  EXPECT_EQ(clip.width(), 8);
  EXPECT_EQ(clip.height(), 6);
  EXPECT_DOUBLE_EQ(clip.durationSeconds(), 2.0);
  EXPECT_EQ(VideoClip{}.width(), 0);
}

TEST(Video, ValidateRejectsEmpty) {
  VideoClip clip;
  clip.name = "x";
  clip.fps = 10.0;
  EXPECT_THROW(validateClip(clip), std::invalid_argument);
}

TEST(Video, ValidateRejectsBadFps) {
  VideoClip clip;
  clip.fps = 0.0;
  clip.frames.emplace_back(4, 4);
  EXPECT_THROW(validateClip(clip), std::invalid_argument);
}

TEST(Video, ValidateRejectsMixedResolutions) {
  VideoClip clip;
  clip.fps = 10.0;
  clip.frames.emplace_back(4, 4);
  clip.frames.emplace_back(8, 4);
  EXPECT_THROW(validateClip(clip), std::invalid_argument);
}

TEST(Video, ValidateAcceptsWellFormed) {
  VideoClip clip;
  clip.fps = 10.0;
  clip.frames.assign(3, Image(4, 4));
  EXPECT_NO_THROW(validateClip(clip));
}

}  // namespace
}  // namespace anno::media
