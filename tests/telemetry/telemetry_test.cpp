// Telemetry core: registry semantics, instrument behaviour, exporters, and
// the engine-observer determinism contract (counter values derived from
// annotation are exact functions of the content -- bit-identical for any
// thread count).  These tests carry the `telemetry` ctest label so the
// sanitized configurations can target them:
//   cmake -B build-tsan -DANNO_SANITIZE=thread && ctest -L telemetry
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/annotate.h"
#include "core/engine.h"
#include "core/engine_metrics.h"
#include "golden_clips.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace anno {
namespace {

using telemetry::InstrumentKind;
using telemetry::Labels;
using telemetry::Registry;
using telemetry::Snapshot;

TEST(Registry, CounterRegistrationDedupes) {
  Registry reg;
  telemetry::Counter& a = reg.counter("anno_test_total", {}, "help");
  telemetry::Counter& b = reg.counter("anno_test_total", {}, "help");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.instrumentCount(), 1u);
}

TEST(Registry, LabelSetsAreDistinctInstruments) {
  Registry reg;
  telemetry::Counter& a =
      reg.counter("anno_test_total", {{"kind", "a"}}, "help");
  telemetry::Counter& b =
      reg.counter("anno_test_total", {{"kind", "b"}}, "help");
  EXPECT_NE(&a, &b);
  EXPECT_EQ(reg.instrumentCount(), 2u);
}

TEST(Registry, LabelOrderIsCanonicalized) {
  Registry reg;
  telemetry::Counter& a =
      reg.counter("anno_test_total", {{"x", "1"}, {"y", "2"}}, "");
  telemetry::Counter& b =
      reg.counter("anno_test_total", {{"y", "2"}, {"x", "1"}}, "");
  EXPECT_EQ(&a, &b);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  (void)reg.counter("anno_test_metric", {}, "");
  EXPECT_THROW((void)reg.gauge("anno_test_metric", {}, ""),
               std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("anno_test_metric",
                                   telemetry::secondsBuckets(), {}, ""),
               std::invalid_argument);
}

TEST(Registry, InvalidNameThrows) {
  Registry reg;
  EXPECT_THROW((void)reg.counter("", {}, ""), std::invalid_argument);
  EXPECT_THROW((void)reg.counter("0starts_with_digit", {}, ""),
               std::invalid_argument);
  EXPECT_THROW((void)reg.counter("has-dash", {}, ""), std::invalid_argument);
}

TEST(Registry, DuplicateLabelKeyThrows) {
  Registry reg;
  EXPECT_THROW(
      (void)reg.counter("anno_test_total", {{"k", "1"}, {"k", "2"}}, ""),
      std::invalid_argument);
}

TEST(Registry, HistogramBoundsMustAscend) {
  Registry reg;
  EXPECT_THROW((void)reg.histogram("anno_test_h", {}, {}, ""),
               std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("anno_test_h", {2.0, 1.0}, {}, ""),
               std::invalid_argument);
  (void)reg.histogram("anno_test_h", {1.0, 2.0}, {}, "");
  EXPECT_THROW((void)reg.histogram("anno_test_h", {1.0, 3.0}, {}, ""),
               std::invalid_argument);
}

TEST(Instruments, CounterAccumulates) {
  Registry reg;
  telemetry::Counter& c = reg.counter("anno_test_total", {}, "");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Instruments, GaugeSetAddUpdateMax) {
  Registry reg;
  telemetry::Gauge& g = reg.gauge("anno_test_gauge", {}, "");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.updateMax(100);
  EXPECT_EQ(g.value(), 100);
  g.updateMax(50);  // lower: no change
  EXPECT_EQ(g.value(), 100);
}

TEST(Instruments, HistogramBucketsCountAndSum) {
  Registry reg;
  telemetry::Histogram& h =
      reg.histogram("anno_test_h", {1.0, 10.0}, {}, "");
  h.observe(0.5);   // bucket 0 (le 1)
  h.observe(5.0);   // bucket 1 (le 10)
  h.observe(50.0);  // +Inf bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.5);
  const Snapshot snap = telemetry::scrape(reg);
  ASSERT_EQ(snap.instruments.size(), 1u);
  const std::vector<std::uint64_t> expected = {1, 1, 1};
  EXPECT_EQ(snap.instruments[0].histogram.counts, expected);
}

TEST(Instruments, BucketLaddersAscend) {
  for (const auto& ladder :
       {telemetry::secondsBuckets(), telemetry::countBuckets(),
        telemetry::magnitudeBuckets()}) {
    ASSERT_FALSE(ladder.empty());
    for (std::size_t i = 1; i < ladder.size(); ++i) {
      EXPECT_LT(ladder[i - 1], ladder[i]);
    }
  }
}

TEST(Instruments, NullSafeHelpersAreNoOps) {
  telemetry::inc(nullptr);
  telemetry::inc(nullptr, 5);
  telemetry::set(nullptr, 1);
  telemetry::add(nullptr, 1);
  telemetry::updateMax(nullptr, 1);
  telemetry::observe(nullptr, 1.0);
  telemetry::Span span(nullptr);  // no sink: no clock read, no record
  span.stop();
}

TEST(Instruments, SpanRecordsOnceIntoHistogram) {
  Registry reg;
  telemetry::Histogram& h =
      reg.histogram("anno_test_span_seconds", telemetry::secondsBuckets(),
                    {}, "");
  {
    telemetry::Span span(&h);
    span.stop();
    span.stop();  // idempotent
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  {
    telemetry::Span span(&h);  // records on destruction
  }
  EXPECT_EQ(h.count(), 2u);
}

TEST(Exporters, SnapshotSortedAndCounterValueLookup) {
  Registry reg;
  reg.counter("anno_z_total", {}, "").inc(1);
  reg.counter("anno_a_total", {{"k", "v"}}, "").inc(2);
  reg.counter("anno_a_total", {}, "").inc(3);
  const Snapshot snap = telemetry::scrape(reg);
  ASSERT_EQ(snap.instruments.size(), 3u);
  EXPECT_EQ(snap.instruments[0].name, "anno_a_total");
  EXPECT_TRUE(snap.instruments[0].labels.empty());
  EXPECT_EQ(snap.instruments[1].name, "anno_a_total");
  EXPECT_EQ(snap.instruments[2].name, "anno_z_total");
  EXPECT_EQ(snap.counterValue("anno_a_total"), 3u);
  EXPECT_EQ(snap.counterValue("anno_a_total", {{"k", "v"}}), 2u);
  EXPECT_EQ(snap.counterValue("anno_missing_total"), 0u);
}

TEST(Exporters, PrometheusTextFormat) {
  Registry reg;
  reg.counter("anno_test_total", {{"kind", "x"}}, "A counter").inc(7);
  reg.gauge("anno_test_gauge", {}, "A gauge").set(-4);
  telemetry::Histogram& h =
      reg.histogram("anno_test_h", {1.0, 10.0}, {}, "A histogram");
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  const std::string text = telemetry::toPrometheusText(telemetry::scrape(reg));
  EXPECT_NE(text.find("# HELP anno_test_total A counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE anno_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("anno_test_total{kind=\"x\"} 7"), std::string::npos);
  EXPECT_NE(text.find("anno_test_gauge -4"), std::string::npos);
  // Cumulative le buckets plus the implicit +Inf, _sum and _count series.
  EXPECT_NE(text.find("anno_test_h_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("anno_test_h_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("anno_test_h_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("anno_test_h_sum 55.5"), std::string::npos);
  EXPECT_NE(text.find("anno_test_h_count 3"), std::string::npos);
}

TEST(Exporters, PrometheusEscapesLabelValues) {
  Registry reg;
  reg.counter("anno_test_total", {{"path", "a\\b\"c\nd"}}, "").inc(1);
  const std::string text = telemetry::toPrometheusText(telemetry::scrape(reg));
  EXPECT_NE(text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos);
}

TEST(Exporters, LabelEscapingCoversAllControlCharacters) {
  // Tabs, carriage returns and other sub-0x20 bytes used to pass through
  // both escapers raw, producing broken exposition lines; they must come
  // out as escapes now, in BOTH formats (the helpers are shared with the
  // trace exporter).
  Registry reg;
  reg.counter("anno_test_total", {{"path", "a\tb\rc\x01" "d"}}, "").inc(1);
  const Snapshot snap = telemetry::scrape(reg);

  const std::string prom = telemetry::toPrometheusText(snap);
  EXPECT_NE(prom.find("path=\"a\\tb\\rc\\u0001d\""), std::string::npos);
  const std::string json = telemetry::toJson(snap);
  EXPECT_NE(json.find("\"path\": \"a\\tb\\rc\\u0001d\""), std::string::npos);
  for (const std::string& text : {prom, json}) {
    for (const char c : text) {
      if (c != '\n') EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
    }
  }
}

TEST(Exporters, JsonContainsEveryInstrument) {
  Registry reg;
  reg.counter("anno_test_total", {{"kind", "x"}}, "").inc(7);
  reg.gauge("anno_test_gauge", {}, "").set(-4);
  reg.histogram("anno_test_h", {1.0}, {}, "").observe(0.5);
  const std::string json = telemetry::toJson(telemetry::scrape(reg));
  EXPECT_EQ(json.find("# "), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"anno_test_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"anno_test_gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": -4"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"anno_test_h\""), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+Inf\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine observer: every counter is an exact function of the content.
// ---------------------------------------------------------------------------

Labels reasonLabel(core::CutReason reason) {
  return {{"reason", core::cutReasonName(reason)}};
}

/// Annotates `clip` with an attached EngineTelemetry and returns the scrape.
Snapshot observeAnnotation(const media::VideoClip& clip,
                           core::AnnotatorConfig cfg, unsigned threads,
                           core::AnnotationTrack* trackOut = nullptr) {
  Registry reg;
  core::EngineTelemetry observer(reg);
  cfg.observer = &observer;
  cfg.threads = threads;
  core::AnnotationTrack track = core::annotateClip(clip, cfg);
  if (trackOut != nullptr) *trackOut = std::move(track);
  return telemetry::scrape(reg);
}

TEST(EngineObserver, CountersMatchTrackExactly) {
  const media::VideoClip clip = engine_golden::goldenCatwomanClip();
  core::AnnotationTrack track;
  const Snapshot snap = observeAnnotation(clip, {}, 1, &track);
  EXPECT_EQ(snap.counterValue("anno_engine_scenes_closed_total"),
            track.scenes.size());
  EXPECT_EQ(snap.counterValue("anno_engine_frames_total"), track.frameCount);
  // Every closed scene has exactly one cut reason.
  std::uint64_t reasons = 0;
  for (std::size_t r = 0; r < core::kCutReasonCount; ++r) {
    reasons += snap.counterValue(
        "anno_engine_scene_cuts_total",
        reasonLabel(static_cast<core::CutReason>(r)));
  }
  EXPECT_EQ(reasons, track.scenes.size());
  // The final scene always closes at end of stream.
  EXPECT_EQ(snap.counterValue("anno_engine_scene_cuts_total",
                              reasonLabel(core::CutReason::kEndOfStream)),
            1u);
}

TEST(EngineObserver, FramesPerSceneHistogramMatchesTrack) {
  const media::VideoClip clip = engine_golden::goldenMixedCreditsClip();
  core::AnnotationTrack track;
  const Snapshot snap = observeAnnotation(clip, {}, 1, &track);
  for (const telemetry::InstrumentSnapshot& ins : snap.instruments) {
    if (ins.name != "anno_engine_frames_per_scene") continue;
    EXPECT_EQ(ins.histogram.count, track.scenes.size());
    std::uint64_t frames = 0;
    for (const core::SceneAnnotation& s : track.scenes) {
      frames += s.span.frameCount;
    }
    EXPECT_DOUBLE_EQ(ins.histogram.sum, static_cast<double>(frames));
    return;
  }
  FAIL() << "anno_engine_frames_per_scene not found";
}

TEST(EngineObserver, CreditsCapCounted) {
  const media::VideoClip clip = engine_golden::goldenMixedCreditsClip();
  core::AnnotatorConfig cfg;
  cfg.protectCredits = true;
  const Snapshot snap = observeAnnotation(clip, cfg, 1);
  EXPECT_GT(snap.counterValue("anno_engine_credits_capped_total"), 0u);
  // Without protection the counter never moves.
  const Snapshot unprotected = observeAnnotation(clip, {}, 1);
  EXPECT_EQ(unprotected.counterValue("anno_engine_credits_capped_total"), 0u);
}

TEST(EngineObserver, EmdDetectorAttributesEmdCuts) {
  const media::VideoClip clip = engine_golden::goldenMixedCreditsClip();
  core::AnnotatorConfig cfg;
  cfg.detector = core::SceneDetector::kHistogramEmd;
  const Snapshot snap = observeAnnotation(clip, cfg, 1);
  EXPECT_GT(snap.counterValue("anno_engine_scene_cuts_total",
                              reasonLabel(core::CutReason::kHistogramEmd)),
            0u);
}

TEST(EngineObserver, PerFrameGranularityCountsPerFrameCuts) {
  const media::VideoClip clip = engine_golden::goldenCatwomanClip();
  core::AnnotatorConfig cfg;
  cfg.granularity = core::Granularity::kPerFrame;
  core::AnnotationTrack track;
  const Snapshot snap = observeAnnotation(clip, cfg, 1, &track);
  EXPECT_EQ(snap.counterValue("anno_engine_scene_cuts_total",
                              reasonLabel(core::CutReason::kPerFrame)),
            track.scenes.size() - 1);
}

/// The determinism contract: semantic counters are bit-identical for any
/// thread count (the engine push loop is serial per clip; profiling fans
/// out).  Wall-time histograms are the one exemption.
TEST(EngineObserver, CountersBitIdenticalAcrossThreadCounts) {
  for (const media::VideoClip& clip :
       {engine_golden::goldenCatwomanClip(),
        engine_golden::goldenMixedCreditsClip()}) {
    const Snapshot base = observeAnnotation(clip, {}, 1);
    for (unsigned threads : {2u, 8u}) {
      const Snapshot other = observeAnnotation(clip, {}, threads);
      ASSERT_EQ(base.instruments.size(), other.instruments.size());
      for (std::size_t i = 0; i < base.instruments.size(); ++i) {
        const telemetry::InstrumentSnapshot& a = base.instruments[i];
        const telemetry::InstrumentSnapshot& b = other.instruments[i];
        ASSERT_EQ(a.name, b.name);
        ASSERT_EQ(a.labels, b.labels);
        if (a.name == "anno_engine_plan_seconds") {
          EXPECT_EQ(a.histogram.count, b.histogram.count) << a.name;
          continue;  // durations differ; the event count may not
        }
        EXPECT_EQ(a.counterValue, b.counterValue) << a.name;
        EXPECT_EQ(a.histogram.counts, b.histogram.counts) << a.name;
        EXPECT_EQ(a.histogram.count, b.histogram.count) << a.name;
        EXPECT_DOUBLE_EQ(a.histogram.sum, b.histogram.sum) << a.name;
      }
    }
  }
}

/// Null observer = zero cost AND bit-identical output (the annotation
/// result must not depend on whether anyone is watching).
TEST(EngineObserver, ObservedAndUnobservedTracksIdentical) {
  const media::VideoClip clip = engine_golden::goldenMixedCreditsClip();
  core::AnnotatorConfig cfg;
  const core::AnnotationTrack plain = core::annotateClip(clip, cfg);
  Registry reg;
  core::EngineTelemetry observer(reg);
  cfg.observer = &observer;
  const core::AnnotationTrack observed = core::annotateClip(clip, cfg);
  ASSERT_EQ(plain.scenes.size(), observed.scenes.size());
  for (std::size_t i = 0; i < plain.scenes.size(); ++i) {
    EXPECT_EQ(plain.scenes[i].span.firstFrame,
              observed.scenes[i].span.firstFrame);
    EXPECT_EQ(plain.scenes[i].span.frameCount,
              observed.scenes[i].span.frameCount);
    EXPECT_EQ(plain.scenes[i].safeLuma, observed.scenes[i].safeLuma);
  }
}

}  // namespace
}  // namespace anno
