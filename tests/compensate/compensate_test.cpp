#include "compensate/compensate.h"

#include <gtest/gtest.h>

#include "media/luminance.h"
#include "media/rng.h"

namespace anno::compensate {
namespace {

media::Image randomImage(std::uint64_t seed, int w = 24, int h = 18) {
  media::SplitMix64 rng(seed);
  media::Image img(w, h);
  for (auto& p : img.pixels()) {
    p = media::Rgb8{static_cast<std::uint8_t>(rng.below(200)),
                    static_cast<std::uint8_t>(rng.below(200)),
                    static_cast<std::uint8_t>(rng.below(200))};
  }
  return img;
}

TEST(ContrastEnhance, ScalesUnclippedPixels) {
  media::Image img(2, 1);
  img(0, 0) = media::Rgb8{50, 80, 100};
  img(1, 0) = media::Rgb8{200, 10, 10};
  const media::Image out = contrastEnhance(img, 2.0);
  EXPECT_EQ(out(0, 0), (media::Rgb8{100, 160, 200}));
  EXPECT_EQ(out(1, 0), (media::Rgb8{255, 20, 20}));  // red channel clips
}

TEST(ContrastEnhance, GainOneIsIdentity) {
  const media::Image img = randomImage(1);
  EXPECT_EQ(contrastEnhance(img, 1.0), img);
}

TEST(ContrastEnhance, Validation) {
  const media::Image img = randomImage(2);
  EXPECT_THROW((void)contrastEnhance(img, 0.9), std::invalid_argument);
  EXPECT_THROW((void)contrastEnhance(media::Image{}, 1.5),
               std::invalid_argument);
}

TEST(ContrastEnhance, LuminanceDomainScalesLuma) {
  const media::Image img = randomImage(3);
  const media::Image out = contrastEnhance(img, 1.5, Domain::kLuminance);
  // For pixels whose reconstructed channels stay inside [0,255] the luma
  // should scale by ~1.5 (channel saturation distorts luma, so skip those).
  int checked = 0;
  for (std::size_t i = 0; i < img.pixelCount(); ++i) {
    const media::Rgb8& po = out.pixels()[i];
    const bool saturated = po.r == 0 || po.r == 255 || po.g == 0 ||
                           po.g == 255 || po.b == 0 || po.b == 255;
    if (saturated) continue;
    const double y0 = media::luminance(img.pixels()[i]);
    const double y1 = media::luminance(out.pixels()[i]);
    EXPECT_NEAR(y1, y0 * 1.5, 2.5);
    ++checked;
  }
  EXPECT_GT(checked, 50);
}

TEST(ContrastEnhance, PerChannelPreservesHueOfUnclipped) {
  media::Image img(1, 1, media::Rgb8{60, 90, 120});
  const media::Image out = contrastEnhance(img, 2.0);
  const media::Rgb8 p = out(0, 0);
  // Ratios preserved exactly when no channel clips.
  EXPECT_NEAR(static_cast<double>(p.g) / p.r, 1.5, 0.02);
  EXPECT_NEAR(static_cast<double>(p.b) / p.r, 2.0, 0.02);
}

TEST(BrightnessCompensate, AddsOffset) {
  media::Image img(1, 1, media::Rgb8{100, 200, 250});
  const media::Image out = brightnessCompensate(img, 20.0);
  EXPECT_EQ(out(0, 0), (media::Rgb8{120, 220, 255}));
}

TEST(BrightnessCompensate, ZeroIsIdentity) {
  const media::Image img = randomImage(4);
  EXPECT_EQ(brightnessCompensate(img, 0.0), img);
}

TEST(BrightnessCompensate, Validation) {
  const media::Image img = randomImage(5);
  EXPECT_THROW((void)brightnessCompensate(img, -1.0), std::invalid_argument);
  EXPECT_THROW((void)brightnessCompensate(media::Image{}, 1.0),
               std::invalid_argument);
}

TEST(BrightnessCompensate, LuminanceDomain) {
  media::Image img(1, 1, media::Rgb8{100, 100, 100});
  const media::Image out =
      brightnessCompensate(img, 30.0, Domain::kLuminance);
  EXPECT_NEAR(media::luminance(out(0, 0)), 130.0, 2.0);
}

TEST(ToneCurve, SoftKneeIsMonotone) {
  for (double k : {1.0, 1.5, 2.5, 4.0}) {
    const ToneCurve curve = softKneeToneCurve(k);
    for (int y = 1; y < 256; ++y) {
      EXPECT_GE(curve[y], curve[y - 1]) << "k=" << k << " y=" << y;
    }
  }
}

TEST(ToneCurve, LinearBelowKnee) {
  const ToneCurve curve = softKneeToneCurve(2.0, 0.8);
  // Knee output 204, knee input 102: below that, out = 2*y exactly.
  for (int y = 0; y <= 100; y += 10) {
    EXPECT_NEAR(curve[y], 2.0 * y, 1.0) << "y=" << y;
  }
}

TEST(ToneCurve, RollsOffInsteadOfClipping) {
  const ToneCurve curve = softKneeToneCurve(2.0, 0.8);
  // Hard scaling clips everything above 127 to 255; the soft knee keeps
  // bright inputs distinguishable.
  EXPECT_LT(curve[200], 255);
  EXPECT_GT(curve[250], curve[200]);
}

TEST(ToneCurve, UnityGainIsNearIdentity) {
  const ToneCurve curve = softKneeToneCurve(1.0, 1.0);
  for (int y = 0; y < 256; ++y) {
    EXPECT_NEAR(curve[y], y, 1.0);
  }
}

TEST(ToneCurve, Validation) {
  EXPECT_THROW((void)softKneeToneCurve(0.5), std::invalid_argument);
  EXPECT_THROW((void)softKneeToneCurve(2.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)softKneeToneCurve(2.0, 1.5), std::invalid_argument);
}

TEST(ToneCurve, ApplyTransformsLuma) {
  media::Image img(1, 1, media::Rgb8{80, 80, 80});
  const ToneCurve curve = softKneeToneCurve(2.0, 0.9);
  const media::Image out = applyToneCurve(img, curve);
  EXPECT_NEAR(media::luminance(out(0, 0)), 160.0, 3.0);
  EXPECT_THROW((void)applyToneCurve(media::Image{}, curve),
               std::invalid_argument);
}

TEST(ToneCurve, MseMeasuresPerceivedError) {
  media::Histogram dark;
  dark.add(50, 100);
  const double k = 2.0;
  // Dark content sits below the knee: perceived output equals input,
  // near-zero error.
  EXPECT_LT(toneCurveMse(dark, softKneeToneCurve(k, 0.85), k), 1.5);
  // Bright content gets compressed: visible perceived error.
  media::Histogram bright;
  bright.add(240, 100);
  EXPECT_GT(toneCurveMse(bright, softKneeToneCurve(k, 0.85), k), 25.0);
  EXPECT_THROW((void)toneCurveMse(dark, softKneeToneCurve(k), 0.5),
               std::invalid_argument);
}

TEST(ClippedFraction, CountsSaturatingPixels) {
  media::Image img(2, 1);
  img(0, 0) = media::Rgb8{100, 100, 100};  // clips at k > 2.55
  img(1, 0) = media::Rgb8{200, 200, 200};  // clips at k > 1.275
  EXPECT_DOUBLE_EQ(clippedFraction(img, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clippedFraction(img, 1.5), 0.5);
  EXPECT_DOUBLE_EQ(clippedFraction(img, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(clippedFraction(media::Image{}, 2.0), 0.0);
}

TEST(FractionAboveLuma, MatchesHistogramTail) {
  media::Image img(4, 1);
  img(0, 0) = media::Rgb8{10, 10, 10};
  img(1, 0) = media::Rgb8{100, 100, 100};
  img(2, 0) = media::Rgb8{200, 200, 200};
  img(3, 0) = media::Rgb8{250, 250, 250};
  EXPECT_DOUBLE_EQ(fractionAboveLuma(img, 150), 0.5);
  EXPECT_DOUBLE_EQ(fractionAboveLuma(img, 255), 0.0);
  EXPECT_DOUBLE_EQ(fractionAboveLuma(img, 5), 1.0);
}

}  // namespace
}  // namespace anno::compensate
