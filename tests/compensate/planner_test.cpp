#include "compensate/compensate.h"
#include "compensate/planner.h"

#include <gtest/gtest.h>

#include "media/rng.h"

namespace anno::compensate {
namespace {

display::DeviceModel ipaq() {
  return display::makeDevice(display::KnownDevice::kIpaq5555);
}

display::DeviceModel linearDevice() {
  display::DeviceModel d;
  d.name = "linear";
  d.transfer = display::TransferFunction::linear();
  return d;
}

TEST(Planner, FullRangeSceneNeedsFullBacklight) {
  const CompensationPlan plan = planForLuma(linearDevice(), 255);
  EXPECT_EQ(plan.backlightLevel, 255);
  EXPECT_DOUBLE_EQ(plan.gainK, 1.0);
  EXPECT_DOUBLE_EQ(plan.backlightRel, 1.0);
}

TEST(Planner, GainIsInverseOfAchievedBacklight) {
  // Core invariant: k = 1 / T(level), so L*Y product is preserved.
  for (int luma : {40, 80, 128, 200, 240}) {
    const display::DeviceModel device = ipaq();
    const CompensationPlan plan =
        planForLuma(device, static_cast<std::uint8_t>(luma));
    EXPECT_NEAR(plan.gainK * plan.backlightRel, 1.0, 1e-9) << "luma=" << luma;
    EXPECT_NEAR(plan.lumaCeiling, 255.0 * plan.backlightRel, 1e-9);
  }
}

TEST(Planner, CeilingCoversSceneLuma) {
  // The chosen level must be able to show the scene's safe luminance:
  // lumaCeiling >= sceneLuma.
  for (int luma = 0; luma <= 255; luma += 5) {
    const CompensationPlan plan =
        planForLuma(ipaq(), static_cast<std::uint8_t>(luma));
    EXPECT_GE(plan.lumaCeiling + 1e-9, luma) << "luma=" << luma;
  }
}

TEST(Planner, LevelMonotoneInSceneLuma) {
  int prev = 0;
  for (int luma = 0; luma <= 255; ++luma) {
    const CompensationPlan plan =
        planForLuma(ipaq(), static_cast<std::uint8_t>(luma));
    EXPECT_GE(plan.backlightLevel, prev) << "luma=" << luma;
    prev = plan.backlightLevel;
  }
}

TEST(Planner, MinBacklightLevelRespected) {
  const CompensationPlan plan = planForLuma(ipaq(), 0, 25);
  EXPECT_GE(plan.backlightLevel, 25);
  EXPECT_THROW((void)planForLuma(ipaq(), 100, -1), std::invalid_argument);
  EXPECT_THROW((void)planForLuma(ipaq(), 100, 256), std::invalid_argument);
}

TEST(Planner, ConcaveTransferDimsHarder) {
  // With the iPAQ 5555's concave transfer, the level needed for a given
  // luminance is LOWER than linear -- the device-specific tailoring the
  // paper advocates buys extra savings.
  const CompensationPlan concave = planForLuma(ipaq(), 128);
  const CompensationPlan linear = planForLuma(linearDevice(), 128);
  EXPECT_LT(concave.backlightLevel, linear.backlightLevel);
}

TEST(Planner, HistogramBudgetRespected) {
  media::SplitMix64 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    media::Histogram hist;
    const int n = 500 + static_cast<int>(rng.below(2000));
    for (int i = 0; i < n; ++i) {
      hist.add(static_cast<std::uint8_t>(rng.below(256)));
    }
    for (double q : {0.0, 0.05, 0.10, 0.15, 0.20}) {
      const CompensationPlan plan = planForHistogram(ipaq(), hist, q);
      EXPECT_LE(plannedClipFraction(plan, hist), q + 1e-9)
          << "trial=" << trial << " q=" << q;
    }
  }
}

TEST(Planner, ZeroClipPlanClipsNothing) {
  media::Histogram hist;
  hist.add(30, 100);
  hist.add(180, 5);
  const CompensationPlan plan = planForHistogram(ipaq(), hist, 0.0);
  EXPECT_DOUBLE_EQ(plannedClipFraction(plan, hist), 0.0);
}

TEST(Planner, LargerBudgetNeverBrighter) {
  media::Histogram hist;
  media::SplitMix64 rng(8);
  for (int i = 0; i < 3000; ++i) {
    hist.add(static_cast<std::uint8_t>(rng.below(256)));
  }
  int prev = 256;
  for (double q : {0.0, 0.05, 0.10, 0.15, 0.20}) {
    const CompensationPlan plan = planForHistogram(ipaq(), hist, q);
    EXPECT_LE(plan.backlightLevel, prev);
    prev = plan.backlightLevel;
  }
}

TEST(Planner, HistogramValidation) {
  media::Histogram empty;
  EXPECT_THROW((void)planForHistogram(ipaq(), empty, 0.1),
               std::invalid_argument);
  media::Histogram h;
  h.add(10, 1);
  EXPECT_THROW((void)planForHistogram(ipaq(), h, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)planForHistogram(ipaq(), h, 1.0), std::invalid_argument);
}

TEST(Prediction, CompensatedHistogramMatchesActualOnGray) {
  // Gray content: luma scales exactly, so prediction == measurement.
  media::Image img(16, 16);
  media::SplitMix64 rng(9);
  for (media::Rgb8& p : img.pixels()) {
    const auto v = static_cast<std::uint8_t>(rng.below(200));
    p = media::Rgb8{v, v, v};
  }
  const double k = 1.6;
  const media::Histogram predicted =
      predictCompensatedHistogram(media::Histogram::ofImage(img), k);
  const media::Histogram actual =
      media::Histogram::ofImage(contrastEnhance(img, k));
  // Rounding can shift single codes; EMD must be tiny.
  EXPECT_LT(media::Histogram::earthMovers(predicted, actual), 0.6);
  EXPECT_EQ(predicted.total(), actual.total());
}

TEST(Prediction, PerceivedHistogramClampsAtCeiling) {
  media::Histogram hist;
  hist.add(50, 80);
  hist.add(200, 20);
  CompensationPlan plan;
  plan.lumaCeiling = 120.0;
  const media::Histogram perceived = predictPerceivedHistogram(hist, plan);
  EXPECT_EQ(perceived.count(50), 80u);   // unclipped: exact
  EXPECT_EQ(perceived.count(120), 20u);  // clipped: pinned at ceiling
  EXPECT_EQ(perceived.count(200), 0u);
}

TEST(Prediction, EmdZeroWhenNothingClips) {
  media::Histogram hist;
  hist.add(40, 100);
  hist.add(90, 100);
  CompensationPlan plan = planForLuma(ipaq(), 90);
  EXPECT_NEAR(predictPerceivedEmd(hist, plan), 0.0, 1e-9);
}

TEST(Prediction, EmdGrowsWithAggressiveDimming) {
  media::SplitMix64 rng(10);
  media::Histogram hist;
  for (int i = 0; i < 4000; ++i) {
    hist.add(static_cast<std::uint8_t>(rng.below(256)));
  }
  double prev = -1.0;
  for (double q : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    const CompensationPlan plan = planForHistogram(ipaq(), hist, q);
    const double emd = predictPerceivedEmd(hist, plan);
    EXPECT_GE(emd, prev - 1e-9) << "q=" << q;
    prev = emd;
  }
}

TEST(QualityThreshold, ContractIsRespected) {
  media::SplitMix64 rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    media::Histogram hist;
    for (int i = 0; i < 3000; ++i) {
      hist.add(static_cast<std::uint8_t>(rng.below(256)));
    }
    for (double maxEmd : {0.0, 1.0, 5.0, 20.0}) {
      const CompensationPlan plan =
          planForQualityThreshold(ipaq(), hist, maxEmd);
      EXPECT_LE(predictPerceivedEmd(hist, plan), maxEmd + 1e-9)
          << "trial=" << trial << " maxEmd=" << maxEmd;
    }
  }
}

TEST(QualityThreshold, LooserContractDimsDeeper) {
  media::SplitMix64 rng(12);
  media::Histogram hist;
  for (int i = 0; i < 3000; ++i) {
    hist.add(static_cast<std::uint8_t>(rng.below(256)));
  }
  int prev = 256;
  for (double maxEmd : {0.0, 2.0, 8.0, 30.0}) {
    const CompensationPlan plan =
        planForQualityThreshold(ipaq(), hist, maxEmd);
    EXPECT_LE(plan.backlightLevel, prev) << "maxEmd=" << maxEmd;
    prev = plan.backlightLevel;
  }
}

TEST(QualityThreshold, ZeroThresholdClipsNothing) {
  media::Histogram hist;
  hist.add(60, 500);
  hist.add(210, 20);
  const CompensationPlan plan = planForQualityThreshold(ipaq(), hist, 0.0);
  EXPECT_GE(plan.lumaCeiling + 1e-9, 210.0);
  EXPECT_DOUBLE_EQ(plannedClipFraction(plan, hist), 0.0);
}

TEST(QualityThreshold, Validation) {
  media::Histogram h;
  h.add(1, 1);
  EXPECT_THROW((void)planForQualityThreshold(ipaq(), h, -1.0),
               std::invalid_argument);
  media::Histogram empty;
  EXPECT_THROW((void)planForQualityThreshold(ipaq(), empty, 1.0),
               std::invalid_argument);
}

TEST(Prediction, Validation) {
  media::Histogram h;
  h.add(1, 1);
  EXPECT_THROW((void)predictCompensatedHistogram(h, 0.5),
               std::invalid_argument);
}

TEST(PlannerAmbient, ZeroAmbientMatchesBasePlanner) {
  for (int luma : {40, 120, 200, 255}) {
    const CompensationPlan base =
        planForLuma(ipaq(), static_cast<std::uint8_t>(luma));
    const CompensationPlan amb =
        planForLumaAmbient(ipaq(), static_cast<std::uint8_t>(luma), 0.0);
    EXPECT_EQ(amb.backlightLevel, base.backlightLevel) << "luma=" << luma;
    EXPECT_NEAR(amb.gainK, base.gainK, 1e-9);
    EXPECT_NEAR(amb.lumaCeiling, base.lumaCeiling, 1e-9);
  }
}

TEST(PlannerAmbient, BrighterAmbientDimsDeeper) {
  // Transflective panel: sunlight feeds the reflective path, so the
  // backlight can drop further at equal quality.
  int prev = 256;
  for (double ambient : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const CompensationPlan plan = planForLumaAmbient(ipaq(), 200, ambient);
    EXPECT_LE(plan.backlightLevel, prev) << "ambient=" << ambient;
    prev = plan.backlightLevel;
  }
  EXPECT_LT(prev, planForLuma(ipaq(), 200).backlightLevel);
}

TEST(PlannerAmbient, TransmissivePanelUnaffected) {
  display::DeviceModel d = ipaq();
  d.panel.type = display::PanelType::kTransmissive;
  const CompensationPlan dark = planForLumaAmbient(d, 180, 0.0);
  const CompensationPlan sunny = planForLumaAmbient(d, 180, 3.0);
  EXPECT_EQ(dark.backlightLevel, sunny.backlightLevel);
}

TEST(PlannerAmbient, PerceivedIntensityStillPreserved) {
  // With gain k and the combined light paths, perceived output for an
  // unclipped pixel equals the dark-room full-backlight reference:
  //   (T(b) + (rho_r/rho_t)*A) * k == 1.
  const display::DeviceModel d = ipaq();
  for (double ambient : {0.0, 0.8, 2.5}) {
    const CompensationPlan plan = planForLumaAmbient(d, 150, ambient);
    const double boost =
        d.panel.reflectance / d.panel.transmittance * ambient;
    if (plan.gainK > 1.0) {
      EXPECT_NEAR((plan.backlightRel + boost) * plan.gainK, 1.0, 1e-9)
          << "ambient=" << ambient;
    }
  }
}

TEST(PlannerAmbient, Validation) {
  EXPECT_THROW((void)planForLumaAmbient(ipaq(), 100, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)planForLumaAmbient(ipaq(), 100, 0.0, 300),
               std::invalid_argument);
}

TEST(Planner, PaperQualityLevelsConstant) {
  ASSERT_EQ(kPaperQualityLevelCount, 5);
  EXPECT_DOUBLE_EQ(kPaperQualityLevels[0], 0.00);
  EXPECT_DOUBLE_EQ(kPaperQualityLevels[4], 0.20);
}

}  // namespace
}  // namespace anno::compensate
