#include "core/anno_codec.h"

#include <gtest/gtest.h>

#include "core/annotate.h"
#include "media/clipgen.h"
#include "media/rng.h"

namespace anno::core {
namespace {

AnnotationTrack randomTrack(std::uint64_t seed) {
  media::SplitMix64 rng(seed);
  AnnotationTrack t;
  t.clipName = "clip_" + std::to_string(seed);
  t.fps = 12.0;
  t.granularity =
      rng.uniform() < 0.5 ? Granularity::kPerScene : Granularity::kPerFrame;
  t.qualityLevels = {0.0, 0.05, 0.10, 0.15, 0.20};
  const int nscenes = 1 + static_cast<int>(rng.below(40));
  std::uint32_t start = 0;
  for (int i = 0; i < nscenes; ++i) {
    SceneAnnotation s;
    s.span.firstFrame = start;
    s.span.frameCount = 1 + static_cast<std::uint32_t>(rng.below(100));
    start += s.span.frameCount;
    std::uint8_t level = static_cast<std::uint8_t>(rng.between(50, 255));
    for (std::size_t q = 0; q < t.qualityLevels.size(); ++q) {
      s.safeLuma.push_back(level);
      level = static_cast<std::uint8_t>(
          std::max<std::int64_t>(0, level - rng.below(20)));
    }
    t.scenes.push_back(std::move(s));
  }
  t.frameCount = start;
  return t;
}

class TrackRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(TrackRoundtrip, EncodeDecodeIsIdentity) {
  const AnnotationTrack track = randomTrack(GetParam());
  const auto bytes = encodeTrack(track);
  const AnnotationTrack decoded = decodeTrack(bytes);
  EXPECT_EQ(decoded, track);
}

INSTANTIATE_TEST_SUITE_P(RandomTracks, TrackRoundtrip,
                         ::testing::Range(1, 16));

TEST(AnnoCodec, RealTrackRoundtrip) {
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kShrek2, 0.05, 48, 36);
  const AnnotationTrack track = annotateClip(clip);
  EXPECT_EQ(decodeTrack(encodeTrack(track)), track);
}

TEST(AnnoCodec, OverheadIsHundredsOfBytes) {
  // Paper Sec. 4.3: annotations are "in the order of hundreds of bytes".
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kTheMovie, 0.1, 48, 36);
  const AnnotationTrack track = annotateClip(clip);
  const auto bytes = encodeTrack(track);
  EXPECT_LT(bytes.size(), 1000u) << "scenes: " << track.scenes.size();
  EXPECT_GT(bytes.size(), 20u);
}

TEST(AnnoCodec, RejectsInvalidTrackOnEncode) {
  AnnotationTrack bad;
  EXPECT_THROW((void)encodeTrack(bad), std::invalid_argument);
}

TEST(AnnoCodec, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_THROW((void)decodeTrack(bytes), std::runtime_error);
}

TEST(AnnoCodec, RejectsTruncation) {
  const AnnotationTrack track = randomTrack(3);
  auto bytes = encodeTrack(track);
  for (std::size_t cut : {bytes.size() / 4, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::vector<std::uint8_t> trunc(bytes.begin(),
                                    bytes.begin() + static_cast<long>(cut));
    EXPECT_ANY_THROW((void)decodeTrack(trunc)) << "cut=" << cut;
  }
}

TEST(AnnoCodec, RejectsCorruptedLumaMatrix) {
  const AnnotationTrack track = randomTrack(4);
  auto bytes = encodeTrack(track);
  // Flip a byte near the end (inside the RLE'd luma matrix): decoding must
  // either throw or produce a track that fails validation -- never UB.
  bytes[bytes.size() - 2] ^= 0xFF;
  try {
    const AnnotationTrack t = decodeTrack(bytes);
    EXPECT_NO_THROW(validateTrack(t));  // if it decoded, it must be valid
  } catch (const std::exception&) {
    SUCCEED();
  }
}

TEST(AnnoCodec, LegacyFormatRoundtripsAndInteroperates) {
  // ANN0 streams must stay decodable by both the strict and the lenient
  // decoder, and must be recognized as the legacy (all-or-nothing) framing.
  for (int seed = 1; seed <= 8; ++seed) {
    const AnnotationTrack track = randomTrack(seed);
    const auto legacy = encodeTrackLegacy(track);
    const auto resilient = encodeTrack(track);
    EXPECT_NE(legacy, resilient);
    EXPECT_EQ(decodeTrack(legacy), track);
    const LenientDecodeResult lenient = decodeTrackLenient(legacy);
    ASSERT_TRUE(lenient.usable);
    EXPECT_TRUE(lenient.damage.legacyFormat);
    EXPECT_TRUE(lenient.damage.intact());
    EXPECT_EQ(lenient.track, track);
  }
}

TEST(AnnoCodec, LenientMatchesStrictOnIntactInput) {
  const AnnotationTrack track = randomTrack(6);
  const auto bytes = encodeTrack(track);
  const LenientDecodeResult lenient = decodeTrackLenient(bytes);
  ASSERT_TRUE(lenient.usable);
  EXPECT_TRUE(lenient.damage.intact());
  EXPECT_FALSE(lenient.damage.legacyFormat);
  EXPECT_GE(lenient.damage.totalChunks, 2u);  // header + >=1 scene group
  EXPECT_EQ(lenient.damage.damagedChunks, 0u);
  EXPECT_EQ(lenient.damage.damagedFrames, 0u);
  EXPECT_EQ(lenient.track, decodeTrack(bytes));
}

TEST(AnnoCodec, DamageReportLocalizesCorruption) {
  const AnnotationTrack track = randomTrack(9);
  auto bytes = encodeTrack(track);
  bytes[bytes.size() - 3] ^= 0x40;  // inside the last scene-group payload
  EXPECT_THROW((void)decodeTrack(bytes), std::runtime_error);
  const LenientDecodeResult lenient = decodeTrackLenient(bytes);
  ASSERT_TRUE(lenient.usable);
  EXPECT_TRUE(lenient.damage.headerIntact);
  EXPECT_GE(lenient.damage.damagedChunks, 1u);
  EXPECT_LT(lenient.damage.damagedChunks, lenient.damage.totalChunks);
  EXPECT_FALSE(lenient.damage.repairedSpans.empty());
  EXPECT_GT(lenient.damage.damagedFrames, 0u);
  EXPECT_EQ(lenient.track.frameCount, track.frameCount);
  EXPECT_NO_THROW(validateTrack(lenient.track));
}

TEST(AnnoCodec, CorruptLegacyStreamIsAllOrNothing) {
  const AnnotationTrack track = randomTrack(10);
  auto bytes = encodeTrackLegacy(track);
  bytes[bytes.size() / 2] ^= 0xFF;
  const LenientDecodeResult lenient = decodeTrackLenient(bytes);
  EXPECT_TRUE(lenient.damage.legacyFormat);
  if (lenient.usable) {
    // ANN0 has no checksums; a flip may slip through -- but then the whole
    // track must still validate (the decoder's sanity checks held).
    EXPECT_NO_THROW(validateTrack(lenient.track));
  } else {
    EXPECT_EQ(lenient.damage.damagedChunks, 1u);
    EXPECT_TRUE(lenient.track.scenes.empty());
  }
}

TEST(AnnoCodec, MeasureEncodingConsistent) {
  const AnnotationTrack track = randomTrack(5);
  const AnnotationSizeReport report = measureEncoding(track);
  EXPECT_EQ(report.encodedBytes, encodeTrack(track).size());
  EXPECT_EQ(report.sceneCount, track.scenes.size());
  EXPECT_EQ(report.rawLumaBytes,
            track.scenes.size() * track.qualityLevels.size());
  EXPECT_EQ(report.headerBytes + report.sceneTableBytes, report.encodedBytes);
}

TEST(AnnoCodec, RleHelpsOnRepetitiveTracks) {
  // A long clip of identical scenes: the luma matrix is constant, so the
  // encoded size should grow far slower than scene count.
  AnnotationTrack t;
  t.clipName = "rep";
  t.fps = 12.0;
  t.qualityLevels = {0.0, 0.05, 0.10, 0.15, 0.20};
  std::uint32_t start = 0;
  for (int i = 0; i < 200; ++i) {
    SceneAnnotation s;
    s.span = SceneSpan{start, 10};
    s.safeLuma = {200, 190, 180, 170, 160};
    start += 10;
    t.scenes.push_back(s);
  }
  t.frameCount = start;
  const AnnotationSizeReport report = measureEncoding(t);
  // 200 scenes x 5 bytes = 1000 raw luma bytes; RLE packs the repeats.
  EXPECT_LT(report.encodedBytes, 600u);
}

}  // namespace
}  // namespace anno::core
