#include "core/annotation.h"

#include <gtest/gtest.h>

namespace anno::core {
namespace {

AnnotationTrack goodTrack() {
  AnnotationTrack t;
  t.clipName = "x";
  t.fps = 12.0;
  t.frameCount = 30;
  t.qualityLevels = {0.0, 0.05, 0.10};
  t.scenes = {
      {SceneSpan{0, 10}, {200, 180, 160}},
      {SceneSpan{10, 20}, {120, 110, 100}},
  };
  return t;
}

TEST(AnnotationTrack, GoodTrackValidates) {
  EXPECT_NO_THROW(validateTrack(goodTrack()));
}

TEST(AnnotationTrack, RejectsBadFps) {
  AnnotationTrack t = goodTrack();
  t.fps = 0.0;
  EXPECT_THROW(validateTrack(t), std::invalid_argument);
}

TEST(AnnotationTrack, RejectsNoQualityLevels) {
  AnnotationTrack t = goodTrack();
  t.qualityLevels.clear();
  EXPECT_THROW(validateTrack(t), std::invalid_argument);
}

TEST(AnnotationTrack, RejectsUnsortedQualityLevels) {
  AnnotationTrack t = goodTrack();
  t.qualityLevels = {0.10, 0.05, 0.0};
  EXPECT_THROW(validateTrack(t), std::invalid_argument);
}

TEST(AnnotationTrack, RejectsOutOfRangeQuality) {
  AnnotationTrack t = goodTrack();
  t.qualityLevels = {0.0, 0.5, 1.0};
  EXPECT_THROW(validateTrack(t), std::invalid_argument);
}

TEST(AnnotationTrack, RejectsNoScenes) {
  AnnotationTrack t = goodTrack();
  t.scenes.clear();
  EXPECT_THROW(validateTrack(t), std::invalid_argument);
}

TEST(AnnotationTrack, RejectsGapInSpans) {
  AnnotationTrack t = goodTrack();
  t.scenes[1].span.firstFrame = 11;  // gap after frame 9
  EXPECT_THROW(validateTrack(t), std::invalid_argument);
}

TEST(AnnotationTrack, RejectsEmptyScene) {
  AnnotationTrack t = goodTrack();
  t.scenes[0].span.frameCount = 0;
  EXPECT_THROW(validateTrack(t), std::invalid_argument);
}

TEST(AnnotationTrack, RejectsWrongSafeLumaCount) {
  AnnotationTrack t = goodTrack();
  t.scenes[0].safeLuma.pop_back();
  EXPECT_THROW(validateTrack(t), std::invalid_argument);
}

TEST(AnnotationTrack, RejectsIncreasingSafeLuma) {
  AnnotationTrack t = goodTrack();
  t.scenes[0].safeLuma = {100, 150, 120};  // more clipping must not raise it
  EXPECT_THROW(validateTrack(t), std::invalid_argument);
}

TEST(AnnotationTrack, RejectsCoverageMismatch) {
  AnnotationTrack t = goodTrack();
  t.frameCount = 31;
  EXPECT_THROW(validateTrack(t), std::invalid_argument);
}

TEST(AnnotationTrack, SceneIndexForFrame) {
  const AnnotationTrack t = goodTrack();
  EXPECT_EQ(sceneIndexForFrame(t, 0), 0u);
  EXPECT_EQ(sceneIndexForFrame(t, 9), 0u);
  EXPECT_EQ(sceneIndexForFrame(t, 10), 1u);
  EXPECT_EQ(sceneIndexForFrame(t, 29), 1u);
  EXPECT_THROW((void)sceneIndexForFrame(t, 30), std::out_of_range);
}

TEST(AnnotationTrack, QualityCount) {
  EXPECT_EQ(goodTrack().qualityCount(), 3u);
}

}  // namespace
}  // namespace anno::core
