#include "core/sketch.h"

#include <gtest/gtest.h>

#include "core/annotate.h"
#include "media/clipgen.h"
#include "media/rng.h"

namespace anno::core {
namespace {

media::Histogram randomHist(std::uint64_t seed, int n = 4000) {
  media::SplitMix64 rng(seed);
  media::Histogram h;
  for (int i = 0; i < n; ++i) {
    h.add(static_cast<std::uint8_t>(rng.below(256)));
  }
  return h;
}

TEST(Sketch, BinsSumToRoughly255) {
  const SceneSketch s = sketchHistogram(randomHist(1));
  int sum = 0;
  for (std::uint8_t b : s.bins) sum += b;
  EXPECT_NEAR(sum, 255, 8);  // rounding of 16 bins
}

TEST(Sketch, ExpansionApproximatesOriginal) {
  // The sketch->expand round trip must stay within one bin width (16) of
  // the original distribution in EMD.
  for (std::uint64_t seed : {2ull, 3ull, 4ull}) {
    const media::Histogram original = randomHist(seed);
    const media::Histogram expanded =
        expandSketch(sketchHistogram(original));
    EXPECT_LT(media::Histogram::earthMovers(original, expanded), 16.0)
        << "seed " << seed;
  }
}

TEST(Sketch, ConcentratedMassStaysInItsBin) {
  media::Histogram h;
  h.add(40, 900);   // bin 2
  h.add(250, 100);  // bin 15
  const SceneSketch s = sketchHistogram(h);
  EXPECT_NEAR(s.bins[2], 230, 2);   // 90% of 255
  EXPECT_NEAR(s.bins[15], 26, 2);   // 10% of 255
  for (int b = 0; b < 16; ++b) {
    if (b != 2 && b != 15) {
      EXPECT_EQ(s.bins[b], 0) << "bin " << b;
    }
  }
}

TEST(Sketch, EmptyHistogramThrows) {
  media::Histogram empty;
  EXPECT_THROW((void)sketchHistogram(empty), std::invalid_argument);
}

TEST(SketchTrack, EncodeDecodeRoundtrip) {
  media::SplitMix64 rng(7);
  SketchTrack track;
  for (int s = 0; s < 25; ++s) {
    track.scenes.push_back(sketchHistogram(randomHist(rng.next())));
  }
  EXPECT_EQ(SketchTrack::decode(track.encode()), track);
}

TEST(SketchTrack, CompactForSimilarScenes) {
  // Identical scenes: bin-major RLE collapses each bin row to one run.
  SketchTrack track;
  const SceneSketch s = sketchHistogram(randomHist(9));
  track.scenes.assign(100, s);
  // 16 runs of 100 -> tens of bytes, far below the raw 1600.
  EXPECT_LT(track.encode().size(), 120u);
}

TEST(SketchTrack, DecodeRejectsGarbage) {
  std::vector<std::uint8_t> junk = {200, 1, 2, 3};
  EXPECT_ANY_THROW((void)SketchTrack::decode(junk));
}

TEST(SketchTrack, BuildFromClipMatchesScenes) {
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kIRobot, 0.04, 48, 36);
  const AnnotationTrack track = annotateClip(clip);
  const auto stats = media::profileClip(clip);
  const SketchTrack sketches = buildSketchTrack(track, stats);
  ASSERT_EQ(sketches.scenes.size(), track.scenes.size());
  // The sketch's occupied top bin must agree with the annotated ceiling:
  // the highest non-zero sketch bin should contain (or neighbour) the
  // scene's q=0 safe luminance.
  for (std::size_t s = 0; s < sketches.scenes.size(); ++s) {
    int topBin = -1;
    for (int b = 15; b >= 0; --b) {
      if (sketches.scenes[s].bins[b] > 0) {
        topBin = b;
        break;
      }
    }
    ASSERT_GE(topBin, 0);
    const int ceilingBin = track.scenes[s].safeLuma[0] / 16;
    EXPECT_NEAR(topBin, ceilingBin, 1) << "scene " << s;
  }
  std::vector<media::FrameStats> tooFew(3);
  EXPECT_THROW((void)buildSketchTrack(track, tooFew), std::invalid_argument);
}

}  // namespace
}  // namespace anno::core
