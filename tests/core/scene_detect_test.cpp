#include "core/scene_detect.h"

#include <gtest/gtest.h>

#include "media/rng.h"

namespace anno::core {
namespace {

void expectPartition(const std::vector<SceneSpan>& scenes, std::size_t n) {
  ASSERT_FALSE(scenes.empty());
  std::uint32_t next = 0;
  for (const SceneSpan& s : scenes) {
    EXPECT_EQ(s.firstFrame, next);
    EXPECT_GT(s.frameCount, 0u);
    next += s.frameCount;
  }
  EXPECT_EQ(next, n);
}

TEST(SceneDetect, EmptyTraceYieldsNoScenes) {
  EXPECT_TRUE(detectScenes({}).empty());
}

TEST(SceneDetect, ConstantTraceIsOneScene) {
  std::vector<std::uint8_t> trace(100, 120);
  const auto scenes = detectScenes(trace);
  ASSERT_EQ(scenes.size(), 1u);
  EXPECT_EQ(scenes[0], (SceneSpan{0, 100}));
}

TEST(SceneDetect, BigChangeSplits) {
  std::vector<std::uint8_t> trace;
  trace.insert(trace.end(), 20, 100);
  trace.insert(trace.end(), 20, 200);
  const auto scenes = detectScenes(trace);
  ASSERT_EQ(scenes.size(), 2u);
  EXPECT_EQ(scenes[0], (SceneSpan{0, 20}));
  EXPECT_EQ(scenes[1], (SceneSpan{20, 20}));
}

TEST(SceneDetect, SmallChangeDoesNotSplit) {
  // 5% change is below the paper's 10% threshold.
  std::vector<std::uint8_t> trace;
  trace.insert(trace.end(), 20, 200);
  trace.insert(trace.end(), 20, 208);
  EXPECT_EQ(detectScenes(trace).size(), 1u);
}

TEST(SceneDetect, MinIntervalSuppressesRapidCuts) {
  // Alternate every frame between 100 and 200: without the interval
  // threshold this would cut at every frame (flicker).
  std::vector<std::uint8_t> trace;
  for (int i = 0; i < 60; ++i) {
    trace.push_back(i % 2 == 0 ? 100 : 200);
  }
  SceneDetectConfig cfg;
  cfg.minSceneFrames = 12;
  const auto scenes = detectScenes(trace, cfg);
  for (const SceneSpan& s : scenes) {
    if (&s != &scenes.back()) {
      EXPECT_GE(s.frameCount, 12u);
    }
  }
}

TEST(SceneDetect, ReferenceTracksRunningMax) {
  // A slow ramp inside a scene: the reference follows the max, so a later
  // DROP of >=10% from the peak triggers the cut.
  std::vector<std::uint8_t> trace;
  for (int i = 0; i < 30; ++i) {
    trace.push_back(static_cast<std::uint8_t>(150 + i));  // ramp to 179
  }
  trace.insert(trace.end(), 30, 150);  // ~16% below the 179 peak
  const auto scenes = detectScenes(trace);
  ASSERT_EQ(scenes.size(), 2u);
  EXPECT_EQ(scenes[1].firstFrame, 30u);
}

TEST(SceneDetect, ConfigValidation) {
  std::vector<std::uint8_t> trace(10, 100);
  SceneDetectConfig cfg;
  cfg.changeThreshold = 0.0;
  EXPECT_THROW((void)detectScenes(trace, cfg), std::invalid_argument);
  cfg = SceneDetectConfig{};
  cfg.changeThreshold = 1.0;
  EXPECT_THROW((void)detectScenes(trace, cfg), std::invalid_argument);
  cfg = SceneDetectConfig{};
  cfg.minSceneFrames = 0;
  EXPECT_THROW((void)detectScenes(trace, cfg), std::invalid_argument);
}

TEST(SceneDetect, SingleFrame) {
  const auto scenes = detectScenes({42});
  ASSERT_EQ(scenes.size(), 1u);
  EXPECT_EQ(scenes[0], (SceneSpan{0, 1}));
}

TEST(SceneDetect, SpanHelpers) {
  const SceneSpan s{10, 5};
  EXPECT_EQ(s.lastFrame(), 14u);
}

class SceneDetectPartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(SceneDetectPartitionProperty, AlwaysPartitions) {
  media::SplitMix64 rng(200 + GetParam());
  std::vector<std::uint8_t> trace;
  const int n = 1 + static_cast<int>(rng.below(500));
  std::uint8_t level = static_cast<std::uint8_t>(rng.below(256));
  for (int i = 0; i < n; ++i) {
    if (rng.uniform() < 0.05) {
      level = static_cast<std::uint8_t>(rng.below(256));  // scene cut
    }
    trace.push_back(static_cast<std::uint8_t>(std::min(
        255.0, std::max(0.0, level + rng.gaussian(0.0, 2.0)))));
  }
  SceneDetectConfig cfg;
  cfg.minSceneFrames = 1 + static_cast<int>(rng.below(10));
  expectPartition(detectScenes(trace, cfg), trace.size());
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, SceneDetectPartitionProperty,
                         ::testing::Range(0, 20));

media::FrameStats statsWithHistogram(std::uint8_t center,
                                     std::uint8_t maxLuma) {
  media::FrameStats fs;
  fs.luminance.maxLuma = maxLuma;
  fs.histogram.add(center, 100);
  fs.histogram.add(maxLuma, 2);
  return fs;
}

TEST(HistogramSceneDetect, CutsOnDistributionShift) {
  std::vector<media::FrameStats> stats;
  for (int i = 0; i < 20; ++i) stats.push_back(statsWithHistogram(60, 200));
  for (int i = 0; i < 20; ++i) stats.push_back(statsWithHistogram(150, 200));
  const auto scenes = detectScenesHistogram(stats);
  ASSERT_EQ(scenes.size(), 2u);
  EXPECT_EQ(scenes[1].firstFrame, 20u);
}

TEST(HistogramSceneDetect, CatchesCutsMaxLumaMisses) {
  // Both halves share the same maximum luminance, so the paper's cheap
  // heuristic sees ONE scene; the histogram detector sees the cut.
  std::vector<media::FrameStats> stats;
  for (int i = 0; i < 15; ++i) stats.push_back(statsWithHistogram(40, 220));
  for (int i = 0; i < 15; ++i) stats.push_back(statsWithHistogram(180, 220));

  std::vector<std::uint8_t> maxTrace = maxLumaTrace(stats);
  EXPECT_EQ(detectScenes(maxTrace).size(), 1u);
  EXPECT_EQ(detectScenesHistogram(stats).size(), 2u);
}

TEST(HistogramSceneDetect, RespectsMinInterval) {
  std::vector<media::FrameStats> stats;
  for (int i = 0; i < 30; ++i) {
    stats.push_back(statsWithHistogram(i % 2 == 0 ? 40 : 180, 220));
  }
  HistogramSceneDetectConfig cfg;
  cfg.minSceneFrames = 10;
  const auto scenes = detectScenesHistogram(stats, cfg);
  for (std::size_t i = 0; i + 1 < scenes.size(); ++i) {
    EXPECT_GE(scenes[i].frameCount, 10u);
  }
}

TEST(HistogramSceneDetect, PartitionsAndValidates) {
  std::vector<media::FrameStats> stats;
  for (int i = 0; i < 25; ++i) stats.push_back(statsWithHistogram(90, 200));
  const auto scenes = detectScenesHistogram(stats);
  expectPartition(scenes, stats.size());
  EXPECT_TRUE(detectScenesHistogram({}).empty());
  HistogramSceneDetectConfig bad;
  bad.emdThreshold = 0.0;
  EXPECT_THROW((void)detectScenesHistogram(stats, bad),
               std::invalid_argument);
  bad = HistogramSceneDetectConfig{};
  bad.minSceneFrames = 0;
  EXPECT_THROW((void)detectScenesHistogram(stats, bad),
               std::invalid_argument);
}

TEST(SceneDetect, MaxLumaTraceExtraction) {
  std::vector<media::FrameStats> stats(3);
  stats[0].luminance.maxLuma = 10;
  stats[1].luminance.maxLuma = 200;
  stats[2].luminance.maxLuma = 30;
  EXPECT_EQ(maxLumaTrace(stats),
            (std::vector<std::uint8_t>{10, 200, 30}));
}

}  // namespace
}  // namespace anno::core
