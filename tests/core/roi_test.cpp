#include "core/roi.h"

#include <gtest/gtest.h>

#include "media/clipgen.h"

namespace anno::core {
namespace {

/// A dark frame with a bright "face" in a known ROI and bright background
/// sparkle elsewhere.
media::Image roiFrame() {
  media::Image img(64, 48, media::Rgb8{40, 40, 40});
  // ROI content: a 12x12 bright patch at (8,8) -- the important object.
  for (int y = 8; y < 20; ++y) {
    for (int x = 8; x < 20; ++x) {
      img(x, y) = media::Rgb8{230, 230, 230};
    }
  }
  // Unimportant sparkle: scattered brighter pixels far from the ROI.
  for (int i = 0; i < 40; ++i) {
    img(40 + (i % 8), 20 + (i / 8) * 3) = media::Rgb8{250, 250, 250};
  }
  return img;
}

TEST(Roi, RectContains) {
  const RoiRect r{2, 3, 5, 7};
  EXPECT_TRUE(r.contains(2, 3));
  EXPECT_TRUE(r.contains(4, 6));
  EXPECT_FALSE(r.contains(5, 6));
  EXPECT_FALSE(r.contains(4, 7));
  EXPECT_FALSE(r.contains(1, 4));
  EXPECT_TRUE((RoiRect{3, 3, 3, 5}).empty());
}

TEST(Roi, WeightedHistogramBoostsRoiMass) {
  const media::Image frame = roiFrame();
  const RoiRect roi{8, 8, 20, 20};
  const media::Histogram plain = weightedHistogram(frame, {}, 1.0);
  const media::Histogram weighted =
      weightedHistogram(frame, std::span(&roi, 1), 8.0);
  // ROI pixels are luma 230: their weighted count is 8x the plain count.
  EXPECT_EQ(weighted.count(230), plain.count(230) * 8);
  // Background pixels unchanged.
  EXPECT_EQ(weighted.count(40), plain.count(40));
}

TEST(Roi, WeightedHistogramValidation) {
  const media::Image frame = roiFrame();
  EXPECT_THROW((void)weightedHistogram(frame, {}, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)weightedHistogram(media::Image{}, {}, 2.0),
               std::invalid_argument);
}

TEST(Roi, AnnotationProtectsRoiHighlights) {
  // Build a clip of identical roiFrame()s.  With a 10% clip budget and no
  // ROI, the budget swallows the 12x12 patch (144/3072 = 4.7% of pixels)
  // plus the sparkle -> ceiling drops below 230 and the face clips.
  // With an 8x ROI weight, the patch weighs 8x and exceeds the budget ->
  // the ceiling must stay at/above 230.
  media::VideoClip clip;
  clip.name = "roi";
  clip.fps = 12.0;
  clip.frames.assign(12, roiFrame());

  AnnotatorConfig cfg;
  cfg.qualityLevels = {0.10};

  const AnnotationTrack plain = annotateClip(clip, cfg);
  ASSERT_EQ(plain.scenes.size(), 1u);
  EXPECT_LT(plain.scenes[0].safeLuma[0], 230);

  const RoiRect roi{8, 8, 20, 20};
  const AnnotationTrack protectedTrack =
      annotateClipWithRoi(clip, std::span(&roi, 1), 8.0, cfg);
  ASSERT_EQ(protectedTrack.scenes.size(), 1u);
  EXPECT_GE(protectedTrack.scenes[0].safeLuma[0], 230);
}

TEST(Roi, AnnotationValidatesRoiBounds) {
  media::VideoClip clip;
  clip.name = "roi";
  clip.fps = 12.0;
  clip.frames.assign(3, roiFrame());
  const RoiRect outside{0, 0, 200, 200};
  EXPECT_THROW(
      (void)annotateClipWithRoi(clip, std::span(&outside, 1), 8.0, {}),
      std::invalid_argument);
  const RoiRect empty{5, 5, 5, 5};
  EXPECT_THROW((void)annotateClipWithRoi(clip, std::span(&empty, 1), 8.0, {}),
               std::invalid_argument);
}

TEST(Roi, TrackRemainsValid) {
  media::VideoClip clip;
  clip.name = "roi";
  clip.fps = 12.0;
  clip.frames.assign(10, roiFrame());
  const RoiRect roi{8, 8, 20, 20};
  const AnnotationTrack track =
      annotateClipWithRoi(clip, std::span(&roi, 1), 4.0, {});
  EXPECT_NO_THROW(validateTrack(track));
}

}  // namespace
}  // namespace anno::core
