#include "core/runtime.h"

#include <gtest/gtest.h>

#include "core/annotate.h"
#include "media/clipgen.h"

namespace anno::core {
namespace {

AnnotationTrack makeTrack() {
  AnnotationTrack t;
  t.clipName = "t";
  t.fps = 12.0;
  t.frameCount = 60;
  t.qualityLevels = {0.0, 0.10};
  t.scenes = {
      {SceneSpan{0, 20}, {250, 240}},   // bright scene
      {SceneSpan{20, 20}, {80, 60}},    // dark scene
      {SceneSpan{40, 20}, {82, 61}},    // nearly identical dark scene
  };
  return t;
}

display::DeviceModel linearDevice() {
  display::DeviceModel d;
  d.name = "linear";
  d.transfer = display::TransferFunction::linear();
  return d;
}

TEST(Runtime, ScheduleLevelsFollowScenes) {
  const BacklightSchedule s = buildSchedule(makeTrack(), 0, linearDevice());
  EXPECT_EQ(s.frameCount, 60u);
  EXPECT_EQ(s.levelAt(0), 250);
  EXPECT_EQ(s.levelAt(19), 250);
  EXPECT_EQ(s.levelAt(20), 80);
  EXPECT_EQ(s.levelAt(59), s.levelAt(40));
}

TEST(Runtime, IdenticalLevelsMerge) {
  // Scenes 2 and 3 resolve to levels 80 and 82 on a linear device -- no
  // merge.  At quality 1 they resolve to 60 and 61 -- still distinct.  But
  // on a coarse device they can merge; emulate with a track whose scenes
  // match exactly.
  AnnotationTrack t = makeTrack();
  t.scenes[2].safeLuma = t.scenes[1].safeLuma;
  const BacklightSchedule s = buildSchedule(t, 0, linearDevice());
  EXPECT_EQ(s.commands.size(), 2u);  // bright, dark (third scene merged)
  EXPECT_EQ(s.switchCount(), 1u);
}

TEST(Runtime, GainMatchesLevel) {
  const display::DeviceModel device = linearDevice();
  const BacklightSchedule s = buildSchedule(makeTrack(), 1, device);
  for (std::uint32_t f : {0u, 25u, 45u}) {
    const double rel = device.transfer.relLuminance(s.levelAt(f));
    EXPECT_NEAR(s.gainAt(f) * rel, 1.0, 1e-9) << "frame " << f;
  }
}

TEST(Runtime, HigherQualityDimsMore) {
  const BacklightSchedule q0 = buildSchedule(makeTrack(), 0, linearDevice());
  const BacklightSchedule q1 = buildSchedule(makeTrack(), 1, linearDevice());
  for (std::uint32_t f = 0; f < 60; f += 10) {
    EXPECT_LE(q1.levelAt(f), q0.levelAt(f)) << "frame " << f;
  }
}

TEST(Runtime, EmptyScheduleDefaults) {
  const BacklightSchedule s;
  EXPECT_EQ(s.levelAt(0), 255);
  EXPECT_DOUBLE_EQ(s.gainAt(0), 1.0);
  EXPECT_EQ(s.switchCount(), 0u);
}

TEST(Runtime, QualityIndexValidation) {
  EXPECT_THROW((void)buildSchedule(makeTrack(), 5, linearDevice()),
               std::out_of_range);
}

TEST(Runtime, MinBacklightLevelApplies) {
  AnnotationTrack t = makeTrack();
  t.scenes[1].safeLuma = {5, 1};  // nearly black scene
  const BacklightSchedule s = buildSchedule(t, 0, linearDevice(), 40);
  EXPECT_GE(s.levelAt(25), 40);
}

TEST(Runtime, ClientWorkIsTiny) {
  // The paper's claim: per scene one multiply and one lookup; a handful of
  // backlight writes for a whole clip.
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kIRobot, 0.05, 48, 36);
  const AnnotationTrack track = annotateClip(clip);
  const BacklightSchedule schedule =
      buildSchedule(track, 2, linearDevice());
  const ClientWorkEstimate est = estimateClientWork(track, schedule);
  EXPECT_EQ(est.multiplies, track.scenes.size());
  EXPECT_EQ(est.tableLookups, track.scenes.size());
  EXPECT_LE(est.backlightWrites, track.scenes.size());
  // Versus per-pixel work: decoding alone touches w*h pixels per frame.
  EXPECT_LT(est.multiplies + est.tableLookups + est.backlightWrites,
            clip.frames.size());
}

TEST(Runtime, LevelAtOutOfRangeFrameUsesLastCommand) {
  const BacklightSchedule s = buildSchedule(makeTrack(), 0, linearDevice());
  // Frames beyond the clip keep the last level (defensive behaviour).
  EXPECT_EQ(s.levelAt(1000), s.levelAt(59));
}

TEST(Runtime, FullBacklightScheduleIsTheBaseline) {
  const BacklightSchedule s = fullBacklightSchedule(120);
  EXPECT_EQ(s.frameCount, 120u);
  EXPECT_EQ(s.switchCount(), 0u);
  for (std::uint32_t f : {0u, 60u, 119u}) {
    EXPECT_EQ(s.levelAt(f), 255);
    EXPECT_DOUBLE_EQ(s.gainAt(f), 1.0);
  }
}

TEST(Runtime, SlewLimiterBoundsDeltaAndNeverDims) {
  // A schedule with a hard 250 -> 60 -> 250 cliff, limited to 10/frame:
  // every consecutive-frame delta is bounded, and no frame ever drops BELOW
  // the desired level (dimming below plan could clip compensated pixels).
  BacklightSchedule s;
  s.frameCount = 120;
  s.commands = {{0, 250, 1.0}, {30, 60, 2.5}, {90, 250, 1.0}};
  const BacklightSchedule limited = limitSlewRate(s, 10);
  ASSERT_EQ(limited.frameCount, s.frameCount);
  for (std::uint32_t f = 0; f < s.frameCount; ++f) {
    EXPECT_GE(limited.levelAt(f), s.levelAt(f)) << "frame " << f;
    if (f > 0) {
      const int delta = static_cast<int>(limited.levelAt(f)) -
                        static_cast<int>(limited.levelAt(f - 1));
      EXPECT_LE(delta, 10) << "frame " << f;
      EXPECT_GE(delta, -10) << "frame " << f;
    }
    // Gains ride along unchanged from the input plan.
    EXPECT_DOUBLE_EQ(limited.gainAt(f), s.gainAt(f)) << "frame " << f;
  }
  // The brightening ramp is anticipated: the frame before the second cliff
  // is already within one step of 250.
  EXPECT_GE(limited.levelAt(89), 240);
  // Deep in the dark span the limiter converges to the desired level.
  EXPECT_EQ(limited.levelAt(60), 60);
}

TEST(Runtime, SlewLimiterIsIdentityWhenDisabledOrAlreadySmooth) {
  const BacklightSchedule s = buildSchedule(makeTrack(), 0, linearDevice());
  const BacklightSchedule off = limitSlewRate(s, 0);
  ASSERT_EQ(off.commands.size(), s.commands.size());
  for (std::size_t i = 0; i < s.commands.size(); ++i) {
    EXPECT_EQ(off.commands[i].frame, s.commands[i].frame);
    EXPECT_EQ(off.commands[i].level, s.commands[i].level);
  }
  // A constant schedule passes through any limit untouched.
  const BacklightSchedule flat = fullBacklightSchedule(50);
  const BacklightSchedule limited = limitSlewRate(flat, 1);
  for (std::uint32_t f = 0; f < 50; ++f) {
    EXPECT_EQ(limited.levelAt(f), 255);
  }
}

TEST(Runtime, SlewLimiterHandlesDegenerateSchedules) {
  EXPECT_EQ(limitSlewRate(BacklightSchedule{}, 8).commands.size(), 0u);
  BacklightSchedule one;
  one.frameCount = 1;
  one.commands = {{0, 37, 1.0}};
  const BacklightSchedule limited = limitSlewRate(one, 8);
  EXPECT_EQ(limited.levelAt(0), 37);
}

}  // namespace
}  // namespace anno::core
