#include "core/annotate.h"

#include <gtest/gtest.h>

#include "media/clipgen.h"
#include "media/luminance.h"
#include "media/rng.h"

namespace anno::core {
namespace {

media::VideoClip testClip() {
  return media::generatePaperClip(media::PaperClip::kCatwoman, 0.05, 48, 36);
}

TEST(Annotate, ProducesValidTrack) {
  const media::VideoClip clip = testClip();
  const AnnotationTrack track = annotateClip(clip);
  EXPECT_NO_THROW(validateTrack(track));
  EXPECT_EQ(track.clipName, clip.name);
  EXPECT_DOUBLE_EQ(track.fps, clip.fps);
  EXPECT_EQ(track.frameCount, clip.frames.size());
  EXPECT_EQ(track.qualityLevels.size(), 5u);
}

TEST(Annotate, SafeLumaNonIncreasingInQuality) {
  const AnnotationTrack track = annotateClip(testClip());
  for (const SceneAnnotation& s : track.scenes) {
    for (std::size_t q = 1; q < s.safeLuma.size(); ++q) {
      EXPECT_LE(s.safeLuma[q], s.safeLuma[q - 1]);
    }
  }
}

TEST(Annotate, ZeroQualityCoversSceneMax) {
  // At 0% clipping the annotated luminance must be at least every frame's
  // max luminance in the scene.
  const media::VideoClip clip = testClip();
  const AnnotationTrack track = annotateClip(clip);
  const auto stats = media::profileClip(clip);
  for (const SceneAnnotation& s : track.scenes) {
    std::uint8_t sceneMax = 0;
    for (std::uint32_t f = s.span.firstFrame; f <= s.span.lastFrame(); ++f) {
      sceneMax = std::max(sceneMax, stats[f].luminance.maxLuma);
    }
    EXPECT_GE(s.safeLuma[0], sceneMax);
  }
}

TEST(Annotate, PerFrameGranularityMakesSingleFrameScenes) {
  AnnotatorConfig cfg;
  cfg.granularity = Granularity::kPerFrame;
  const media::VideoClip clip = testClip();
  const AnnotationTrack track = annotateClip(clip, cfg);
  EXPECT_EQ(track.scenes.size(), clip.frames.size());
  for (const SceneAnnotation& s : track.scenes) {
    EXPECT_EQ(s.span.frameCount, 1u);
  }
}

TEST(Annotate, SceneCountReasonable) {
  const AnnotationTrack track = annotateClip(testClip());
  // A multi-scene synthetic clip must be detected as such, but far fewer
  // scenes than frames (annotation compactness).
  EXPECT_GT(track.scenes.size(), 1u);
  EXPECT_LT(track.scenes.size(), track.frameCount / 5);
}

TEST(Annotate, Validation) {
  EXPECT_THROW((void)annotate("x", 12.0, {}, {}), std::invalid_argument);
  AnnotatorConfig cfg;
  cfg.qualityLevels.clear();
  std::vector<media::FrameStats> stats(3);
  EXPECT_THROW((void)annotate("x", 12.0, stats, cfg), std::invalid_argument);
}

TEST(SafeLumaLevels, BasicBudgets) {
  media::Histogram h;
  h.add(50, 90);
  h.add(250, 10);  // 10% of mass is bright
  const auto safe = safeLumaLevels(h, {0.0, 0.05, 0.15});
  EXPECT_EQ(safe[0], 250);  // no clipping: must keep the bright pixels
  EXPECT_EQ(safe[1], 250);  // 5% budget < 10% bright mass
  EXPECT_EQ(safe[2], 50);   // 15% budget swallows them
}

TEST(SafeLumaLevels, EmptyHistogramThrows) {
  media::Histogram empty;
  EXPECT_THROW((void)safeLumaLevels(empty, {0.0}), std::invalid_argument);
  media::Histogram h;
  h.add(1, 1);
  EXPECT_THROW((void)safeLumaLevels(h, {1.0}), std::invalid_argument);
}

TEST(Annotate, HistogramDetectorOptionProducesValidTrack) {
  AnnotatorConfig cfg;
  cfg.detector = SceneDetector::kHistogramEmd;
  const media::VideoClip clip = testClip();
  const AnnotationTrack track = annotateClip(clip, cfg);
  EXPECT_NO_THROW(validateTrack(track));
  EXPECT_GT(track.scenes.size(), 1u);
}

TEST(Annotate, DetectorsAgreeOnObviousCuts) {
  // Synthetic clips cut on max-luminance changes, so both detectors should
  // land scene counts in the same ballpark.
  const media::VideoClip clip = testClip();
  AnnotatorConfig maxLuma;
  AnnotatorConfig emd;
  emd.detector = SceneDetector::kHistogramEmd;
  const std::size_t a = annotateClip(clip, maxLuma).scenes.size();
  const std::size_t b = annotateClip(clip, emd).scenes.size();
  EXPECT_GT(b, a / 3);
  EXPECT_LT(b, a * 4 + 4);
}

TEST(Credits, DetectorRecognizesCreditsHistogram) {
  // Credits: uniform near-black background + sparse bright text.
  const media::SceneSpec credits = media::creditsScene();
  media::SplitMix64 rng(9);
  const media::Image frame = renderSceneFrame(credits, 96, 72, 0.0, rng);
  EXPECT_TRUE(looksLikeCredits(media::Histogram::ofImage(frame)));
}

TEST(Credits, DetectorRejectsNormalScenes) {
  media::SceneSpec normal;
  normal.backgroundLuma = 90;
  normal.backgroundSpread = 45;
  normal.highlightFraction = 0.005;
  media::SplitMix64 rng(10);
  const media::Image frame = renderSceneFrame(normal, 96, 72, 0.0, rng);
  EXPECT_FALSE(looksLikeCredits(media::Histogram::ofImage(frame)));
  media::Histogram empty;
  EXPECT_FALSE(looksLikeCredits(empty));
}

TEST(Credits, ProtectionPreservesTextLuminance) {
  // A clip that is just rolling credits.  Without protection, a 15% budget
  // eats the 2% of bright text pixels; with protection the budget is
  // capped and the text luminance survives.
  media::ClipProfile profile;
  profile.name = "credits";
  profile.width = 96;
  profile.height = 72;
  profile.fps = 12.0;
  profile.seed = 3;
  profile.scenes.push_back(media::creditsScene(2.0));
  const media::VideoClip clip = media::generateClip(profile);

  AnnotatorConfig unprotected;
  unprotected.qualityLevels = {0.15};
  const AnnotationTrack plain = annotateClip(clip, unprotected);
  EXPECT_LT(plain.scenes[0].safeLuma[0], 100)
      << "without protection the text clips away";

  AnnotatorConfig protecting = unprotected;
  protecting.protectCredits = true;
  const AnnotationTrack guarded = annotateClip(clip, protecting);
  EXPECT_GT(guarded.scenes[0].safeLuma[0], 200)
      << "with protection the text luminance must survive";
}

TEST(Credits, ProtectionLeavesNormalClipsAlone) {
  const media::VideoClip clip = testClip();
  AnnotatorConfig plainCfg;
  AnnotatorConfig protectCfg;
  protectCfg.protectCredits = true;
  const AnnotationTrack a = annotateClip(clip, plainCfg);
  const AnnotationTrack b = annotateClip(clip, protectCfg);
  // The synthetic trailer clips contain no credits-like scenes, so the
  // protection flag must not change anything.
  EXPECT_EQ(a, b);
}

TEST(CompensateClip, BrightensDimScenes) {
  const media::VideoClip clip = testClip();
  const AnnotationTrack track = annotateClip(clip);
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  const media::VideoClip comp = compensateClip(clip, track, 2, device);
  ASSERT_EQ(comp.frames.size(), clip.frames.size());
  // Find a genuinely dark scene and verify its frames were brightened.
  bool checked = false;
  const auto stats = media::profileClip(clip);
  for (const SceneAnnotation& s : track.scenes) {
    if (s.safeLuma[2] < 150) {
      const std::uint32_t f = s.span.firstFrame;
      EXPECT_GT(media::analyzeLuminance(comp.frames[f]).meanLuma,
                stats[f].luminance.meanLuma);
      checked = true;
      break;
    }
  }
  EXPECT_TRUE(checked) << "test clip should contain a dark scene";
}

TEST(CompensateClip, QualityZeroKeepsMostPixelsExact) {
  // At quality 0 on a linear device, gain * T(level) == 1, so unclipped
  // pixel intensity is exactly preserved by construction; pixel VALUES are
  // scaled but the product with backlight is invariant (verified in the
  // planner tests); here we check frame count and monotone brightness.
  const media::VideoClip clip = testClip();
  const AnnotationTrack track = annotateClip(clip);
  display::DeviceModel device;
  device.transfer = display::TransferFunction::linear();
  const media::VideoClip comp = compensateClip(clip, track, 0, device);
  for (std::size_t i = 0; i < clip.frames.size(); i += 13) {
    EXPECT_GE(media::analyzeLuminance(comp.frames[i]).meanLuma,
              media::analyzeLuminance(clip.frames[i]).meanLuma - 1.0);
  }
}

TEST(CompensateClip, Validation) {
  const media::VideoClip clip = testClip();
  const AnnotationTrack track = annotateClip(clip);
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  EXPECT_THROW((void)compensateClip(clip, track, 99, device),
               std::out_of_range);
  media::VideoClip shortClip = clip;
  shortClip.frames.pop_back();
  EXPECT_THROW((void)compensateClip(shortClip, track, 0, device),
               std::invalid_argument);
}

}  // namespace
}  // namespace anno::core
