// Golden regression: the adapter-based annotation paths must reproduce the
// PRE-refactor (legacy offline annotate() + inline proxy OnlineAnnotator)
// output byte-for-byte, as captured by tools/capture_engine_goldens.cpp at
// the last commit before the AnnotationEngine extraction.  Each golden is
// the scene count, encodeTrack() byte count and CRC-32 of one
// configuration's encoded track; the replay here walks the identical
// config matrix in the identical order.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/anno_codec.h"
#include "core/annotate.h"
#include "core/engine.h"
#include "golden_clips.h"
#include "media/crc32.h"
#include "media/kernels/kernels.h"
#include "stream/proxy.h"

namespace anno::core {
namespace {

struct GoldenTrack {
  const char* name;
  std::size_t scenes;
  std::size_t bytes;
  std::uint32_t crc;
};

#include "golden_tracks.inc"

std::string configName(const std::string& clip, SceneDetector det,
                       Granularity gran, bool credits, std::uint32_t latency) {
  std::string name = clip;
  name += det == SceneDetector::kHistogramEmd ? "/emd" : "/maxluma";
  name += gran == Granularity::kPerFrame ? "/frame" : "/scene";
  name += credits ? "/credits" : "/plain";
  name += "/lat" + std::to_string(latency);
  return name;
}

void expectGolden(const GoldenTrack& golden, const std::string& name,
                  const AnnotationTrack& track) {
  const std::vector<std::uint8_t> bytes = encodeTrack(track);
  EXPECT_EQ(golden.name, name);
  EXPECT_EQ(golden.scenes, track.scenes.size()) << name;
  EXPECT_EQ(golden.bytes, bytes.size()) << name;
  EXPECT_EQ(golden.crc, media::crc32(bytes)) << name;
}

void runGoldenMatrix() {
  const std::vector<std::pair<std::string, media::VideoClip>> clips = {
      {"catwoman", engine_golden::goldenCatwomanClip()},
      {"mixed-credits", engine_golden::goldenMixedCreditsClip()},
  };
  std::size_t next = 0;
  const std::size_t goldenCount = std::size(kGoldenTracks);
  for (const auto& [clipName, clip] : clips) {
    const std::vector<media::FrameStats> stats = media::profileClip(clip);
    for (const SceneDetector det :
         {SceneDetector::kMaxLuma, SceneDetector::kHistogramEmd}) {
      for (const Granularity gran :
           {Granularity::kPerScene, Granularity::kPerFrame}) {
        for (const bool credits : {false, true}) {
          AnnotatorConfig cfg;
          cfg.detector = det;
          cfg.granularity = gran;
          cfg.protectCredits = credits;
          // Offline adapters: annotate() from stats, and the full
          // profile-included annotateClip/annotateClips, all byte-identical
          // to the legacy pass.
          ASSERT_LT(next, goldenCount);
          const AnnotationTrack offline = annotate(clip.name, clip.fps, stats, cfg);
          expectGolden(kGoldenTracks[next],
                       configName(clipName, det, gran, credits, 0), offline);
          ++next;
          EXPECT_EQ(annotateClip(clip, cfg), offline);
          EXPECT_EQ(annotateClips(std::span(&clip, 1), cfg).at(0), offline);
          // Online adapter (the engine by alias), bounded latency.  Only
          // max-luma configs have a legacy golden: the legacy online path
          // silently ignored kHistogramEmd -- the fixed behaviour is
          // covered by the live differentials in engine_test.cpp.
          if (det != SceneDetector::kMaxLuma) continue;
          for (const std::uint32_t latency : {8u, 64u}) {
            stream::OnlineAnnotator online(cfg, latency);
            AnnotationTrack track;
            track.clipName = clip.name;
            track.fps = clip.fps;
            track.frameCount = static_cast<std::uint32_t>(stats.size());
            track.granularity = cfg.granularity;
            track.qualityLevels = cfg.qualityLevels;
            for (const media::FrameStats& fs : stats) {
              if (auto scene = online.push(fs)) track.scenes.push_back(*scene);
            }
            if (auto scene = online.flush()) track.scenes.push_back(*scene);
            validateTrack(track);
            ASSERT_LT(next, goldenCount);
            expectGolden(kGoldenTracks[next],
                         configName(clipName, det, gran, credits, latency),
                         track);
            ++next;
            // annotateStats is the shared track assembler: same bytes.
            EXPECT_EQ(
                encodeTrack(annotateStats(clip.name, clip.fps, stats, cfg, latency)),
                encodeTrack(track));
          }
        }
      }
    }
  }
  EXPECT_EQ(next, goldenCount) << "config matrix and goldens out of sync";
}

TEST(EngineGolden, AdaptersReproducePreRefactorTracksByteForByte) {
  // Once per available SIMD dispatch level: the goldens were captured from
  // pure scalar code, so passing here under sse2/avx2/neon IS the proof of
  // the kernel layer's bit-identical contract end-to-end (profiling,
  // accumulate, EMD detector, safe-luma scans, track encoding).
  for (const media::kernels::Level level :
       media::kernels::availableLevels()) {
    SCOPED_TRACE(testing::Message()
                 << "ANNO_SIMD=" << media::kernels::levelName(level));
    media::kernels::ScopedLevel guard(level);
    runGoldenMatrix();
  }
}

}  // namespace
}  // namespace anno::core
