// Differential suite for core::AnnotationEngine: the single causal engine
// must reproduce every legacy entry point exactly -- offline annotate(),
// the ROI path, and the streaming OnlineAnnotator (which is the engine by
// alias) -- across the full configuration matrix: both detectors x both
// granularities x credits protection on/off x maxLatencyFrames {0, 8, 64}.
#include "core/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/annotate.h"
#include "core/roi.h"
#include "core/scene_detect.h"
#include "golden_clips.h"
#include "media/clipgen.h"
#include "stream/proxy.h"

namespace anno::core {
namespace {

std::vector<media::FrameStats> goldenStats() {
  static const std::vector<media::FrameStats> stats =
      media::profileClip(engine_golden::goldenMixedCreditsClip());
  return stats;
}

/// Runs an engine over `stats` in frame order, collecting emitted scenes.
std::vector<SceneAnnotation> runEngine(AnnotationEngine& engine,
                                       const std::vector<media::FrameStats>& stats) {
  std::vector<SceneAnnotation> scenes;
  for (const media::FrameStats& fs : stats) {
    if (auto s = engine.push(fs)) scenes.push_back(*s);
  }
  if (auto s = engine.flush()) scenes.push_back(*s);
  return scenes;
}

std::vector<SceneSpan> spansOf(const std::vector<SceneAnnotation>& scenes) {
  std::vector<SceneSpan> spans;
  for (const SceneAnnotation& s : scenes) spans.push_back(s.span);
  return spans;
}

TEST(Engine, MaxLumaPartitionMatchesOfflineDetector) {
  const std::vector<media::FrameStats> stats = goldenStats();
  AnnotationEngine engine{AnnotatorConfig{}};
  EXPECT_EQ(spansOf(runEngine(engine, stats)),
            detectScenes(maxLumaTrace(stats), SceneDetectConfig{}));
}

TEST(Engine, EmdPartitionMatchesOfflineHistogramDetector) {
  // Regression for the unified-engine fix: the ONLINE path must honour
  // cfg.detector == kHistogramEmd (the legacy OnlineAnnotator silently ran
  // max-luma instead, so proxies annotated with a different algorithm than
  // the server they are interchangeable with).  Exercise the streaming
  // alias explicitly: its causal EMD partition on stored content must equal
  // the offline detectScenesHistogram pass exactly.
  const std::vector<media::FrameStats> stats = goldenStats();
  AnnotatorConfig cfg;
  cfg.detector = SceneDetector::kHistogramEmd;
  stream::OnlineAnnotator online{cfg};
  const std::vector<SceneAnnotation> scenes = runEngine(online, stats);
  EXPECT_EQ(spansOf(scenes),
            detectScenesHistogram(stats, cfg.histogramDetect));
  // And the full annotations (not just spans) must match the offline track.
  const AnnotationTrack offline = annotate("mixed", 12.0, stats, cfg);
  ASSERT_EQ(scenes.size(), offline.scenes.size());
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    EXPECT_EQ(scenes[i], offline.scenes[i]) << "scene " << i;
  }
  // The EMD partition genuinely differs from max-luma on this clip (it has
  // a cut only the histogram detector can see), so the test cannot pass by
  // accidentally running the wrong detector.
  AnnotationEngine maxLuma{AnnotatorConfig{}};
  EXPECT_NE(spansOf(scenes), spansOf(runEngine(maxLuma, stats)));
}

TEST(Engine, DifferentialMatrixEngineEqualsOfflineAdapters) {
  const media::VideoClip clip = engine_golden::goldenMixedCreditsClip();
  const std::vector<media::FrameStats> stats = goldenStats();
  for (const SceneDetector det :
       {SceneDetector::kMaxLuma, SceneDetector::kHistogramEmd}) {
    for (const Granularity gran :
         {Granularity::kPerScene, Granularity::kPerFrame}) {
      for (const bool credits : {false, true}) {
        AnnotatorConfig cfg;
        cfg.detector = det;
        cfg.granularity = gran;
        cfg.protectCredits = credits;
        const AnnotationTrack offline = annotate(clip.name, clip.fps, stats, cfg);
        // Engine push loop == offline adapter.
        AnnotationEngine engine{cfg};
        EXPECT_EQ(runEngine(engine, stats), offline.scenes);
        // annotateClip (profiling included) == offline adapter, at several
        // thread counts (bit-identical determinism contract).
        for (const unsigned threads : {1u, 2u, 8u}) {
          AnnotatorConfig threaded = cfg;
          threaded.threads = threads;
          EXPECT_EQ(annotateClip(clip, threaded), offline)
              << "threads=" << threads;
        }
        // Latency-bounded engines: every emitted scene obeys the bound,
        // for BOTH detectors (the bound is handled uniformly).
        for (const std::uint32_t bound : {8u, 64u}) {
          AnnotationEngine bounded(cfg, bound);
          const std::vector<SceneAnnotation> scenes = runEngine(bounded, stats);
          std::uint32_t covered = 0;
          for (const SceneAnnotation& s : scenes) {
            EXPECT_LE(s.span.frameCount, bound);
            EXPECT_EQ(s.span.firstFrame, covered);
            covered += s.span.frameCount;
          }
          EXPECT_EQ(covered, stats.size());
          // And annotateStats with the same bound assembles exactly these
          // scenes into a validated track.
          const AnnotationTrack bTrack =
              annotateStats(clip.name, clip.fps, stats, cfg, bound);
          EXPECT_EQ(bTrack.scenes, scenes);
        }
      }
    }
  }
}

TEST(Engine, BatchAnnotateClipsMatchesPerClip) {
  const std::vector<media::VideoClip> clips = {
      engine_golden::goldenMixedCreditsClip(),
      engine_golden::goldenCatwomanClip()};
  AnnotatorConfig cfg;
  cfg.threads = 2;
  const std::vector<AnnotationTrack> batch = annotateClips(clips, cfg);
  ASSERT_EQ(batch.size(), clips.size());
  for (std::size_t i = 0; i < clips.size(); ++i) {
    EXPECT_EQ(batch[i], annotateClip(clips[i], cfg)) << "clip " << i;
  }
}

TEST(Engine, RoiProfilingIsParallelAndBitIdentical) {
  // The ROI path routes profiling through the same parallel loop as the
  // plain path; output must be bit-identical to serial for any thread
  // count.
  const media::VideoClip clip = engine_golden::goldenMixedCreditsClip();
  const RoiRect roi{8, 8, 24, 24};
  AnnotatorConfig serialCfg;
  serialCfg.threads = 1;
  const AnnotationTrack serial =
      annotateClipWithRoi(clip, std::span(&roi, 1), 8.0, serialCfg);
  for (const unsigned threads : {2u, 8u, 0u}) {
    AnnotatorConfig cfg;
    cfg.threads = threads;
    EXPECT_EQ(annotateClipWithRoi(clip, std::span(&roi, 1), 8.0, cfg), serial)
        << "threads=" << threads;
  }
}

TEST(Engine, ResetRewindsToStartOfStream) {
  const std::vector<media::FrameStats> stats = goldenStats();
  AnnotationEngine engine{AnnotatorConfig{}};
  const std::vector<SceneAnnotation> first = runEngine(engine, stats);
  EXPECT_EQ(engine.framesSeen(), stats.size());
  engine.reset();
  EXPECT_EQ(engine.framesSeen(), 0u);
  EXPECT_EQ(engine.openSceneStart(), 0u);
  EXPECT_EQ(runEngine(engine, stats), first);
}

TEST(Engine, SceneCallbackReportsClosingFrames) {
  const std::vector<media::FrameStats> stats = goldenStats();
  std::vector<std::uint32_t> closedAt;
  const AnnotationTrack track = annotateStats(
      "mixed", 12.0, stats, {}, 0,
      [&](const SceneAnnotation& scene, std::uint32_t at) {
        // A scene closes when the NEXT scene's first frame arrives (or at
        // end-of-stream), never before its own last frame.
        EXPECT_GE(at, scene.span.firstFrame + scene.span.frameCount);
        closedAt.push_back(at);
      });
  ASSERT_EQ(closedAt.size(), track.scenes.size());
  // All but the final scene close exactly when the next scene starts; the
  // final one closes at end-of-stream.
  for (std::size_t i = 0; i + 1 < track.scenes.size(); ++i) {
    EXPECT_EQ(closedAt[i], track.scenes[i + 1].span.firstFrame);
  }
  EXPECT_EQ(closedAt.back(), stats.size());
}

TEST(Engine, PerFrameModeSkipsDetectorValidation) {
  // The offline pass never consulted the detector at per-frame granularity,
  // so an invalid detector config must not reject per-frame annotation.
  AnnotatorConfig cfg;
  cfg.granularity = Granularity::kPerFrame;
  cfg.sceneDetect.changeThreshold = 0.0;  // invalid for per-scene
  EXPECT_NO_THROW(AnnotationEngine{cfg});
  cfg.granularity = Granularity::kPerScene;
  EXPECT_THROW(AnnotationEngine{cfg}, std::invalid_argument);
}

TEST(Engine, ValidatesActiveDetectorConfig) {
  AnnotatorConfig cfg;
  cfg.detector = SceneDetector::kHistogramEmd;
  cfg.histogramDetect.emdThreshold = -1.0;
  EXPECT_THROW(AnnotationEngine{cfg}, std::invalid_argument);
  cfg.histogramDetect.emdThreshold = 12.0;
  cfg.histogramDetect.minSceneFrames = 0;
  EXPECT_THROW(AnnotationEngine{cfg}, std::invalid_argument);
  // The latency bound is checked against the ACTIVE detector's minimum
  // scene length.
  cfg.histogramDetect.minSceneFrames = 10;
  EXPECT_THROW(AnnotationEngine(cfg, 4), std::invalid_argument);
  EXPECT_NO_THROW(AnnotationEngine(cfg, 10));
  cfg.detector = SceneDetector::kMaxLuma;  // max-luma min is the default 6
  EXPECT_NO_THROW(AnnotationEngine(cfg, 6));
}

TEST(Engine, EmptyQualityLevelsThrow) {
  AnnotatorConfig cfg;
  cfg.qualityLevels.clear();
  EXPECT_THROW(AnnotationEngine{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace anno::core
