// The two deterministic clips behind the engine differential suite, shared
// by tests/engine/golden_test.cpp and tools/capture_engine_goldens.cpp so
// the captured goldens and the replaying tests can never disagree on the
// content.
//
//  - goldenCatwomanClip(): a paper trailer (multi-scene, no credits).
//  - goldenMixedCreditsClip(): hand-built so every config knob changes the
//    output -- max-luma cuts between all five scenes except the last pair,
//    which shares a peak luminance and can only be separated by the EMD
//    detector; scene 3 is rolling credits, so credits protection bites.
#pragma once

#include "media/clipgen.h"

namespace anno::engine_golden {

inline media::VideoClip goldenCatwomanClip() {
  return media::generatePaperClip(media::PaperClip::kCatwoman, 0.12, 48, 36);
}

inline media::VideoClip goldenMixedCreditsClip() {
  media::ClipProfile profile;
  profile.name = "mixed-credits";
  profile.width = 48;
  profile.height = 36;
  profile.fps = 12.0;
  profile.seed = 7;
  media::SceneSpec bright;
  bright.durationSeconds = 1.5;
  bright.backgroundLuma = 170;
  bright.backgroundSpread = 40;
  bright.highlightFraction = 0.01;
  media::SceneSpec dark;
  dark.durationSeconds = 2.0;
  dark.backgroundLuma = 35;
  dark.backgroundSpread = 20;
  dark.highlightFraction = 0.004;
  dark.highlightLuma = 140;
  media::SceneSpec mid;
  mid.durationSeconds = 1.0;
  mid.backgroundLuma = 100;
  mid.backgroundSpread = 35;
  mid.highlightFraction = 0.002;
  mid.highlightLuma = 185;
  // Same peak luminance as `mid` but a very different histogram body: the
  // max-luma detector cannot see this cut, the EMD detector must.
  media::SceneSpec shifted = mid;
  shifted.backgroundLuma = 140;
  shifted.backgroundSpread = 45;
  profile.scenes = {bright, dark, media::creditsScene(1.5), mid, shifted};
  return media::generateClip(profile);
}

}  // namespace anno::engine_golden
