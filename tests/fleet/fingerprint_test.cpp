// AnnotatorConfig::fingerprint() property suite: exhaustive one-field
// perturbation.  Every PLAN-AFFECTING field must change the fingerprint;
// every cosmetic field (threads, observer, trace) and every INACTIVE knob
// (the dormant detector's thresholds, creditsClipCap while protection is
// off) must not.  This is what makes the fingerprint a safe TrackCache
// sharing key: equal fingerprints really do mean bit-identical plans, and
// maximal sharing means cosmetic differences never split the cache.
#include "core/engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/anno_codec.h"
#include "core/annotate.h"
#include "media/clipgen.h"
#include "telemetry/trace.h"

namespace anno::core {
namespace {

struct NullObserver final : EngineObserver {
  void onSceneClosed(const SceneCloseEvent&) override {}
};

AnnotatorConfig baseConfig() {
  AnnotatorConfig cfg;  // defaults: kMaxLuma, kPerScene, paper ladder
  return cfg;
}

/// One named perturbation of the base config.
struct Perturbation {
  std::string name;
  AnnotatorConfig cfg;
};

std::vector<Perturbation> planAffectingPerturbations() {
  std::vector<Perturbation> out;
  const auto add = [&out](const std::string& name, auto&& mutate) {
    Perturbation p{name, baseConfig()};
    mutate(p.cfg);
    out.push_back(std::move(p));
  };
  add("detector=kHistogramEmd",
      [](AnnotatorConfig& c) { c.detector = SceneDetector::kHistogramEmd; });
  add("granularity=kPerFrame",
      [](AnnotatorConfig& c) { c.granularity = Granularity::kPerFrame; });
  add("sceneDetect.changeThreshold",
      [](AnnotatorConfig& c) { c.sceneDetect.changeThreshold = 0.17; });
  add("sceneDetect.minSceneFrames",
      [](AnnotatorConfig& c) { c.sceneDetect.minSceneFrames = 9; });
  add("qualityLevels value",
      [](AnnotatorConfig& c) { c.qualityLevels[2] = 0.11; });
  add("qualityLevels size",
      [](AnnotatorConfig& c) { c.qualityLevels.push_back(0.25); });
  add("qualityLevels empty",
      [](AnnotatorConfig& c) { c.qualityLevels.clear(); });
  add("protectCredits=true",
      [](AnnotatorConfig& c) { c.protectCredits = true; });
  return out;
}

TEST(Fingerprint, PlanAffectingFieldsChangeIt) {
  const std::uint64_t base = baseConfig().fingerprint();
  for (const Perturbation& p : planAffectingPerturbations()) {
    EXPECT_NE(p.cfg.fingerprint(), base) << p.name;
  }
}

TEST(Fingerprint, ActiveHistogramDetectorFieldsChangeIt) {
  AnnotatorConfig cfg = baseConfig();
  cfg.detector = SceneDetector::kHistogramEmd;
  const std::uint64_t base = cfg.fingerprint();

  AnnotatorConfig emd = cfg;
  emd.histogramDetect.emdThreshold = 20.0;
  EXPECT_NE(emd.fingerprint(), base) << "histogramDetect.emdThreshold";

  AnnotatorConfig frames = cfg;
  frames.histogramDetect.minSceneFrames = 11;
  EXPECT_NE(frames.fingerprint(), base) << "histogramDetect.minSceneFrames";
}

TEST(Fingerprint, ActiveCreditsCapChangesIt) {
  AnnotatorConfig cfg = baseConfig();
  cfg.protectCredits = true;
  const std::uint64_t base = cfg.fingerprint();
  AnnotatorConfig capped = cfg;
  capped.creditsClipCap = 0.02;
  EXPECT_NE(capped.fingerprint(), base);
}

TEST(Fingerprint, CosmeticFieldsDoNotChangeIt) {
  const std::uint64_t base = baseConfig().fingerprint();

  AnnotatorConfig threads = baseConfig();
  threads.threads = 8;
  EXPECT_EQ(threads.fingerprint(), base) << "threads";
  threads.threads = 0;
  EXPECT_EQ(threads.fingerprint(), base) << "threads=auto";

  NullObserver observer;
  AnnotatorConfig observed = baseConfig();
  observed.observer = &observer;
  EXPECT_EQ(observed.fingerprint(), base) << "observer";

  telemetry::TraceRecorder trace;
  AnnotatorConfig traced = baseConfig();
  traced.trace = &trace;
  EXPECT_EQ(traced.fingerprint(), base) << "trace";
}

TEST(Fingerprint, InactiveKnobsDoNotChangeIt) {
  // kMaxLuma active: the histogram detector's thresholds are dormant.
  const std::uint64_t base = baseConfig().fingerprint();
  AnnotatorConfig dormantEmd = baseConfig();
  dormantEmd.histogramDetect.emdThreshold = 99.0;
  dormantEmd.histogramDetect.minSceneFrames = 77;
  EXPECT_EQ(dormantEmd.fingerprint(), base)
      << "inactive histogramDetect must not contribute";

  // kHistogramEmd active: the max-luma detector's thresholds are dormant.
  AnnotatorConfig emdCfg = baseConfig();
  emdCfg.detector = SceneDetector::kHistogramEmd;
  const std::uint64_t emdBase = emdCfg.fingerprint();
  AnnotatorConfig dormantLuma = emdCfg;
  dormantLuma.sceneDetect.changeThreshold = 0.99;
  dormantLuma.sceneDetect.minSceneFrames = 55;
  EXPECT_EQ(dormantLuma.fingerprint(), emdBase)
      << "inactive sceneDetect must not contribute";

  // Credits protection off: the cap is dormant.
  AnnotatorConfig dormantCap = baseConfig();
  dormantCap.creditsClipCap = 0.5;
  EXPECT_EQ(dormantCap.fingerprint(), base)
      << "creditsClipCap with protectCredits off must not contribute";
}

TEST(Fingerprint, PureFunctionOfFieldValues) {
  // Two independently constructed equal configs agree -- the fingerprint
  // hashes values, never addresses, so it is stable across processes too.
  EXPECT_EQ(baseConfig().fingerprint(), baseConfig().fingerprint());
  AnnotatorConfig a = baseConfig();
  a.qualityLevels = {0.0, 0.07, 0.2};
  AnnotatorConfig b = baseConfig();
  b.qualityLevels = {0.0, 0.07, 0.2};
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, PairwiseDistinctAcrossTenantMatrix) {
  // The matrix the tenant suite exercises must map to pairwise-distinct
  // fingerprints (no aliasing between plans that can differ).
  std::vector<AnnotatorConfig> tenants;
  for (SceneDetector det :
       {SceneDetector::kMaxLuma, SceneDetector::kHistogramEmd}) {
    for (Granularity gran : {Granularity::kPerScene, Granularity::kPerFrame}) {
      for (bool credits : {false, true}) {
        for (int ladder = 0; ladder < 2; ++ladder) {
          AnnotatorConfig cfg;
          cfg.detector = det;
          cfg.granularity = gran;
          cfg.protectCredits = credits;
          if (ladder == 1) cfg.qualityLevels = {0.0, 0.1, 0.2};
          tenants.push_back(std::move(cfg));
        }
      }
    }
  }
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    for (std::size_t j = i + 1; j < tenants.size(); ++j) {
      EXPECT_NE(tenants[i].fingerprint(), tenants[j].fingerprint())
          << "tenants " << i << " and " << j << " alias";
    }
  }
}

TEST(Fingerprint, EqualFingerprintsProduceIdenticalTracks) {
  // The sharing contract, end to end: configs that differ only cosmetically
  // (equal fingerprints) must annotate bit-identically.
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kCatwoman, 0.02, 32, 24);
  AnnotatorConfig cosmetic = baseConfig();
  cosmetic.threads = 4;
  cosmetic.histogramDetect.emdThreshold = 42.0;  // dormant under kMaxLuma
  ASSERT_EQ(cosmetic.fingerprint(), baseConfig().fingerprint());
  const AnnotationTrack a = annotateClip(clip, baseConfig());
  const AnnotationTrack b = annotateClip(clip, cosmetic);
  EXPECT_EQ(encodeTrack(a), encodeTrack(b));
}

}  // namespace
}  // namespace anno::core
