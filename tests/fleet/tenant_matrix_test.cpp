// Tenant-matrix correctness: every pair of tenants across
// {detector x granularity x credits x quality ladder}, against a shared
// TrackCache.  The load-bearing claim: cache-served tracks are
// BYTE-IDENTICAL (CRC32 of encodeTrack) to cold per-client annotation
// runs, distinct fingerprints never alias, equal fingerprints share one
// entry, and proxy fan-out equals per-client transcodes byte-for-byte.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/anno_codec.h"
#include "core/annotate.h"
#include "core/track_cache.h"
#include "media/clipgen.h"
#include "media/crc32.h"
#include "stream/proxy.h"
#include "stream/server.h"

namespace anno::stream {
namespace {

/// The full {detector x granularity x credits x ladder} tenant matrix.
std::vector<core::AnnotatorConfig> tenantMatrix() {
  std::vector<core::AnnotatorConfig> tenants;
  for (core::SceneDetector det : {core::SceneDetector::kMaxLuma,
                                  core::SceneDetector::kHistogramEmd}) {
    for (core::Granularity gran :
         {core::Granularity::kPerScene, core::Granularity::kPerFrame}) {
      for (bool credits : {false, true}) {
        for (int ladder = 0; ladder < 2; ++ladder) {
          core::AnnotatorConfig cfg;
          cfg.detector = det;
          cfg.granularity = gran;
          cfg.protectCredits = credits;
          if (ladder == 1) cfg.qualityLevels = {0.0, 0.1, 0.2};
          tenants.push_back(std::move(cfg));
        }
      }
    }
  }
  return tenants;
}

std::uint32_t trackCrc(const core::AnnotationTrack& track) {
  return media::crc32(core::encodeTrack(track));
}

ClientCapabilities ipaqCaps(std::size_t quality = 1) {
  const display::DeviceModel d =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  return ClientCapabilities{d.name, d.transfer, quality};
}

class TenantMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.attachTrackCache(cache_);
    for (media::PaperClip clip :
         {media::PaperClip::kCatwoman, media::PaperClip::kOfficeXp,
          media::PaperClip::kIRobot}) {
      server_.addClip(media::generatePaperClip(clip, 0.02, 32, 24));
    }
  }

  core::TrackCache cache_;
  MediaServer server_;
};

TEST_F(TenantMatrixTest, CacheServedTracksAreByteIdenticalToColdRuns) {
  const std::vector<core::AnnotatorConfig> tenants = tenantMatrix();
  for (const std::string& clip : server_.catalog()) {
    const media::VideoClip& original = server_.entry(clip).original;
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      // Warm path: through the shared cache (fills on first touch).
      const core::CachedTrackPtr cached =
          server_.annotationFor(clip, tenants[t]);
      // Cold path: a from-scratch per-client annotation of the original.
      const core::AnnotationTrack cold =
          core::annotateClip(original, tenants[t]);
      EXPECT_EQ(trackCrc(cached->track), trackCrc(cold))
          << "tenant " << t << " clip " << clip;
      EXPECT_EQ(cached->sketches,
                core::buildSketchTrack(cold,
                                       server_.entry(clip).stats))
          << "tenant " << t << " clip " << clip;
      // Second touch is a hit serving the SAME bytes.
      const core::CachedTrackPtr again =
          server_.annotationFor(clip, tenants[t]);
      EXPECT_EQ(again.get(), cached.get())
          << "tenant " << t << " clip " << clip;
    }
  }
  // Engine passes == unique (clip, fingerprint) pairs, never sessions.
  std::map<std::uint64_t, int> fingerprints;
  for (const core::AnnotatorConfig& t : tenants) ++fingerprints[t.fingerprint()];
  const std::size_t expectedFills =
      server_.catalog().size() * fingerprints.size();
  EXPECT_EQ(cache_.stats().fills, expectedFills);
}

TEST_F(TenantMatrixTest, DistinctFingerprintsNeverAlias) {
  const std::vector<core::AnnotatorConfig> tenants = tenantMatrix();
  const std::string clip = server_.catalog().front();
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    for (std::size_t j = i + 1; j < tenants.size(); ++j) {
      const std::uint64_t fi = tenants[i].fingerprint();
      const std::uint64_t fj = tenants[j].fingerprint();
      const core::CachedTrackPtr a = server_.annotationFor(clip, tenants[i]);
      const core::CachedTrackPtr b = server_.annotationFor(clip, tenants[j]);
      if (fi == fj) {
        EXPECT_EQ(a.get(), b.get())
            << "equal fingerprints must share one entry (" << i << "," << j
            << ")";
      } else {
        EXPECT_NE(a.get(), b.get())
            << "distinct fingerprints must not alias (" << i << "," << j
            << ")";
      }
    }
  }
}

TEST_F(TenantMatrixTest, TenantServeStreamsMatchCachelessServer) {
  // The muxed tenant stream through the cache-backed server equals the
  // stream a dedicated per-tenant server (no cache) would produce.
  const std::vector<core::AnnotatorConfig> tenants = tenantMatrix();
  const ClientCapabilities caps = ipaqCaps(1);
  for (std::size_t t = 0; t < tenants.size(); t += 3) {  // sample the matrix
    MediaServer dedicated(tenants[t]);
    dedicated.addClip(media::generatePaperClip(media::PaperClip::kCatwoman,
                                               0.02, 32, 24));
    const auto shared = server_.serve("catwoman", caps, tenants[t]);
    const auto cold = dedicated.serve("catwoman", caps);
    EXPECT_EQ(shared, cold) << "tenant " << t;
  }
}

TEST_F(TenantMatrixTest, ReingestInvalidatesWithoutCrossTenantLeaks) {
  core::AnnotatorConfig tenant;
  tenant.granularity = core::Granularity::kPerFrame;
  const core::CachedTrackPtr before =
      server_.annotationFor("catwoman", tenant);
  // Replace the clip with different content under the same name.
  server_.addClip(
      media::generatePaperClip(media::PaperClip::kCatwoman, 0.03, 32, 24));
  const core::CachedTrackPtr after = server_.annotationFor("catwoman", tenant);
  EXPECT_NE(before.get(), after.get());
  EXPECT_NE(before->track.frameCount, after->track.frameCount)
      << "new content must produce a new track";
  EXPECT_EQ(trackCrc(after->track),
            trackCrc(core::annotateClip(server_.entry("catwoman").original,
                                        tenant)));
}

TEST(ProxyFanout, MatchesPerClientTranscodeByteForByte) {
  MediaServer server;
  server.addClip(
      media::generatePaperClip(media::PaperClip::kCatwoman, 0.02, 32, 24));
  const auto raw = server.serveRaw("catwoman");
  const ProxyNode proxy;

  std::vector<ClientCapabilities> clients;
  clients.push_back(ipaqCaps(0));
  clients.push_back(ipaqCaps(2));
  clients.push_back(ipaqCaps(2));  // duplicate of the previous: shares
  ClientCapabilities emissive = ipaqCaps(1);
  emissive.technology = DisplayTechnology::kEmissive;
  clients.push_back(emissive);
  ClientCapabilities floor = ipaqCaps(2);
  floor.minBacklightLevel = 40;
  clients.push_back(floor);

  const FanoutResult fanout = proxy.transcodeFanout(raw, clients);
  ASSERT_EQ(fanout.streams.size(), clients.size());
  EXPECT_EQ(fanout.enginePasses, 1u) << "one shared pass, N clients";
  EXPECT_EQ(fanout.uniqueRenders, 4u) << "the duplicate client shares";
  EXPECT_GT(fanout.frames, 0u);
  EXPECT_GT(fanout.scenes, 0u);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    EXPECT_EQ(fanout.streams[i], proxy.transcode(raw, clients[i]))
        << "client " << i;
  }
  EXPECT_EQ(fanout.streams[1], fanout.streams[2])
      << "identical capabilities share bytes";
}

TEST(ProxyFanout, ResizedFanoutMatchesResizedTranscodes) {
  MediaServer server;
  server.addClip(
      media::generatePaperClip(media::PaperClip::kOfficeXp, 0.02, 32, 24));
  const auto raw = server.serveRaw("officexp");
  const ProxyNode proxy;
  const std::vector<ClientCapabilities> clients = {ipaqCaps(0), ipaqCaps(3)};
  const FanoutResult fanout = proxy.transcodeFanout(raw, clients, 16, 12);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    EXPECT_EQ(fanout.streams[i], proxy.transcode(raw, clients[i], 16, 12))
        << "client " << i;
  }
}

TEST(ProxyFanout, EmptyClientListIsANoop) {
  MediaServer server;
  server.addClip(
      media::generatePaperClip(media::PaperClip::kCatwoman, 0.02, 32, 24));
  const auto raw = server.serveRaw("catwoman");
  const ProxyNode proxy;
  const FanoutResult fanout = proxy.transcodeFanout(raw, {});
  EXPECT_TRUE(fanout.streams.empty());
  EXPECT_EQ(fanout.enginePasses, 0u) << "no clients, no engine pass";
}

TEST(ProxyFanout, BadQualityIndexReportsRange) {
  MediaServer server;
  server.addClip(
      media::generatePaperClip(media::PaperClip::kCatwoman, 0.02, 32, 24));
  const auto raw = server.serveRaw("catwoman");
  const ProxyNode proxy;
  const std::vector<ClientCapabilities> clients = {ipaqCaps(0), ipaqCaps(9)};
  try {
    (void)proxy.transcodeFanout(raw, clients);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("quality index 9"), std::string::npos) << msg;
    EXPECT_NE(msg.find("5 level(s) offered"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[0, 4]"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace anno::stream
