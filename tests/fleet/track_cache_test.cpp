// core::TrackCache semantics + concurrency stress.
//
// The single-flight invariant (N racing requests for one missing key run
// exactly ONE fill) is the load-bearing claim: it is what makes fleet
// engine-seconds a function of unique (clip, fingerprint) pairs rather
// than session count.  The stress cases here run under the ANNO_SANITIZE
// matrix via the `fleet` ctest label (see .github/workflows/ci.yml).
#include "core/track_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace anno::core {
namespace {

/// A small filled value with a deterministic payload and explicit size.
CachedTrackPtr makeValue(std::uint64_t tag, std::size_t bytes = 1024) {
  auto v = std::make_shared<CachedTrack>();
  v->track.clipName = "clip-" + std::to_string(tag);
  v->track.fps = static_cast<double>(tag);
  v->bytes = bytes;
  return v;
}

TrackKey key(const std::string& clip, std::uint64_t fp) {
  return TrackKey{clip, fp};
}

TEST(TrackCache, FillsOnceThenHits) {
  TrackCache cache;
  int fills = 0;
  const auto fill = [&fills] { return makeValue(static_cast<std::uint64_t>(++fills)); };
  const CachedTrackPtr a = cache.getOrFill(key("a", 1), fill);
  const CachedTrackPtr b = cache.getOrFill(key("a", 1), fill);
  EXPECT_EQ(fills, 1);
  EXPECT_EQ(a.get(), b.get()) << "hit must return the same shared value";
  const TrackCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.fills, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(TrackCache, DistinctKeysGetDistinctEntries) {
  TrackCache cache;
  const CachedTrackPtr a = cache.getOrFill(key("a", 1), [] { return makeValue(1); });
  const CachedTrackPtr b = cache.getOrFill(key("a", 2), [] { return makeValue(2); });
  const CachedTrackPtr c = cache.getOrFill(key("b", 1), [] { return makeValue(3); });
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().fills, 3u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(TrackCache, PeekObservesWithoutCountingOrFilling) {
  TrackCache cache;
  EXPECT_EQ(cache.peek(key("a", 1)), nullptr);
  (void)cache.getOrFill(key("a", 1), [] { return makeValue(7); });
  const TrackCacheStats before = cache.stats();
  const CachedTrackPtr p = cache.peek(key("a", 1));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->track.fps, 7.0);
  const TrackCacheStats after = cache.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(TrackCache, FillerExceptionLeavesKeyAbsentAndRetryable) {
  TrackCache cache;
  EXPECT_THROW(
      (void)cache.getOrFill(key("a", 1),
                            []() -> CachedTrackPtr {
                              throw std::runtime_error("engine failed");
                            }),
      std::runtime_error);
  EXPECT_EQ(cache.peek(key("a", 1)), nullptr);
  EXPECT_EQ(cache.stats().fills, 0u);
  // The key is retryable and a later fill succeeds normally.
  const CachedTrackPtr p =
      cache.getOrFill(key("a", 1), [] { return makeValue(9); });
  EXPECT_EQ(p->track.fps, 9.0);
  EXPECT_EQ(cache.stats().fills, 1u);
}

TEST(TrackCache, NullFillIsAnError) {
  TrackCache cache;
  EXPECT_THROW((void)cache.getOrFill(key("a", 1),
                                     [] { return CachedTrackPtr{}; }),
               std::logic_error);
  EXPECT_EQ(cache.peek(key("a", 1)), nullptr);
}

TEST(TrackCache, LruEvictsColdestUnderByteBudget) {
  TrackCacheConfig cfg;
  cfg.shardCount = 1;  // one LRU list so the order is fully observable
  cfg.byteBudget = 2500;
  TrackCache cache(cfg);
  (void)cache.getOrFill(key("a", 1), [] { return makeValue(1, 1000); });
  (void)cache.getOrFill(key("b", 1), [] { return makeValue(2, 1000); });
  // Touch "a" so "b" is the LRU tail, then overflow.
  (void)cache.getOrFill(key("a", 1), [] { return makeValue(99); });
  (void)cache.getOrFill(key("c", 1), [] { return makeValue(3, 1000); });
  EXPECT_NE(cache.peek(key("a", 1)), nullptr) << "recently used must survive";
  EXPECT_EQ(cache.peek(key("b", 1)), nullptr) << "coldest must be evicted";
  EXPECT_NE(cache.peek(key("c", 1)), nullptr) << "fresh fill must survive";
  const TrackCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, cfg.byteBudget);
}

TEST(TrackCache, EvictedEntryStaysAliveForHolders) {
  TrackCacheConfig cfg;
  cfg.shardCount = 1;
  cfg.byteBudget = 1500;
  TrackCache cache(cfg);
  const CachedTrackPtr held =
      cache.getOrFill(key("a", 1), [] { return makeValue(42, 1000); });
  (void)cache.getOrFill(key("b", 1), [] { return makeValue(2, 1000); });
  EXPECT_EQ(cache.peek(key("a", 1)), nullptr) << "directory dropped it";
  EXPECT_EQ(held->track.fps, 42.0) << "holder's value survives eviction";
}

TEST(TrackCache, EraseClipRemovesAllFingerprints) {
  TrackCache cache;
  (void)cache.getOrFill(key("a", 1), [] { return makeValue(1); });
  (void)cache.getOrFill(key("a", 2), [] { return makeValue(2); });
  (void)cache.getOrFill(key("b", 1), [] { return makeValue(3); });
  EXPECT_EQ(cache.eraseClip("a"), 2u);
  EXPECT_EQ(cache.peek(key("a", 1)), nullptr);
  EXPECT_EQ(cache.peek(key("a", 2)), nullptr);
  EXPECT_NE(cache.peek(key("b", 1)), nullptr);
  cache.clear();
  EXPECT_EQ(cache.peek(key("b", 1)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(TrackCache, EntriesReportSharingMetadata) {
  TrackCache cache;
  const CachedTrackPtr held =
      cache.getOrFill(key("a", 1), [] { return makeValue(1); });
  (void)cache.getOrFill(key("a", 1), [] { return makeValue(1); });
  const std::vector<TrackCacheEntryInfo> infos = cache.entries();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].key, key("a", 1));
  EXPECT_EQ(infos[0].hits, 1u);
  EXPECT_EQ(infos[0].liveRefs, 1) << "one holder outside the cache";
  EXPECT_GT(infos[0].bytes, 0u);
}

TEST(TrackCache, TelemetryCountersTrackOperations) {
  telemetry::Registry registry;
  TrackCache cache;
  cache.attachTelemetry(registry);
  (void)cache.getOrFill(key("a", 1), [] { return makeValue(1); });
  (void)cache.getOrFill(key("a", 1), [] { return makeValue(1); });
  EXPECT_EQ(registry.counter("anno_track_cache_hits_total").value(), 1u);
  EXPECT_EQ(registry.counter("anno_track_cache_misses_total").value(), 1u);
  EXPECT_EQ(registry.counter("anno_track_cache_fills_total").value(), 1u);
  EXPECT_EQ(registry.gauge("anno_track_cache_entries").value(), 1);
  EXPECT_GT(registry.gauge("anno_track_cache_bytes").value(), 0);
  cache.detachTelemetry();
  (void)cache.getOrFill(key("b", 1), [] { return makeValue(2); });
  EXPECT_EQ(registry.counter("anno_track_cache_misses_total").value(), 1u)
      << "detached cache must stop recording";
}

TEST(TrackCache, SingleFlightStressFillsEqualUniqueKeys) {
  // N threads race over K keys with NO eviction pressure: the engine-pass
  // counter (here, filler invocations) must equal the unique key count
  // exactly -- the single-flight contract at fleet scale.
  constexpr int kThreads = 8;
  constexpr int kKeys = 24;
  constexpr int kItersPerThread = 400;
  TrackCacheConfig cfg;
  cfg.byteBudget = 0;  // unbounded: no eviction-triggered refills
  TrackCache cache(cfg);
  std::atomic<int> fillerRuns{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &fillerRuns, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const auto k = static_cast<std::uint64_t>((i * 7 + t) % kKeys);
        const CachedTrackPtr p = cache.getOrFill(
            key("clip", k), [&fillerRuns, k] {
              fillerRuns.fetch_add(1, std::memory_order_relaxed);
              return makeValue(k);
            });
        // Every requester sees the value for ITS key.
        ASSERT_EQ(p->track.fps, static_cast<double>(k));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(fillerRuns.load(), kKeys) << "single-flight violated";
  const TrackCacheStats stats = cache.stats();
  EXPECT_EQ(stats.fills, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(stats.entries, static_cast<std::size_t>(kKeys));
}

TEST(TrackCache, ConcurrentStressUnderEvictionPressure) {
  // Same race, but with a budget small enough that entries are constantly
  // evicted and refilled: correctness (every requester gets its key's
  // value), bounded bytes, and no deadlock under the sanitizer matrix.
  constexpr int kThreads = 8;
  constexpr int kKeys = 32;
  constexpr int kItersPerThread = 250;
  TrackCacheConfig cfg;
  cfg.shardCount = 4;
  cfg.byteBudget = 16 * 1024;  // holds only a few 1KiB entries per shard
  TrackCache cache(cfg);
  std::atomic<int> fillerRuns{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &fillerRuns, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const auto k = static_cast<std::uint64_t>((i * 13 + t * 3) % kKeys);
        const CachedTrackPtr p = cache.getOrFill(
            key("clip-" + std::to_string(k % 5), k), [&fillerRuns, k] {
              fillerRuns.fetch_add(1, std::memory_order_relaxed);
              return makeValue(k);
            });
        ASSERT_EQ(p->track.fps, static_cast<double>(k));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const TrackCacheStats stats = cache.stats();
  EXPECT_GE(fillerRuns.load(), kKeys) << "every key filled at least once";
  EXPECT_GT(stats.evictions, 0u) << "budget must actually bite";
  EXPECT_LE(stats.bytes, cfg.byteBudget);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads * kItersPerThread));
}

}  // namespace
}  // namespace anno::core
