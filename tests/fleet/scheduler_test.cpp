// stream::SessionScheduler: per-session state machine, service policies,
// join/leave mid-stream, determinism, and end-to-end decode validation.
#include "stream/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/track_cache.h"
#include "media/clipgen.h"
#include "telemetry/metrics.h"

namespace anno::stream {
namespace {

ClientCapabilities ipaqCaps(std::size_t quality = 2) {
  const display::DeviceModel d =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  return ClientCapabilities{d.name, d.transfer, quality};
}

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.addClip(
        media::generatePaperClip(media::PaperClip::kCatwoman, 0.02, 32, 24));
    server_.addClip(
        media::generatePaperClip(media::PaperClip::kOfficeXp, 0.02, 32, 24));
  }

  FleetSessionConfig fastSession(const std::string& clip = "catwoman") {
    FleetSessionConfig cfg;
    cfg.clipName = clip;
    cfg.caps = ipaqCaps();
    cfg.bandwidth = BandwidthTrace::constant(8e6);  // ample
    return cfg;
  }

  MediaServer server_;
};

TEST_F(SchedulerTest, SingleSessionPlaysToCompletion) {
  SessionScheduler sched(server_);
  const std::uint64_t id = sched.join(fastSession());
  const std::uint64_t ticks = sched.run();
  EXPECT_GT(ticks, 0u);
  EXPECT_TRUE(sched.allSessionsTerminal());
  const SessionReport r = sched.report(id);
  EXPECT_EQ(r.phase, SessionPhase::kCompleted);
  EXPECT_GT(r.startupDelaySeconds, 0.0);
  EXPECT_GT(r.playedSeconds, 0.0);
  EXPECT_EQ(r.bytesDelivered, r.streamBytes);
  const FleetStats stats = sched.stats();
  EXPECT_EQ(stats.sessionsJoined, 1u);
  EXPECT_EQ(stats.sessionsCompleted, 1u);
  EXPECT_EQ(stats.activeSessions, 0u);
}

TEST_F(SchedulerTest, StateMachineVisitsBufferingThenPlaying) {
  SessionScheduler::Config cfg;
  cfg.tickSeconds = 0.05;
  SessionScheduler sched(server_, cfg);
  FleetSessionConfig session = fastSession();
  session.bandwidth = BandwidthTrace::constant(2e5);  // slow enough to watch
  session.startupBufferSeconds = 0.5;
  const std::uint64_t id = sched.join(session);
  EXPECT_EQ(sched.report(id).phase, SessionPhase::kBuffering);
  bool sawPlaying = false;
  for (int i = 0; i < 100000 && !sched.allSessionsTerminal(); ++i) {
    sched.tick();
    if (sched.allSessionsTerminal()) break;
    if (sched.report(id).phase == SessionPhase::kPlaying) sawPlaying = true;
  }
  EXPECT_TRUE(sawPlaying);
  EXPECT_EQ(sched.report(id).phase, SessionPhase::kCompleted);
}

TEST_F(SchedulerTest, UndersizedLinkCausesStalls) {
  // A link slower than the content bitrate guarantees playback outruns
  // delivery once started, whatever the clip's exact size.
  const std::size_t streamBytes = server_.serve("catwoman", ipaqCaps()).size();
  const CatalogEntry& e = server_.entry("catwoman");
  const double duration =
      static_cast<double>(e.original.frames.size()) / e.original.fps;
  const double contentBitsPerSec =
      static_cast<double>(streamBytes) * 8.0 / duration;
  SessionScheduler::Config cfg;
  cfg.tickSeconds = 0.05;
  SessionScheduler sched(server_, cfg);
  FleetSessionConfig session = fastSession();
  session.bandwidth = BandwidthTrace::constant(contentBitsPerSec * 0.5);
  session.startupBufferSeconds = 0.2;
  session.bufferCapacitySeconds = 0.5;
  const std::uint64_t id = sched.join(session);
  sched.run(200000);
  const SessionReport r = sched.report(id);
  ASSERT_EQ(r.phase, SessionPhase::kCompleted);
  EXPECT_GT(r.stalls, 0u) << "undersized link must cause a rebuffer";
  EXPECT_GT(r.stallSeconds, 0.0);
}

TEST_F(SchedulerTest, LeaveMidStreamIsCleanAndTerminal) {
  SessionScheduler sched(server_);
  const std::uint64_t stayer = sched.join(fastSession());
  FleetSessionConfig slow = fastSession("officexp");
  slow.bandwidth = BandwidthTrace::constant(1e5);  // several ticks to deliver
  const std::uint64_t leaver = sched.join(slow);
  sched.tick();
  EXPECT_TRUE(sched.leave(leaver));
  EXPECT_FALSE(sched.leave(leaver)) << "second leave must be a no-op";
  EXPECT_FALSE(sched.leave(99999)) << "unknown id must be a no-op";
  const SessionReport left = sched.report(leaver);
  EXPECT_EQ(left.phase, SessionPhase::kLeft);
  EXPECT_LT(left.bytesDelivered, left.streamBytes);
  sched.run();
  EXPECT_EQ(sched.report(stayer).phase, SessionPhase::kCompleted);
  EXPECT_EQ(sched.report(leaver).phase, SessionPhase::kLeft)
      << "leave is terminal; the report is preserved";
  const FleetStats stats = sched.stats();
  EXPECT_EQ(stats.sessionsLeft, 1u);
  EXPECT_EQ(stats.sessionsCompleted, 1u);
  EXPECT_EQ(stats.peakConcurrentSessions, 2u);
}

TEST_F(SchedulerTest, RoundRobinBudgetServesEveryoneEventually) {
  SessionScheduler::Config cfg;
  cfg.policy = SchedulePolicy::kRoundRobin;
  cfg.serviceBudgetPerTick = 1;  // severe egress constraint
  SessionScheduler sched(server_, cfg);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(sched.join(fastSession()));
  sched.run(200000);
  for (std::uint64_t id : ids) {
    EXPECT_EQ(sched.report(id).phase, SessionPhase::kCompleted) << id;
  }
}

TEST_F(SchedulerTest, DeadlinePolicyServesMostUrgentFirst) {
  SessionScheduler::Config cfg;
  cfg.policy = SchedulePolicy::kDeadline;
  cfg.serviceBudgetPerTick = 1;
  SessionScheduler sched(server_, cfg);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(sched.join(fastSession()));
  sched.run(200000);
  for (std::uint64_t id : ids) {
    EXPECT_EQ(sched.report(id).phase, SessionPhase::kCompleted) << id;
  }
}

TEST_F(SchedulerTest, DeadlineTieBreakServesAscendingIds) {
  // Pins the deadline policy's exact service order through the heap
  // selection: identical sessions all start at equal urgency, so ties must
  // fall to ascending id -- after k budget-1 ticks, exactly the k lowest
  // ids have received bytes.  (A selection that picked the right SET but
  // permuted the order would fail on the first tick.)
  SessionScheduler::Config cfg;
  cfg.policy = SchedulePolicy::kDeadline;
  cfg.serviceBudgetPerTick = 1;
  SessionScheduler sched(server_, cfg);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(sched.join(fastSession()));
  for (std::size_t served = 1; served <= ids.size(); ++served) {
    sched.tick();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(sched.report(ids[i]).bytesDelivered > 0, i < served)
          << "after tick " << served << ", session index " << i;
    }
  }
}

TEST_F(SchedulerTest, DeadlineServesLargestStartupDeficitFirst) {
  // Urgency order beats id order: the session with the deeper startup
  // deficit must win the only service slot even though it joined later.
  SessionScheduler::Config cfg;
  cfg.policy = SchedulePolicy::kDeadline;
  cfg.serviceBudgetPerTick = 1;
  SessionScheduler sched(server_, cfg);
  FleetSessionConfig shallow = fastSession();
  shallow.startupBufferSeconds = 0.2;
  FleetSessionConfig deep = fastSession("officexp");
  deep.startupBufferSeconds = 1.5;
  const std::uint64_t first = sched.join(shallow);  // lower id, less urgent
  const std::uint64_t second = sched.join(deep);    // higher id, more urgent
  sched.tick();
  EXPECT_EQ(sched.report(first).bytesDelivered, 0u);
  EXPECT_GT(sched.report(second).bytesDelivered, 0u);
}

TEST_F(SchedulerTest, RunsAreDeterministic) {
  const auto runOnce = [this](SchedulePolicy policy) {
    SessionScheduler::Config cfg;
    cfg.policy = policy;
    cfg.serviceBudgetPerTick = 2;
    SessionScheduler sched(server_, cfg);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 5; ++i) {
      FleetSessionConfig s = fastSession(i % 2 == 0 ? "catwoman" : "officexp");
      s.bandwidth = BandwidthTrace::randomWalk(1e6, 0.5, 42 + i, 0.5, 30.0);
      ids.push_back(sched.join(s));
    }
    sched.run(200000);
    std::vector<SessionReport> reports;
    for (std::uint64_t id : ids) reports.push_back(sched.report(id));
    return reports;
  };
  for (SchedulePolicy policy :
       {SchedulePolicy::kRoundRobin, SchedulePolicy::kDeadline}) {
    const auto a = runOnce(policy);
    const auto b = runOnce(policy);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].phase, b[i].phase) << i;
      EXPECT_DOUBLE_EQ(a[i].startupDelaySeconds, b[i].startupDelaySeconds) << i;
      EXPECT_DOUBLE_EQ(a[i].playedSeconds, b[i].playedSeconds) << i;
      EXPECT_DOUBLE_EQ(a[i].stallSeconds, b[i].stallSeconds) << i;
      EXPECT_EQ(a[i].bytesDelivered, b[i].bytesDelivered) << i;
    }
  }
}

TEST_F(SchedulerTest, DecodeOnCompleteValidatesEndToEnd) {
  SessionScheduler sched(server_);
  FleetSessionConfig session = fastSession();
  session.decodeOnComplete = true;
  const std::uint64_t id = sched.join(session);
  sched.run();
  const SessionReport r = sched.report(id);
  ASSERT_EQ(r.phase, SessionPhase::kCompleted);
  ASSERT_TRUE(r.decodeOk.has_value());
  EXPECT_TRUE(*r.decodeOk) << "fleet-streamed bytes must decode cleanly";
}

TEST_F(SchedulerTest, IdenticalSessionsShareOneStream) {
  core::TrackCache cache;
  server_.attachTrackCache(cache);
  SessionScheduler sched(server_);
  for (int i = 0; i < 16; ++i) (void)sched.join(fastSession());
  EXPECT_EQ(sched.stats().uniqueStreams, 1u)
      << "16 identical sessions must materialize one stream";
  sched.run();
  EXPECT_EQ(sched.stats().sessionsCompleted, 16u);
  server_.detachTrackCache();
}

TEST_F(SchedulerTest, TenantSessionsResolveThroughTrackCache) {
  core::TrackCache cache;
  server_.attachTrackCache(cache);
  SessionScheduler sched(server_);
  core::AnnotatorConfig tenant;
  tenant.granularity = core::Granularity::kPerFrame;
  for (int i = 0; i < 8; ++i) {
    FleetSessionConfig s = fastSession();
    s.tenantCfg = tenant;
    (void)sched.join(s);
  }
  EXPECT_EQ(cache.stats().fills, 1u)
      << "8 same-tenant sessions cost one engine pass";
  EXPECT_EQ(sched.stats().uniqueStreams, 1u);
  sched.run();
  EXPECT_EQ(sched.stats().sessionsCompleted, 8u);
  server_.detachTrackCache();
}

TEST_F(SchedulerTest, UnknownClipAndBadQualityThrowAtJoin) {
  SessionScheduler sched(server_);
  FleetSessionConfig bad = fastSession("nope");
  EXPECT_THROW((void)sched.join(bad), std::out_of_range);
  FleetSessionConfig badQuality = fastSession();
  badQuality.caps.qualityIndex = 99;
  EXPECT_THROW((void)sched.join(badQuality), std::out_of_range);
  EXPECT_EQ(sched.stats().sessionsJoined, 0u);
}

TEST_F(SchedulerTest, TelemetryGaugesFollowTheFleet) {
  telemetry::Registry registry;
  SessionScheduler sched(server_);
  sched.attachTelemetry(registry);
  (void)sched.join(fastSession());
  (void)sched.join(fastSession("officexp"));
  EXPECT_EQ(registry.counter("anno_fleet_sessions_joined_total").value(), 2u);
  EXPECT_EQ(registry.gauge("anno_fleet_sessions_active").value(), 2);
  sched.run();
  EXPECT_EQ(registry.counter("anno_fleet_sessions_completed_total").value(),
            2u);
  EXPECT_EQ(registry.gauge("anno_fleet_sessions_active").value(), 0);
  EXPECT_GT(registry.counter("anno_fleet_bytes_delivered_total").value(), 0u);
}

}  // namespace
}  // namespace anno::stream
