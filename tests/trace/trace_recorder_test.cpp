// TraceRecorder semantics: ring capacity + drop accounting, interning,
// the per-thread media clock, span RAII null-safety, snapshot ordering,
// and the plain-text dump round-trip (including hostile strings).
#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <thread>

namespace anno::telemetry {
namespace {

TEST(TraceRecorder, RecordsTypedEventsInEmissionOrder) {
  TraceRecorder trace;
  trace.spanBegin("scene", "engine", {{"first_frame", 0.0}});
  trace.instant("cut", "engine", {{"frame", 12.0}});
  trace.counter("clipped_fraction", "client", 0.25);
  trace.metadata("session", "client", {{"fps", 24.0}}, "clip", "movie");
  trace.spanEnd("scene", "engine", {{"frames", 12.0}});

  const TraceSnapshot snap = snapshotTrace(trace);
  ASSERT_EQ(snap.events.size(), 5u);
  EXPECT_EQ(snap.droppedEvents, 0u);
  EXPECT_EQ(snap.events[0].type, TraceEventType::kSpanBegin);
  EXPECT_EQ(snap.events[1].type, TraceEventType::kInstant);
  EXPECT_EQ(snap.events[2].type, TraceEventType::kCounter);
  EXPECT_DOUBLE_EQ(snap.events[2].value, 0.25);
  EXPECT_EQ(snap.events[3].type, TraceEventType::kMetadata);
  EXPECT_EQ(snap.events[3].strKey, "clip");
  EXPECT_EQ(snap.events[3].strValue, "movie");
  EXPECT_EQ(snap.events[4].type, TraceEventType::kSpanEnd);
  ASSERT_EQ(snap.events[0].args.size(), 1u);
  EXPECT_EQ(snap.events[0].args[0].first, "first_frame");
  // Wall clocks are monotone within a thread.
  for (std::size_t i = 1; i < snap.events.size(); ++i) {
    EXPECT_GE(snap.events[i].wallNanos, snap.events[i - 1].wallNanos);
  }
}

TEST(TraceRecorder, FullRingDropsNewestAndCounts) {
  TraceConfig cfg;
  cfg.eventsPerThread = 4;
  TraceRecorder trace(cfg);
  for (int i = 0; i < 10; ++i) {
    trace.instant("tick", "test", {{"i", static_cast<double>(i)}});
  }
  EXPECT_EQ(trace.recordedEvents(), 4u);
  EXPECT_EQ(trace.droppedEvents(), 6u);

  // The SURVIVING events are the oldest (published slots are immutable);
  // the drop counter owns the tail.
  const TraceSnapshot snap = snapshotTrace(trace);
  ASSERT_EQ(snap.events.size(), 4u);
  EXPECT_EQ(snap.droppedEvents, 6u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(snap.events[static_cast<std::size_t>(i)].args[0].second,
                     static_cast<double>(i));
  }
}

TEST(TraceRecorder, CapacityClampsToAtLeastOne) {
  TraceConfig cfg;
  cfg.eventsPerThread = 0;
  TraceRecorder trace(cfg);
  trace.instant("only", "test");
  trace.instant("dropped", "test");
  EXPECT_EQ(trace.recordedEvents(), 1u);
  EXPECT_EQ(trace.droppedEvents(), 1u);
}

TEST(TraceRecorder, InternReturnsStableSharedPointer) {
  TraceRecorder trace;
  const char* a = trace.intern("the/movie");
  const char* b = trace.intern(std::string("the/") + "movie");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "the/movie");
  const char* other = trace.intern("shrek2");
  EXPECT_NE(a, other);
}

TEST(TraceRecorder, MediaClockStampsUntilCleared) {
  TraceRecorder trace;
  trace.instant("before", "test");
  trace.setMediaTime(1.5);
  trace.instant("during", "test");
  trace.setMediaTime(2.0);
  trace.counter("level", "test", 80.0);
  trace.clearMediaTime();
  trace.instant("after", "test");

  const TraceSnapshot snap = snapshotTrace(trace);
  ASSERT_EQ(snap.events.size(), 4u);
  EXPECT_TRUE(std::isnan(snap.events[0].mediaSeconds));
  EXPECT_DOUBLE_EQ(snap.events[1].mediaSeconds, 1.5);
  EXPECT_DOUBLE_EQ(snap.events[2].mediaSeconds, 2.0);
  EXPECT_TRUE(std::isnan(snap.events[3].mediaSeconds));
}

TEST(TraceRecorder, MediaClockIsPerThread) {
  TraceRecorder trace;
  trace.setMediaTime(10.0);
  std::thread other([&trace] {
    // A fresh thread has no media clock in scope.
    trace.instant("other_thread", "test");
  });
  other.join();
  trace.instant("own_thread", "test");

  const TraceSnapshot snap = snapshotTrace(trace);
  ASSERT_EQ(snap.events.size(), 2u);
  for (const TraceSnapshotEvent& ev : snap.events) {
    if (ev.name == "other_thread") {
      EXPECT_TRUE(std::isnan(ev.mediaSeconds));
    } else {
      EXPECT_DOUBLE_EQ(ev.mediaSeconds, 10.0);
    }
  }
}

TEST(TraceSpan, NullRecorderIsANoOp) {
  {
    TraceSpan span(nullptr, "scene", "engine", {{"first_frame", 0.0}});
    span.end({{"frames", 10.0}});
    span.end();  // idempotent
  }
  // Null-safe helpers are equally inert.
  traceInstant(nullptr, "x", "y");
  traceCounter(nullptr, "x", "y", 1.0);
  traceMetadata(nullptr, "x", "y");
  traceSetMediaTime(nullptr, 1.0);
  traceClearMediaTime(nullptr);
}

TEST(TraceSpan, EndsExactlyOnce) {
  TraceRecorder trace;
  {
    TraceSpan span(&trace, "serve", "server");
    span.end({{"bytes", 123.0}});
    // Destructor must not emit a second end.
  }
  const TraceSnapshot snap = snapshotTrace(trace);
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.events[0].type, TraceEventType::kSpanBegin);
  EXPECT_EQ(snap.events[1].type, TraceEventType::kSpanEnd);
  ASSERT_EQ(snap.events[1].args.size(), 1u);
  EXPECT_EQ(snap.events[1].args[0].first, "bytes");
}

TEST(TraceSnapshot, MergesThreadsByWallTimeAndKeepsThreadNames) {
  TraceRecorder trace;
  trace.nameThisThread("main");
  trace.instant("first", "test");
  std::thread worker([&trace] {
    trace.nameThisThread("worker");
    trace.instant("second", "test");
  });
  worker.join();
  trace.instant("third", "test");

  const TraceSnapshot snap = snapshotTrace(trace);
  ASSERT_EQ(snap.events.size(), 3u);
  // Global order is by wall time; the two main-thread events bracket it.
  EXPECT_EQ(snap.events.front().name, "first");
  EXPECT_EQ(snap.events.back().name, "third");
  ASSERT_EQ(snap.threads.size(), 2u);
  EXPECT_EQ(snap.threads[0].second, "main");
  EXPECT_EQ(snap.threads[1].second, "worker");
  EXPECT_NE(snap.events[0].tid, 0u);
}

TEST(TraceDump, RoundTripsExactly) {
  TraceRecorder trace;
  trace.nameThisThread("main");
  trace.setMediaTime(3.25);
  trace.spanBegin("scene", "engine", {{"first_frame", 7.0}});
  trace.counter("clipped_fraction", "client", 0.04999999999999999);
  trace.clearMediaTime();
  trace.spanEnd("scene", "engine", {{"frames", 42.0}}, "reason", "luma_jump");
  TraceConfig tiny;  // force a nonzero drop count through the dump
  (void)tiny;

  const TraceSnapshot snap = snapshotTrace(trace);
  const TraceSnapshot parsed = parseTraceDump(serializeTraceDump(snap));
  EXPECT_EQ(parsed, snap);
}

TEST(TraceDump, RoundTripsHostileStringsAndDrops) {
  TraceConfig cfg;
  cfg.eventsPerThread = 2;
  TraceRecorder trace(cfg);
  const char* evil =
      trace.intern("tab\there \"quoted\" back\\slash\nnewline\rret");
  trace.nameThisThread(evil);
  trace.instant(evil, "test", {{"x", -0.0}}, evil, evil);
  trace.counter("nan_media", "test", 1e308);
  trace.instant("dropped", "test");  // over capacity

  const TraceSnapshot snap = snapshotTrace(trace);
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.droppedEvents, 1u);
  const TraceSnapshot parsed = parseTraceDump(serializeTraceDump(snap));
  EXPECT_EQ(parsed, snap);
  EXPECT_EQ(parsed.events[0].name, "tab\there \"quoted\" back\\slash\nnewline\rret");
  EXPECT_EQ(parsed.droppedEvents, 1u);
  ASSERT_EQ(parsed.threads.size(), 1u);
  EXPECT_EQ(parsed.threads[0].second, parsed.events[0].name);
}

TEST(TraceDump, RejectsMalformedInput) {
  EXPECT_THROW((void)parseTraceDump(""), std::runtime_error);
  EXPECT_THROW((void)parseTraceDump("not a dump\n"), std::runtime_error);
  EXPECT_THROW((void)parseTraceDump("ANNOTRACE 99\n"), std::runtime_error);
  EXPECT_THROW((void)parseTraceDump("ANNOTRACE 1\ne\tbogus\n"),
               std::runtime_error);
  // Truncating a valid dump mid-line must throw, not mis-parse.
  TraceRecorder trace;
  trace.instant("x", "y", {{"k", 1.0}});
  const std::string dump = serializeTraceDump(snapshotTrace(trace));
  EXPECT_THROW((void)parseTraceDump(dump.substr(0, dump.size() / 2)),
               std::runtime_error);
}

TEST(TraceRecorder, SecondRecorderGetsFreshBuffers) {
  // The thread-local buffer cache is keyed by recorder identity: a new
  // recorder on the same thread must not alias the old one's ring.
  auto first = std::make_unique<TraceRecorder>();
  first->instant("old", "test");
  EXPECT_EQ(first->recordedEvents(), 1u);
  first.reset();
  TraceRecorder second;
  second.instant("new", "test");
  const TraceSnapshot snap = snapshotTrace(second);
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_EQ(snap.events[0].name, "new");
}

}  // namespace
}  // namespace anno::telemetry
