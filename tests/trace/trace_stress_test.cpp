// Concurrency stress for the trace recorder: 8 writer threads hammer the
// lock-free emit path (spans, instants, counters, interning, media-clock
// updates) while a reader repeatedly snapshots and exports the live
// recorder.  Under -DANNO_SANITIZE=thread this is the TSan proof of the
// subsystem's central claim: published ring slots are written exactly
// once, so concurrent export needs no writer-side locks.
//
// Correctness checks ride along: every published event is internally
// consistent (no torn names, args from the right thread), per-thread
// counter sequences stay monotone, and the final recorded+dropped total
// equals exactly what the writers emitted.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/trace.h"

namespace anno::telemetry {
namespace {

TEST(TraceStress, ConcurrentWritersAndExporter) {
  constexpr unsigned kWriters = 8;
  constexpr std::uint64_t kEventsPerWriter = 20'000;
  TraceConfig cfg;
  cfg.eventsPerThread = 1 << 12;  // small enough to exercise the drop path
  TraceRecorder trace(cfg);

  std::atomic<bool> stop{false};
  std::atomic<unsigned> ready{0};

  std::thread reader([&] {
    std::uint64_t exports = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const TraceSnapshot snap = snapshotTrace(trace);
      // Every published event must be fully formed: a non-empty name and
      // one of this test's categories (a torn write would surface as
      // garbage here, and TSan would flag the race itself).
      for (const TraceSnapshotEvent& ev : snap.events) {
        ASSERT_FALSE(ev.name.empty());
        ASSERT_TRUE(ev.cat == "stress");
      }
      if (++exports % 8 == 0) {
        (void)toChromeTraceJson(snap);  // exporter runs against live writers
      }
    }
    EXPECT_GT(exports, 0u);
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&trace, &ready, w] {
      const std::string mine = "writer-" + std::to_string(w);
      const char* name = trace.intern(mine);
      trace.nameThisThread(name);
      ready.fetch_add(1, std::memory_order_release);
      for (std::uint64_t i = 0; i < kEventsPerWriter; ++i) {
        switch (i % 4) {
          case 0:
            trace.spanBegin("work", "stress",
                            {{"i", static_cast<double>(i)}});
            break;
          case 1:
            trace.spanEnd("work", "stress");
            break;
          case 2:
            trace.setMediaTime(static_cast<double>(i) / 1000.0);
            trace.counter("progress", "stress", static_cast<double>(i));
            break;
          default:
            trace.instant(name, "stress", {{"i", static_cast<double>(i)}},
                          "tag", name);
            break;
        }
      }
      trace.clearMediaTime();
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Conservation: every emitted event was either recorded or counted as
  // dropped -- nothing vanished, nothing was double-published.  The reader
  // thread itself emits nothing.
  const TraceSnapshot final = snapshotTrace(trace);
  EXPECT_EQ(final.events.size() + final.droppedEvents,
            static_cast<std::uint64_t>(kWriters) * kEventsPerWriter);
  EXPECT_EQ(final.droppedEvents, trace.droppedEvents());
  EXPECT_EQ(ready.load(), kWriters);

  // Per-writer streams preserve emission order: each writer's counter
  // samples are strictly increasing within its own tid.
  std::vector<double> lastProgress(kWriters * 2 + 2, -1.0);
  for (const TraceSnapshotEvent& ev : final.events) {
    if (ev.name != "progress") continue;
    ASSERT_LT(ev.tid, lastProgress.size());
    EXPECT_GT(ev.value, lastProgress[ev.tid]);
    lastProgress[ev.tid] = ev.value;
  }

  // All 8 writer tracks registered and named themselves.
  EXPECT_EQ(final.threads.size(), kWriters);
  for (const auto& [tid, name] : final.threads) {
    EXPECT_EQ(name.rfind("writer-", 0), 0u) << name;
  }
}

TEST(TraceStress, InternIsThreadSafeAndStable) {
  TraceRecorder trace;
  constexpr unsigned kThreads = 8;
  std::vector<const char*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned i = 0; i < kThreads; ++i) {
    threads.emplace_back([&trace, &seen, i] {
      for (int rep = 0; rep < 1000; ++rep) {
        seen[i] = trace.intern("shared-name");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (unsigned i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[i], seen[0]);  // one stable pointer for everyone
  }
}

}  // namespace
}  // namespace anno::telemetry
