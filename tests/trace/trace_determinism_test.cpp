// Cross-thread-count determinism + timeline reconstruction.
//
// Determinism: the engine's semantic trace events (scene spans with their
// cut reasons and frame ranges) are exact functions of the content --
// annotating the same clip at 1, 2 and 8 threads must produce
// bit-identical semantic events.  Only the wall-clock stamps and the pool
// track (cat "pool", scheduling-dependent by design) may differ.
//
// Timeline: reconstructTimeline turns the semantic vocabulary into the
// paper's per-frame power/QoS series; a hand-built snapshot checks every
// derived quantity against the display/power models.
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/annotate.h"
#include "media/clipgen.h"
#include "power/power.h"
#include "telemetry/timeline.h"
#include "telemetry/trace.h"

namespace anno::telemetry {
namespace {

/// The semantic shape of a capture: events with wall clocks stripped and
/// the pool track dropped, in per-thread emission order.
std::vector<TraceSnapshotEvent> semanticEvents(const TraceSnapshot& snap) {
  // Group by tid so cross-thread interleaving (wall-time sort order) does
  // not leak scheduling noise into the comparison.
  std::map<std::uint32_t, std::vector<TraceSnapshotEvent>> byTid;
  for (const TraceSnapshotEvent& ev : snap.events) {
    if (ev.cat == "pool") continue;
    TraceSnapshotEvent stripped = ev;
    stripped.wallNanos = 0;
    stripped.tid = 0;
    byTid[ev.tid].push_back(std::move(stripped));
  }
  // The engine emits from the annotating thread only, so exactly one tid
  // should carry semantic events; concatenate in tid order regardless.
  std::vector<TraceSnapshotEvent> out;
  for (auto& [tid, events] : byTid) {
    out.insert(out.end(), events.begin(), events.end());
  }
  return out;
}

TEST(TraceDeterminism, SemanticEventsIdenticalAcrossThreadCounts) {
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kTheMovie, 0.1, 64, 48);

  std::vector<std::vector<TraceSnapshotEvent>> captures;
  for (const unsigned threads : {1u, 2u, 8u}) {
    TraceRecorder trace;
    core::AnnotatorConfig cfg;
    cfg.threads = threads;
    cfg.trace = &trace;
    (void)core::annotateClip(clip, cfg);
    captures.push_back(semanticEvents(snapshotTrace(trace)));
  }

  ASSERT_FALSE(captures[0].empty());
  // Scene spans must be present in every capture.
  bool sawScene = false;
  for (const TraceSnapshotEvent& ev : captures[0]) {
    if (ev.cat == "engine" && ev.name == "scene") sawScene = true;
  }
  EXPECT_TRUE(sawScene);
  EXPECT_EQ(captures[0], captures[1]) << "threads=1 vs threads=2";
  EXPECT_EQ(captures[0], captures[2]) << "threads=1 vs threads=8";
}

TEST(TraceDeterminism, RepeatedRunsIdenticalAtSameThreadCount) {
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kShrek2, 0.1, 48, 36);
  std::vector<std::vector<TraceSnapshotEvent>> captures;
  for (int run = 0; run < 2; ++run) {
    TraceRecorder trace;
    core::AnnotatorConfig cfg;
    cfg.threads = 4;
    cfg.trace = &trace;
    (void)core::annotateClip(clip, cfg);
    captures.push_back(semanticEvents(snapshotTrace(trace)));
  }
  EXPECT_EQ(captures[0], captures[1]);
}

// ---------------------------------------------------------------------------
// Timeline reconstruction
// ---------------------------------------------------------------------------

TraceSnapshotEvent makeEvent(const char* name, const char* cat,
                             TraceEventType type,
                             std::vector<std::pair<std::string, double>> args,
                             std::string strKey = {},
                             std::string strValue = {}) {
  TraceSnapshotEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.type = type;
  ev.tid = 1;
  ev.args = std::move(args);
  ev.strKey = std::move(strKey);
  ev.strValue = std::move(strValue);
  return ev;
}

/// A 10-frame session at 10 fps: full backlight for frames 0-4, dimmed to
/// level 100 (k = 1.3) for frames 5-9, one scene span per half, a stall
/// on frame 5, and clipped-fraction samples on the media clock.
TraceSnapshot cannedSession() {
  TraceSnapshot snap;
  auto add = [&snap](TraceSnapshotEvent ev) {
    ev.wallNanos = static_cast<std::int64_t>(snap.events.size());
    snap.events.push_back(std::move(ev));
  };
  add(makeEvent("session", "client", TraceEventType::kMetadata,
                {{"frames", 10.0}, {"fps", 10.0}, {"quality", 0.05}},
                "clip", "canned"));
  add(makeEvent("device", "client", TraceEventType::kMetadata,
                {{"min_backlight", 10.0}}, "name", "ipaq5555"));
  add(makeEvent("backlight_switch", "client", TraceEventType::kInstant,
                {{"frame", 0.0}, {"level", 255.0}, {"gain_k", 1.0}}));
  add(makeEvent("backlight_switch", "client", TraceEventType::kInstant,
                {{"frame", 5.0}, {"level", 100.0}, {"gain_k", 1.3}}));
  {
    TraceSnapshotEvent clipped =
        makeEvent("clipped_fraction", "client", TraceEventType::kCounter, {});
    clipped.value = 0.02;
    clipped.mediaSeconds = 0.5;  // frame 5 at 10 fps
    add(std::move(clipped));
  }
  add(makeEvent("scene", "engine", TraceEventType::kSpanEnd,
                {{"first_frame", 0.0}, {"frames", 5.0}, {"safe_luma", 1.0}},
                "reason", "luma_jump"));
  add(makeEvent("scene", "engine", TraceEventType::kSpanEnd,
                {{"first_frame", 5.0}, {"frames", 5.0}, {"safe_luma", 0.6}},
                "reason", "end_of_stream"));
  // The same scenes again, as the proxy's re-annotation would emit them:
  // deduplicated by (first_frame, frames).
  add(makeEvent("scene", "engine", TraceEventType::kSpanEnd,
                {{"first_frame", 0.0}, {"frames", 5.0}, {"safe_luma", 1.0}},
                "reason", "luma_jump"));
  add(makeEvent("rebuffer", "session", TraceEventType::kSpanEnd,
                {{"frame", 5.0}, {"seconds", 1.25}}));
  snap.threads.emplace_back(1u, "main");
  return snap;
}

TEST(SessionTimeline, ReconstructsPerFrameSeries) {
  const power::MobileDevicePower pda = power::makeIpaq5555Power();
  const SessionTimeline tl = reconstructTimeline(cannedSession(), pda);

  EXPECT_EQ(tl.clip, "canned");
  EXPECT_EQ(tl.device, "ipaq5555");
  EXPECT_DOUBLE_EQ(tl.fps, 10.0);
  EXPECT_DOUBLE_EQ(tl.qualityLevel, 0.05);
  ASSERT_EQ(tl.points.size(), 10u);

  // Backlight step function: 255 for the first half, 100 after.
  for (std::size_t f = 0; f < 10; ++f) {
    const TimelinePoint& p = tl.points[f];
    EXPECT_EQ(p.frame, static_cast<std::int64_t>(f));
    EXPECT_DOUBLE_EQ(p.seconds, static_cast<double>(f) / 10.0);
    EXPECT_EQ(p.backlightLevel, f < 5 ? 255 : 100);
    EXPECT_DOUBLE_EQ(p.gainK, f < 5 ? 1.0 : 1.3);
    EXPECT_DOUBLE_EQ(p.clippedFraction, f < 5 ? 0.0 : 0.02);
    EXPECT_DOUBLE_EQ(p.backlightWatts, pda.backlightWatts(p.backlightLevel));
    EXPECT_EQ(p.stalled, f == 5);
  }

  // Scenes deduplicate to two, in frame order, with planner metadata.
  ASSERT_EQ(tl.scenes.size(), 2u);
  EXPECT_EQ(tl.scenes[0].firstFrame, 0);
  EXPECT_EQ(tl.scenes[0].cutReason, "luma_jump");
  EXPECT_EQ(tl.scenes[0].backlightLevel, 255);
  EXPECT_EQ(tl.scenes[1].firstFrame, 5);
  EXPECT_EQ(tl.scenes[1].backlightLevel, 100);
  EXPECT_DOUBLE_EQ(tl.scenes[1].gainK, 1.3);
  EXPECT_DOUBLE_EQ(tl.scenes[1].meanClippedFraction, 0.02);
  // The dimmed scene saves backlight energy; the full one saves nothing.
  EXPECT_DOUBLE_EQ(tl.scenes[0].backlightSavingsFraction, 0.0);
  EXPECT_GT(tl.scenes[1].backlightSavingsFraction, 0.0);

  // Whole-session energy: integrate the models by hand.
  const double frameSeconds = 0.1;
  const double expectBacklight =
      5.0 * frameSeconds * pda.backlightWatts(255) +
      5.0 * frameSeconds * pda.backlightWatts(100);
  EXPECT_NEAR(tl.backlightEnergyJoules, expectBacklight, 1e-12);
  EXPECT_NEAR(tl.fullBacklightEnergyJoules,
              10.0 * frameSeconds * pda.backlightWatts(255), 1e-12);
  EXPECT_NEAR(tl.backlightSavingsFraction,
              1.0 - tl.backlightEnergyJoules / tl.fullBacklightEnergyJoules,
              1e-12);
  EXPECT_GT(tl.backlightSavingsFraction, 0.0);
  EXPECT_GT(tl.deviceSavingsFraction, 0.0);
  EXPECT_LT(tl.deviceSavingsFraction, tl.backlightSavingsFraction);

  EXPECT_EQ(tl.stallEvents, 1);
  EXPECT_DOUBLE_EQ(tl.stallSeconds, 1.25);
}

TEST(SessionTimeline, ThrowsWithoutSessionMetadata) {
  TraceSnapshot empty;
  EXPECT_THROW(
      (void)reconstructTimeline(empty, power::makeIpaq5555Power()),
      std::runtime_error);
}

TEST(SessionTimeline, JsonAndCsvRenderEveryPoint) {
  const SessionTimeline tl =
      reconstructTimeline(cannedSession(), power::makeIpaq5555Power());
  const std::string json = tl.toJson();
  EXPECT_NE(json.find("\"clip\": \"canned\""), std::string::npos);
  EXPECT_NE(json.find("\"backlight_savings_fraction\""), std::string::npos);
  EXPECT_NE(json.find("\"stalled\": true"), std::string::npos);

  const std::string csv = tl.toCsv();
  std::size_t rows = 0;
  for (const char c : csv) rows += c == '\n' ? 1 : 0;
  EXPECT_EQ(rows, 1u + tl.points.size());  // header + one row per frame
  EXPECT_EQ(csv.rfind("frame,seconds,backlight_level", 0), 0u);
}

}  // namespace
}  // namespace anno::telemetry
