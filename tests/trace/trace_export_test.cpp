// Chrome trace-event exporter: the JSON must be syntactically valid (a
// mini recursive-descent validator below -- no external JSON dependency),
// carry the Perfetto-relevant shape (traceEvents array, M/B/E/i/C phases,
// microsecond timestamps, per-thread tracks), and escape hostile event
// names instead of emitting broken documents.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "telemetry/trace.h"

namespace anno::telemetry {
namespace {

/// Minimal JSON syntax validator (objects, arrays, strings with escapes,
/// numbers, true/false/null).  Returns true iff the whole input is one
/// valid value.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(
                    s_[pos_ + static_cast<std::size_t>(i)])) == 0) {
              return false;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TraceSnapshot cannedSnapshot() {
  TraceRecorder trace;
  trace.nameThisThread("main");
  trace.metadata("session", "client", {{"frames", 86.0}, {"fps", 12.0}},
                 "clip", "themovie");
  trace.spanBegin("scene", "engine", {{"first_frame", 0.0}});
  trace.setMediaTime(0.5);
  trace.counter("clipped_fraction", "client", 0.03);
  trace.instant("backlight_switch", "client",
                {{"frame", 6.0}, {"level", 170.0}, {"gain_k", 1.4}});
  trace.clearMediaTime();
  trace.spanEnd("scene", "engine", {{"frames", 42.0}}, "reason",
                "luma_jump");
  return snapshotTrace(trace);
}

TEST(ChromeTraceJson, IsValidJson) {
  const std::string json = toChromeTraceJson(cannedSnapshot());
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
}

TEST(ChromeTraceJson, HasPerfettoShape) {
  const TraceSnapshot snap = cannedSnapshot();
  const std::string json = toChromeTraceJson(snap);
  // Top-level object with the traceEvents array + drop accounting.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":0"), std::string::npos);
  // Thread-name metadata precedes the events.
  const auto namePos = json.find("\"thread_name\"");
  ASSERT_NE(namePos, std::string::npos);
  EXPECT_LT(namePos, json.find("\"ph\":\"B\""));
  // All five phases render with their Chrome letters.
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  // Instants carry thread scope; counters carry their value arg.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":0.03"), std::string::npos);
  // The media clock travels as an arg on stamped events only.
  EXPECT_NE(json.find("\"media_t\":0.5"), std::string::npos);
  // The string arg and the numeric args all surface.
  EXPECT_NE(json.find("\"reason\":\"luma_jump\""), std::string::npos);
  EXPECT_NE(json.find("\"gain_k\":1.4"), std::string::npos);
}

TEST(ChromeTraceJson, EscapesHostileNames) {
  TraceRecorder trace;
  const char* evil = trace.intern("a\"b\\c\nd\te\rf\x01g");
  trace.nameThisThread(evil);
  trace.instant(evil, "test", {{"n", 1.0}}, evil, evil);

  const std::string json = toChromeTraceJson(snapshotTrace(trace));
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te\\rf\\u0001g"), std::string::npos);
  // No raw control bytes anywhere in the document.
  for (const char c : json) {
    if (c != '\n') EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(ChromeTraceJson, EmptySnapshotIsStillValid) {
  const TraceSnapshot empty;
  const std::string json = toChromeTraceJson(empty);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

TEST(ChromeTraceJson, DropCountSurfaces) {
  TraceConfig cfg;
  cfg.eventsPerThread = 1;
  TraceRecorder trace(cfg);
  trace.instant("kept", "test");
  trace.instant("gone", "test");
  const std::string json = toChromeTraceJson(snapshotTrace(trace));
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"droppedEvents\":1"), std::string::npos);
}

}  // namespace
}  // namespace anno::telemetry
