#include "quality/camera.h"

#include <gtest/gtest.h>

#include "display/panel.h"

namespace anno::quality {
namespace {

media::GrayImage ramp(int w = 64, int h = 48) {
  media::GrayImage img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img(x, y) = static_cast<std::uint8_t>(x * 255 / (w - 1));
    }
  }
  return img;
}

TEST(Camera, ResponseIsMonotone) {
  CameraConfig cfg;
  cfg.noiseRms = 0.0;
  cfg.vignetting = 0.0;
  CameraModel cam(cfg);
  const media::GrayImage shot = cam.capture(ramp());
  // Along the centre row, output must be non-decreasing in input.
  const int y = shot.height() / 2;
  for (int x = 1; x < shot.width(); ++x) {
    EXPECT_GE(shot(x, y), shot(x - 1, y)) << "x=" << x;
  }
}

TEST(Camera, ResponseIsNonlinear) {
  CameraConfig cfg;
  cfg.noiseRms = 0.0;
  cfg.vignetting = 0.0;
  CameraModel cam(cfg);
  media::GrayImage mid(8, 8, 128);
  const media::GrayImage shot = cam.capture(mid);
  // Gamma-style response: mid-gray maps well above 128.
  EXPECT_GT(shot(4, 4), 160);
}

TEST(Camera, LinearizeInvertsResponse) {
  CameraConfig cfg;
  cfg.noiseRms = 0.0;
  cfg.vignetting = 0.0;
  CameraModel cam(cfg);
  for (int v = 0; v <= 255; v += 15) {
    media::GrayImage patch(8, 8, static_cast<std::uint8_t>(v));
    const media::GrayImage shot = cam.capture(patch);
    EXPECT_NEAR(cam.linearize(shot(4, 4)), v / 255.0, 0.01) << "v=" << v;
  }
}

TEST(Camera, VignettingDarkensCorners) {
  CameraConfig cfg;
  cfg.noiseRms = 0.0;
  cfg.vignetting = 0.3;
  CameraModel cam(cfg);
  media::GrayImage flat(65, 65, 200);
  const media::GrayImage shot = cam.capture(flat);
  EXPECT_GT(shot(32, 32), shot(0, 0));
  EXPECT_GT(shot(32, 32), shot(64, 64));
}

TEST(Camera, NoiseIsBoundedAndSeeded) {
  CameraConfig cfg;
  cfg.noiseRms = 1.5;
  cfg.seed = 9;
  CameraModel a(cfg), b(cfg);
  media::GrayImage flat(32, 32, 100);
  const media::GrayImage sa = a.capture(flat);
  const media::GrayImage sb = b.capture(flat);
  EXPECT_EQ(sa, sb);  // deterministic for seed
}

TEST(Camera, ConfigValidation) {
  CameraConfig bad;
  bad.exposure = 0.0;
  EXPECT_THROW(CameraModel{bad}, std::invalid_argument);
  bad = CameraConfig{};
  bad.vignetting = 1.0;
  EXPECT_THROW(CameraModel{bad}, std::invalid_argument);
  bad = CameraConfig{};
  bad.noiseRms = -1.0;
  EXPECT_THROW(CameraModel{bad}, std::invalid_argument);
  CameraModel cam;
  EXPECT_THROW((void)cam.capture(media::GrayImage{}), std::invalid_argument);
}

TEST(Camera, SnapshotIncorporatesBacklight) {
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  CameraConfig cfg;
  cfg.noiseRms = 0.0;
  cfg.vignetting = 0.0;
  CameraModel cam(cfg);
  media::Image frame(16, 16, media::Rgb8{200, 200, 200});
  const media::GrayImage bright = cam.snapshot(device, frame, 255);
  const media::GrayImage dim = cam.snapshot(device, frame, 80);
  EXPECT_GT(bright(8, 8), dim(8, 8));
}

TEST(CameraMeter, TracksIdealMeterClosely) {
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  display::IdealMeter ideal;
  CameraConfig cfg;
  cfg.noiseRms = 0.5;
  CameraMeter camMeter(cfg);
  // Both meters report on their own (different) scales; compare ratios.
  const double idealRatio = ideal.measure(device, 255, 128) /
                            ideal.measure(device, 255, 255);
  const double camRatio = camMeter.measure(device, 255, 128) /
                          camMeter.measure(device, 255, 255);
  EXPECT_NEAR(camRatio, idealRatio, 0.05);
}

TEST(ResponseRecovery, RecoversConfiguredGamma) {
  // Debevec-Malik-style multi-exposure recovery should find the camera's
  // response exponent without reading its configuration.
  for (double trueGamma : {1.8, 2.2, 2.6}) {
    CameraConfig cfg;
    cfg.responseGamma = trueGamma;
    cfg.noiseRms = 0.4;
    cfg.vignetting = 0.1;
    CameraModel cam(cfg);
    // Mid-gray gradient patch.
    media::GrayImage patch(48, 48);
    for (int y = 0; y < 48; ++y) {
      for (int x = 0; x < 48; ++x) {
        patch(x, y) = static_cast<std::uint8_t>(60 + 3 * x);
      }
    }
    const ResponseRecovery r =
        recoverResponse(cam, patch, {0.25, 0.5, 1.0});
    EXPECT_NEAR(r.gamma, trueGamma, 0.12) << "true gamma " << trueGamma;
    EXPECT_GT(r.samplesUsed, 100);
    EXPECT_LT(r.rmsResidual, 0.2);
  }
}

TEST(ResponseRecovery, Validation) {
  CameraModel cam;
  media::GrayImage patch(16, 16, 128);
  EXPECT_THROW((void)recoverResponse(cam, patch, {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)recoverResponse(cam, media::GrayImage{}, {0.5, 1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)recoverResponse(cam, patch, {0.0, 1.0}),
               std::invalid_argument);
  // All-black patch: no usable samples.
  media::GrayImage black(16, 16, 0);
  EXPECT_THROW((void)recoverResponse(cam, black, {0.5, 1.0}),
               std::runtime_error);
}

TEST(CameraMeter, PatchSizeValidation) {
  EXPECT_THROW(CameraMeter(CameraConfig{}, 4), std::invalid_argument);
}

}  // namespace
}  // namespace anno::quality
