#include "quality/validate.h"

#include <gtest/gtest.h>

#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "media/clipgen.h"
#include "media/luminance.h"

namespace anno::quality {
namespace {

/// A dark frame with sparse highlights: the paper's favourable case.
media::Image darkFrame() {
  media::SceneSpec scene;
  scene.backgroundLuma = 55;
  scene.backgroundSpread = 25;
  scene.highlightFraction = 0.004;
  scene.highlightLuma = 245;
  media::SplitMix64 rng(7);
  return renderSceneFrame(scene, 96, 72, 0.0, rng);
}

TEST(Validate, CompensatedFramePassesAtModerateDimming) {
  // Fig. 2 / Fig. 4: original at full backlight vs compensated at reduced
  // backlight should be near-indistinguishable through the camera.
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  const media::Image original = darkFrame();

  // Plan for 5% clipping: the paper's "virtually unnoticeable" level.
  const compensate::CompensationPlan plan = compensate::planForHistogram(
      device, media::Histogram::ofImage(original), 0.05);
  ASSERT_LT(plan.backlightLevel, 200) << "dark frame should allow dimming";
  const media::Image compensated =
      compensate::contrastEnhance(original, plan.gainK);

  CameraModel camera;
  const ValidationReport report = validateCompensation(
      device, camera, original, compensated, plan.backlightLevel);
  EXPECT_TRUE(report.pass) << toString(report.comparison);
  EXPECT_LT(report.comparison.averagePointShift, 10.0);
}

TEST(Validate, UncompensatedDimmingFails) {
  // Dimming without compensation visibly darkens the image: the validator
  // must flag it.
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  const media::Image original = darkFrame();
  CameraModel camera;
  const ValidationReport report =
      validateCompensation(device, camera, original, original, 60);
  EXPECT_FALSE(report.pass) << toString(report.comparison);
  // The dimmed shot's histogram sits lower: average point shifts down.
  EXPECT_LT(report.compensatedHistogram.averagePoint(),
            report.referenceHistogram.averagePoint());
}

TEST(Validate, FullBacklightIdentityPasses) {
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  const media::Image original = darkFrame();
  CameraModel camera;
  const ValidationReport report =
      validateCompensation(device, camera, original, original, 255);
  EXPECT_TRUE(report.pass) << toString(report.comparison);
}

TEST(Validate, ReportCarriesBacklightLevel) {
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  const media::Image original = darkFrame();
  CameraModel camera;
  const ValidationReport report =
      validateCompensation(device, camera, original, original, 123);
  EXPECT_EQ(report.backlightLevel, 123);
}

}  // namespace
}  // namespace anno::quality
