#include "quality/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "media/rng.h"

namespace anno::quality {
namespace {

media::GrayImage noisy(std::uint64_t seed, int w = 16, int h = 16) {
  media::SplitMix64 rng(seed);
  media::GrayImage img(w, h);
  for (auto& p : img.pixels()) {
    p = static_cast<std::uint8_t>(rng.below(256));
  }
  return img;
}

TEST(Mse, IdenticalIsZero) {
  const media::GrayImage a = noisy(1);
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
  EXPECT_DOUBLE_EQ(psnr(a, a), 99.0);
}

TEST(Mse, KnownDifference) {
  media::GrayImage a(2, 2, 10), b(2, 2, 13);
  EXPECT_DOUBLE_EQ(mse(a, b), 9.0);
}

TEST(Mse, SizeMismatchThrows) {
  media::GrayImage a(2, 2), b(3, 2);
  EXPECT_THROW((void)mse(a, b), std::invalid_argument);
  EXPECT_THROW((void)mse(media::GrayImage{}, media::GrayImage{}),
               std::invalid_argument);
}

TEST(Psnr, DecreasesWithError) {
  media::GrayImage ref(8, 8, 100);
  media::GrayImage small(8, 8, 102), big(8, 8, 130);
  EXPECT_GT(psnr(ref, small), psnr(ref, big));
}

TEST(Psnr, RgbOverloadUsesLuma) {
  media::Image a(4, 4, media::Rgb8{100, 100, 100});
  media::Image b(4, 4, media::Rgb8{110, 110, 110});
  EXPECT_NEAR(mse(a, b), 100.0, 1e-9);
  EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0), 0.01);
}

TEST(Ssim, IdenticalIsOne) {
  const media::GrayImage a = noisy(5, 32, 32);
  EXPECT_NEAR(ssim(a, a), 1.0, 1e-12);
}

TEST(Ssim, DecreasesWithDistortion) {
  // Structured (smooth gradient) reference: additive noise erodes the
  // structure term.  (Pure-noise references defeat SSIM -- any noise
  // correlates with more noise.)
  media::GrayImage ref(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      ref(x, y) = static_cast<std::uint8_t>(x * 255 / 31);
    }
  }
  media::GrayImage mild = ref, severe = ref;
  media::SplitMix64 rng(7);
  for (auto& p : mild.pixels()) {
    p = static_cast<std::uint8_t>(
        std::clamp<int>(p + static_cast<int>(rng.between(-5, 5)), 0, 255));
  }
  for (auto& p : severe.pixels()) {
    p = static_cast<std::uint8_t>(
        std::clamp<int>(p + static_cast<int>(rng.between(-60, 60)), 0, 255));
  }
  const double sMild = ssim(ref, mild);
  const double sSevere = ssim(ref, severe);
  EXPECT_GT(sMild, sSevere);
  EXPECT_GT(sMild, 0.8);
  EXPECT_LT(sSevere, 0.7);
}

TEST(Ssim, PenalizesStructureLossMoreThanBrightnessShift) {
  // A uniform +10 brightness shift keeps structure (high SSIM); replacing
  // the content with its mean destroys structure (low SSIM) even though
  // both have similar MSE on this content.
  const media::GrayImage ref = noisy(8, 32, 32);
  media::GrayImage shifted = ref;
  for (auto& p : shifted.pixels()) {
    p = static_cast<std::uint8_t>(std::min(255, p + 10));
  }
  double mean = 0.0;
  for (auto p : ref.pixels()) mean += p;
  mean /= static_cast<double>(ref.pixelCount());
  media::GrayImage flat(32, 32, static_cast<std::uint8_t>(mean));
  EXPECT_GT(ssim(ref, shifted), ssim(ref, flat) + 0.3);
}

TEST(Ssim, SymmetricAndBounded) {
  const media::GrayImage a = noisy(9, 24, 24);
  const media::GrayImage b = noisy(10, 24, 24);
  EXPECT_NEAR(ssim(a, b), ssim(b, a), 1e-12);
  EXPECT_GE(ssim(a, b), -1.0);
  EXPECT_LE(ssim(a, b), 1.0);
}

TEST(Ssim, Validation) {
  media::GrayImage tiny(4, 4, 10);
  EXPECT_THROW((void)ssim(tiny, tiny), std::invalid_argument);
  media::GrayImage a(16, 16), b(24, 16);
  EXPECT_THROW((void)ssim(a, b), std::invalid_argument);
}

TEST(Ssim, RgbOverload) {
  media::Image a(16, 16, media::Rgb8{120, 60, 30});
  EXPECT_NEAR(ssim(a, a), 1.0, 1e-12);
}

TEST(CompareHistograms, IdenticalIsClean) {
  media::Histogram h;
  h.add(100, 50);
  h.add(150, 50);
  const HistogramComparison c = compareHistograms(h, h);
  EXPECT_DOUBLE_EQ(c.averagePointShift, 0.0);
  EXPECT_DOUBLE_EQ(c.dynamicRangeChange, 0.0);
  EXPECT_DOUBLE_EQ(c.intersection, 1.0);
  EXPECT_DOUBLE_EQ(c.earthMovers, 0.0);
  EXPECT_TRUE(acceptable(c));
}

TEST(CompareHistograms, ShiftDetected) {
  media::Histogram a, b;
  a.add(100, 100);
  b.add(140, 100);
  const HistogramComparison c = compareHistograms(a, b);
  EXPECT_NEAR(c.averagePointShift, 40.0, 1e-9);
  EXPECT_NEAR(c.earthMovers, 40.0, 1e-9);
  EXPECT_FALSE(acceptable(c));
}

TEST(CompareHistograms, DynamicRangeChangeDetected) {
  media::Histogram narrow, wide;
  for (int v = 120; v <= 135; ++v) narrow.add(static_cast<std::uint8_t>(v), 10);
  for (int v = 60; v <= 195; ++v) wide.add(static_cast<std::uint8_t>(v), 10);
  const HistogramComparison c = compareHistograms(narrow, wide);
  EXPECT_GT(c.dynamicRangeChange, 100.0);
}

TEST(Acceptable, ThresholdsAreRespected) {
  HistogramComparison c;
  c.averagePointShift = 5.0;
  c.earthMovers = 5.0;
  c.intersection = 0.9;
  EXPECT_TRUE(acceptable(c));
  QualityThresholds strict;
  strict.maxAveragePointShift = 1.0;
  EXPECT_FALSE(acceptable(c, strict));
  c.intersection = 0.1;
  EXPECT_FALSE(acceptable(c));
}

TEST(ToString, MentionsAllFields) {
  HistogramComparison c;
  c.averagePointShift = 1.5;
  const std::string s = toString(c);
  EXPECT_NE(s.find("avgShift"), std::string::npos);
  EXPECT_NE(s.find("intersection"), std::string::npos);
  EXPECT_NE(s.find("emd"), std::string::npos);
}

}  // namespace
}  // namespace anno::quality
