#include "stream/session_sim.h"

#include <gtest/gtest.h>

#include "media/clipgen.h"

namespace anno::stream {
namespace {

struct Rig {
  media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kOfficeXp, 0.08, 48, 36);
  media::EncodedClip encoded = media::encodeClip(clip, {75, 12, 1.5});
  Link wifi = makeReferencePath().lastHop();

  /// Average stream bitrate in bits/s.
  [[nodiscard]] double bitrate() const {
    return static_cast<double>(encoded.totalBytes()) * 8.0 /
           clip.durationSeconds();
  }
};

TEST(BandwidthTrace, ConstantAndValidation) {
  const BandwidthTrace t = BandwidthTrace::constant(5e6);
  EXPECT_DOUBLE_EQ(t.at(0.0), 5e6);
  EXPECT_DOUBLE_EQ(t.at(100.0), 5e6);
  EXPECT_THROW((void)BandwidthTrace::constant(0.0), std::invalid_argument);
}

TEST(BandwidthTrace, PeriodicDipShape) {
  const BandwidthTrace t =
      BandwidthTrace::periodicDip(10e6, 1e6, 1.0, 0.2);
  EXPECT_DOUBLE_EQ(t.at(0.05), 1e6);   // inside the dip
  EXPECT_DOUBLE_EQ(t.at(0.5), 10e6);   // outside
  EXPECT_DOUBLE_EQ(t.at(1.05), 1e6);   // next period's dip
  EXPECT_THROW((void)BandwidthTrace::periodicDip(10e6, 1e6, 1.0, 2.0),
               std::invalid_argument);
}

TEST(BandwidthTrace, RandomWalkBoundedAndDeterministic) {
  const BandwidthTrace a =
      BandwidthTrace::randomWalk(8e6, 0.2, 42, 0.1, 20.0);
  const BandwidthTrace b =
      BandwidthTrace::randomWalk(8e6, 0.2, 42, 0.1, 20.0);
  for (double t = 0.0; t < 20.0; t += 0.5) {
    EXPECT_DOUBLE_EQ(a.at(t), b.at(t));
    EXPECT_GE(a.at(t), 0.8e6);
    EXPECT_LE(a.at(t), 16e6);
  }
}

TEST(SessionSim, AmpleBandwidthPlaysCleanly) {
  Rig rig;
  const BandwidthTrace bw = BandwidthTrace::constant(rig.bitrate() * 10.0);
  const SessionSimResult r = simulateSession(rig.encoded, rig.wifi, bw);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.rebufferEvents, 0u);
  EXPECT_LT(r.startupDelaySeconds, 1.0);
}

TEST(SessionSim, StarvedLinkStallsButCompletes) {
  Rig rig;
  // Link carries only ~60% of the stream bitrate: stalls are inevitable,
  // but the session must still complete (it just takes longer).
  const BandwidthTrace bw = BandwidthTrace::constant(rig.bitrate() * 0.6);
  const SessionSimResult r = simulateSession(rig.encoded, rig.wifi, bw);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.rebufferEvents, 0u);
  EXPECT_GT(r.sessionSeconds, rig.clip.durationSeconds() * 1.3);
}

TEST(SessionSim, PeriodicDipsCauseBoundedStalls) {
  Rig rig;
  const BandwidthTrace bw = BandwidthTrace::periodicDip(
      rig.bitrate() * 3.0, rig.bitrate() * 0.05, 2.0, 1.0);
  SessionSimConfig cfg;
  cfg.startupBufferSeconds = 0.25;
  cfg.bufferCapacitySeconds = 1.0;  // small buffer: dips hurt
  const SessionSimResult r =
      simulateSession(rig.encoded, rig.wifi, bw, cfg);
  EXPECT_TRUE(r.completed);
  // A LARGER buffer must absorb the same dips at least as well.
  SessionSimConfig big = cfg;
  big.bufferCapacitySeconds = 6.0;
  const SessionSimResult rBig =
      simulateSession(rig.encoded, rig.wifi, bw, big);
  EXPECT_LE(rBig.rebufferTotalSeconds, r.rebufferTotalSeconds + 1e-9);
}

TEST(SessionSim, BufferCapacityRespected) {
  Rig rig;
  SessionSimConfig cfg;
  cfg.bufferCapacitySeconds = 2.0;
  const BandwidthTrace bw = BandwidthTrace::constant(rig.bitrate() * 20.0);
  const SessionSimResult r =
      simulateSession(rig.encoded, rig.wifi, bw, cfg);
  // One frame of slack allowed (delivery completes a frame mid-tick).
  EXPECT_LE(r.maxBufferSeconds, cfg.bufferCapacitySeconds + 0.2);
}

TEST(SessionSim, PreambleDelaysStartupProportionally) {
  Rig rig;
  const BandwidthTrace bw = BandwidthTrace::constant(rig.bitrate() * 4.0);
  SessionSimConfig noAnno;
  SessionSimConfig withAnno;
  withAnno.preambleBytes = 100;  // an annotation track's worth
  SessionSimConfig huge;
  huge.preambleBytes = 500000;  // what shipping raw per-frame data would cost
  const double t0 =
      simulateSession(rig.encoded, rig.wifi, bw, noAnno).startupDelaySeconds;
  const double tAnno =
      simulateSession(rig.encoded, rig.wifi, bw, withAnno)
          .startupDelaySeconds;
  const double tHuge =
      simulateSession(rig.encoded, rig.wifi, bw, huge).startupDelaySeconds;
  EXPECT_NEAR(tAnno, t0, 0.05) << "annotations must not delay startup";
  EXPECT_GT(tHuge, t0 + 0.2) << "a bulky side channel WOULD delay startup";
}

TEST(SessionSim, AnnotationNackRecoveryHoldsStartupByWholeRtts) {
  Rig rig;
  const BandwidthTrace bw = BandwidthTrace::constant(rig.bitrate() * 4.0);
  SessionSimConfig cfg;
  cfg.preambleBytes = 3000;
  cfg.annotationBytes = 3000;  // a few packets on the 1500-byte MTU hop
  cfg.annotationDelivery.nackEnabled = true;
  cfg.annotationDelivery.rttSeconds = 0.08;

  // Reference: identical session, lossless annotation channel.
  const SessionSimResult clean =
      simulateSession(rig.encoded, rig.wifi, bw, cfg);
  EXPECT_EQ(clean.annotationPacketsLost, 0u);
  EXPECT_TRUE(clean.annotationDeliveredIntact);

  // Find a seed that actually loses an annotation packet, then check the
  // NACK recovery cost surfaces as whole-RTT startup delay.
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    SessionSimConfig lossy = cfg;
    lossy.annotationDelivery.channel = {0.5, seed};
    const SessionSimResult r =
        simulateSession(rig.encoded, rig.wifi, bw, lossy);
    if (r.annotationPacketsLost == 0) continue;
    found = true;
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.annotationDeliveredIntact) << "NACK must recover";
    EXPECT_GT(r.annotationRetransmits, 0u);
    EXPECT_GE(r.annotationNackRounds, 1u);
    EXPECT_GE(r.startupDelaySeconds,
              clean.startupDelaySeconds +
                  static_cast<double>(r.annotationNackRounds) *
                      lossy.annotationDelivery.rttSeconds -
                  0.01);
  }
  EXPECT_TRUE(found) << "50% loss never hit an annotation packet in 10 seeds";
}

TEST(SessionSim, AnnotationLossWithoutNackStaysLostButDoesNotStall) {
  Rig rig;
  const BandwidthTrace bw = BandwidthTrace::constant(rig.bitrate() * 4.0);
  SessionSimConfig cfg;
  cfg.preambleBytes = 3000;
  cfg.annotationBytes = 3000;
  cfg.annotationDelivery.nackEnabled = false;

  const SessionSimResult clean =
      simulateSession(rig.encoded, rig.wifi, bw, cfg);
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    SessionSimConfig lossy = cfg;
    lossy.annotationDelivery.channel = {0.5, seed};
    const SessionSimResult r =
        simulateSession(rig.encoded, rig.wifi, bw, lossy);
    if (r.annotationPacketsLost == 0) continue;
    found = true;
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.annotationDeliveredIntact)
        << "without NACK the loss must surface to the client";
    EXPECT_EQ(r.annotationRetransmits, 0u);
    EXPECT_EQ(r.annotationNackRounds, 0u);
    // No recovery, no head-of-line hold: startup is unaffected.
    EXPECT_NEAR(r.startupDelaySeconds, clean.startupDelaySeconds, 0.01);
  }
  EXPECT_TRUE(found);
}

TEST(SessionSim, AnnotationChannelDefaultsAreInert) {
  // Default config (no annotation bytes on the lossy channel) must behave
  // exactly as before the robustness work.
  Rig rig;
  const BandwidthTrace bw = BandwidthTrace::constant(rig.bitrate() * 4.0);
  const SessionSimResult r = simulateSession(rig.encoded, rig.wifi, bw);
  EXPECT_EQ(r.annotationPacketsLost, 0u);
  EXPECT_EQ(r.annotationRetransmits, 0u);
  EXPECT_EQ(r.annotationNackRounds, 0u);
  EXPECT_TRUE(r.annotationDeliveredIntact);
}

TEST(SessionSim, Validation) {
  Rig rig;
  const BandwidthTrace bw = BandwidthTrace::constant(1e6);
  media::EncodedClip empty;
  EXPECT_THROW((void)simulateSession(empty, rig.wifi, bw),
               std::invalid_argument);
  SessionSimConfig bad;
  bad.tickSeconds = 0.0;
  EXPECT_THROW((void)simulateSession(rig.encoded, rig.wifi, bw, bad),
               std::invalid_argument);
  bad = SessionSimConfig{};
  bad.bufferCapacitySeconds = bad.startupBufferSeconds;
  EXPECT_THROW((void)simulateSession(rig.encoded, rig.wifi, bw, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace anno::stream
