#include "stream/server.h"

#include <gtest/gtest.h>

#include "core/runtime.h"
#include "media/clipgen.h"
#include "media/luminance.h"
#include "stream/mux.h"

namespace anno::stream {
namespace {

ClientCapabilities ipaqCaps(std::size_t quality = 2) {
  const display::DeviceModel d =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  return ClientCapabilities{d.name, d.transfer, quality};
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.addClip(
        media::generatePaperClip(media::PaperClip::kCatwoman, 0.03, 32, 24));
    server_.addClip(
        media::generatePaperClip(media::PaperClip::kOfficeXp, 0.03, 32, 24));
  }
  MediaServer server_;
};

TEST_F(ServerTest, CatalogListsClips) {
  const auto names = server_.catalog();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_TRUE(server_.hasClip("catwoman"));
  EXPECT_TRUE(server_.hasClip("officexp"));
  EXPECT_FALSE(server_.hasClip("nope"));
}

TEST_F(ServerTest, EntryHasValidTrack) {
  const CatalogEntry& e = server_.entry("catwoman");
  EXPECT_NO_THROW(core::validateTrack(e.track));
  EXPECT_EQ(e.track.frameCount, e.original.frames.size());
}

TEST_F(ServerTest, ServeProducesAnnotatedStream) {
  const auto bytes = server_.serve("catwoman", ipaqCaps());
  const DemuxedStream d = demux(bytes);
  ASSERT_TRUE(d.annotations.has_value());
  EXPECT_EQ(d.video.frames.size(),
            server_.entry("catwoman").original.frames.size());
}

TEST_F(ServerTest, ServedFramesAreCompensated) {
  // Dark scenes in the served stream must be brighter than the original
  // (the server applied the contrast gain).
  const auto bytes = server_.serve("catwoman", ipaqCaps(2));
  const DemuxedStream d = demux(bytes);
  const media::VideoClip served = media::decodeClip(d.video);
  const media::VideoClip& orig = server_.entry("catwoman").original;
  double servedMean = 0.0, origMean = 0.0;
  for (std::size_t i = 0; i < orig.frames.size(); i += 5) {
    servedMean += media::analyzeLuminance(served.frames[i]).meanLuma;
    origMean += media::analyzeLuminance(orig.frames[i]).meanLuma;
  }
  EXPECT_GT(servedMean, origMean * 1.1);
}

TEST_F(ServerTest, ServeRawHasNoAnnotations) {
  const auto bytes = server_.serveRaw("officexp");
  const DemuxedStream d = demux(bytes);
  EXPECT_FALSE(d.annotations.has_value());
}

TEST_F(ServerTest, UnknownClipThrows) {
  EXPECT_THROW((void)server_.serve("nope", ipaqCaps()), std::out_of_range);
  EXPECT_THROW((void)server_.serveRaw("nope"), std::out_of_range);
  EXPECT_THROW((void)server_.entry("nope"), std::out_of_range);
}

TEST_F(ServerTest, BadQualityIndexThrows) {
  EXPECT_THROW((void)server_.serve("catwoman", ipaqCaps(99)),
               std::out_of_range);
}

TEST_F(ServerTest, BadQualityIndexMessageReportsRequestedAndAvailable) {
  // A fleet operator debugging a misconfigured tenant needs the message to
  // say what was asked for AND what the track offers.
  try {
    (void)server_.serve("catwoman", ipaqCaps(99));
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("quality index 99"), std::string::npos) << msg;
    EXPECT_NE(msg.find("5 level(s) offered"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[0, 4]"), std::string::npos) << msg;
  }
}

TEST_F(ServerTest, TenantServeBadQualityIndexChecksTenantLadder) {
  // The tenant overload must validate against the TENANT's quality ladder,
  // not the server default's.
  core::AnnotatorConfig tenant;
  tenant.qualityLevels = {0.0, 0.1};  // 2 levels
  try {
    (void)server_.serve("catwoman", ipaqCaps(2), tenant);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("quality index 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 level(s) offered"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[0, 1]"), std::string::npos) << msg;
  }
}

TEST_F(ServerTest, UnknownClipMessageNamesTheClip) {
  try {
    (void)server_.serve("not-in-catalog", ipaqCaps());
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("not-in-catalog"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ServerTest, NegativePathsLeaveCatalogServable) {
  // Failed serves must not corrupt server state: the same clip still
  // serves, and the memo cache still works.
  EXPECT_THROW((void)server_.serve("catwoman", ipaqCaps(99)),
               std::out_of_range);
  EXPECT_THROW((void)server_.serve("nope", ipaqCaps()), std::out_of_range);
  const auto a = server_.serve("catwoman", ipaqCaps(2));
  const auto b = server_.serve("catwoman", ipaqCaps(2));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST_F(ServerTest, ReAddReplacesClip) {
  media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kCatwoman, 0.01, 32, 24);
  const std::size_t newCount = clip.frames.size();
  server_.addClip(std::move(clip));
  EXPECT_EQ(server_.entry("catwoman").original.frames.size(), newCount);
}

TEST(Server, RejectsInvalidClip) {
  MediaServer server;
  media::VideoClip bad;
  bad.name = "bad";
  EXPECT_THROW(server.addClip(std::move(bad)), std::invalid_argument);
}

TEST_F(ServerTest, EmissiveClientGetsUncompensatedPixels) {
  // OLED negotiation: the server must NOT brighten pixels for an emissive
  // client (that would raise its power) -- it gets original pixels plus
  // the annotations.
  ClientCapabilities oledCaps = ipaqCaps(2);
  oledCaps.technology = DisplayTechnology::kEmissive;
  const auto bytes = server_.serve("catwoman", oledCaps);
  const DemuxedStream d = demux(bytes);
  ASSERT_TRUE(d.annotations.has_value());
  const media::VideoClip served = media::decodeClip(d.video);
  const media::VideoClip& orig = server_.entry("catwoman").original;
  for (std::size_t i = 0; i < orig.frames.size(); i += 9) {
    const double meanServed =
        media::analyzeLuminance(served.frames[i]).meanLuma;
    const double meanOrig = media::analyzeLuminance(orig.frames[i]).meanLuma;
    EXPECT_NEAR(meanServed, meanOrig, 4.0) << "frame " << i;
  }
}

TEST(Server, TechnologySurvivesWireRoundtrip) {
  ClientCapabilities caps = ipaqCaps(1);
  caps.technology = DisplayTechnology::kEmissive;
  const ClientCapabilities decoded =
      decodeCapabilities(encodeCapabilities(caps));
  EXPECT_EQ(decoded.technology, DisplayTechnology::kEmissive);
}

TEST(Server, CapabilitiesWireRoundtrip) {
  const ClientCapabilities caps = ipaqCaps(3);
  const auto bytes = encodeCapabilities(caps);
  // Name + quality + 256 x u16 LUT: compact, sent once per session.
  EXPECT_LT(bytes.size(), 560u);
  const ClientCapabilities decoded = decodeCapabilities(bytes);
  EXPECT_EQ(decoded.deviceName, caps.deviceName);
  EXPECT_EQ(decoded.qualityIndex, caps.qualityIndex);
  for (int level = 0; level < 256; ++level) {
    EXPECT_NEAR(decoded.transfer.relLuminance(level),
                caps.transfer.relLuminance(level), 2e-5)
        << "level " << level;
  }
}

TEST(Server, CapabilitiesDecodedOverWireServeIdentically) {
  // Serving against the wire-decoded capabilities must pick the same
  // backlight levels as serving against the in-memory original.
  MediaServer server;
  server.addClip(
      media::generatePaperClip(media::PaperClip::kIRobot, 0.02, 32, 24));
  const ClientCapabilities caps = ipaqCaps(2);
  const ClientCapabilities wire =
      decodeCapabilities(encodeCapabilities(caps));
  const core::AnnotationTrack& track = server.entry("i_robot").track;
  const core::BacklightSchedule a =
      core::buildSchedule(track, 2, deviceFromCapabilities(caps));
  const core::BacklightSchedule b =
      core::buildSchedule(track, 2, deviceFromCapabilities(wire));
  ASSERT_EQ(a.commands.size(), b.commands.size());
  for (std::size_t i = 0; i < a.commands.size(); ++i) {
    EXPECT_EQ(a.commands[i].level, b.commands[i].level);
  }
}

TEST(Server, CapabilitiesRejectMalformed) {
  std::vector<std::uint8_t> junk = {1, 2, 3, 4};
  EXPECT_THROW((void)decodeCapabilities(junk), std::runtime_error);
  auto bytes = encodeCapabilities(ipaqCaps());
  bytes.resize(bytes.size() / 2);
  EXPECT_ANY_THROW((void)decodeCapabilities(bytes));
}

TEST(Server, DeviceFromCapabilitiesCarriesTransfer) {
  const ClientCapabilities caps = ipaqCaps();
  const display::DeviceModel d = deviceFromCapabilities(caps);
  EXPECT_EQ(d.name, "ipaq5555");
  for (int level = 0; level < 256; level += 51) {
    EXPECT_DOUBLE_EQ(d.transfer.relLuminance(level),
                     caps.transfer.relLuminance(level));
  }
}

}  // namespace
}  // namespace anno::stream
