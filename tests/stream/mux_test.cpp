#include "stream/mux.h"

#include <gtest/gtest.h>

#include "core/anno_codec.h"
#include "core/annotate.h"
#include "media/clipgen.h"
#include "media/codec.h"

namespace anno::stream {
namespace {

struct Fixture {
  media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kOfficeXp, 0.06, 48, 36);
  media::EncodedClip encoded = media::encodeClip(clip, {70});
  core::AnnotationTrack track = core::annotateClip(clip);
};

TEST(Mux, RoundtripWithAnnotations) {
  Fixture f;
  const auto bytes = mux(f.encoded, &f.track);
  const DemuxedStream d = demux(bytes);
  EXPECT_EQ(d.video.name, f.encoded.name);
  EXPECT_EQ(d.video.frames.size(), f.encoded.frames.size());
  ASSERT_TRUE(d.annotations.has_value());
  EXPECT_EQ(*d.annotations, f.track);
}

TEST(Mux, RoundtripWithComplexityTrack) {
  Fixture f;
  const power::ComplexityTrack complexity =
      power::ComplexityTrack::fromEncodedClip(f.encoded);
  const auto bytes = mux(f.encoded, &f.track, &complexity);
  const DemuxedStream d = demux(bytes);
  ASSERT_TRUE(d.complexity.has_value());
  ASSERT_EQ(d.complexity->frameMegacycles.size(),
            complexity.frameMegacycles.size());
  for (std::size_t i = 0; i < complexity.frameMegacycles.size(); ++i) {
    EXPECT_NEAR(d.complexity->frameMegacycles[i],
                complexity.frameMegacycles[i], 0.01);
  }
}

TEST(Mux, ComplexityAbsentWhenNotMuxed) {
  Fixture f;
  const DemuxedStream d = demux(mux(f.encoded, &f.track));
  EXPECT_FALSE(d.complexity.has_value());
}

TEST(Mux, RoundtripWithoutAnnotations) {
  Fixture f;
  const auto bytes = mux(f.encoded, nullptr);
  const DemuxedStream d = demux(bytes);
  EXPECT_FALSE(d.annotations.has_value());
  EXPECT_EQ(d.video.frames.size(), f.encoded.frames.size());
}

TEST(Mux, BadMagicThrows) {
  std::vector<std::uint8_t> junk = {9, 9, 9, 9, 9};
  EXPECT_THROW((void)demux(junk), std::runtime_error);
}

TEST(Mux, MissingVideoSectionThrows) {
  // A container with only an annotation section.
  Fixture f;
  auto full = mux(f.encoded, &f.track);
  // Build manually: magic + annotation section only.
  const auto annoBytes = core::encodeTrack(f.track);
  std::vector<std::uint8_t> bytes = {0x30, 0x58, 0x55, 0x4D};  // "MUX0" LE
  bytes.push_back(2);  // annotation section id
  // varint length (annotation tracks here are < 2^14)
  std::size_t len = annoBytes.size();
  while (len >= 0x80) {
    bytes.push_back(static_cast<std::uint8_t>(len) | 0x80);
    len >>= 7;
  }
  bytes.push_back(static_cast<std::uint8_t>(len));
  bytes.insert(bytes.end(), annoBytes.begin(), annoBytes.end());
  EXPECT_THROW((void)demux(bytes), std::runtime_error);
}

TEST(Mux, UnknownSectionSkipped) {
  Fixture f;
  auto bytes = mux(f.encoded, &f.track);
  // Append an unknown section (id 99, 3 payload bytes).
  bytes.push_back(99);
  bytes.push_back(3);
  bytes.insert(bytes.end(), {1, 2, 3});
  const DemuxedStream d = demux(bytes);
  EXPECT_TRUE(d.annotations.has_value());
}

TEST(Mux, TruncationThrows) {
  Fixture f;
  auto bytes = mux(f.encoded, &f.track);
  bytes.resize(bytes.size() - 10);
  EXPECT_ANY_THROW((void)demux(bytes));
}

TEST(Mux, AnnotationOverheadTiny) {
  // The paper's headline overhead claim: annotations are a vanishing
  // fraction of the stream.
  Fixture f;
  const MuxSizeReport report = measureMux(f.encoded, &f.track);
  EXPECT_GT(report.videoBytes, 0u);
  EXPECT_GT(report.annotationBytes, 0u);
  EXPECT_LT(report.annotationOverhead(), 0.01);
  EXPECT_EQ(report.totalBytes,
            mux(f.encoded, &f.track).size());
}

}  // namespace
}  // namespace anno::stream
