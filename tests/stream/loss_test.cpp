#include "stream/loss.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/anno_codec.h"
#include "core/runtime.h"
#include "display/device.h"
#include "media/clipgen.h"
#include "quality/metrics.h"

namespace anno::stream {
namespace {

struct Rig {
  media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kCatwoman, 0.04, 48, 36);
  Link wifi = makeReferencePath().lastHop();
};

TEST(Loss, ZeroLossDeliversEverything) {
  Rig rig;
  const media::EncodedClip enc = media::encodeClip(rig.clip, {75, 8, 1.5});
  const auto deliveries = deliverFrames(enc, rig.wifi, {0.0});
  for (const FrameDelivery& d : deliveries) {
    EXPECT_TRUE(d.intact);
    EXPECT_EQ(d.packetsLost, 0u);
  }
  const ConcealedPlayback out = decodeWithConcealment(enc, deliveries);
  EXPECT_EQ(out.concealedFrames, 0u);
  EXPECT_EQ(out.intactFrames, rig.clip.frames.size());
  // Identical to the plain decode path.
  const media::VideoClip plain = media::decodeClip(enc);
  for (std::size_t i = 0; i < plain.frames.size(); i += 7) {
    EXPECT_EQ(out.video.frames[i], plain.frames[i]) << "frame " << i;
  }
}

TEST(Loss, DeliveryIsDeterministic) {
  Rig rig;
  const media::EncodedClip enc = media::encodeClip(rig.clip, {75, 8, 1.5});
  const auto a = deliverFrames(enc, rig.wifi, {0.05, 99});
  const auto b = deliverFrames(enc, rig.wifi, {0.05, 99});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].intact, b[i].intact);
  }
}

TEST(Loss, IntraOnlyLimitsDamageToLostFrames) {
  Rig rig;
  const media::EncodedClip intra = media::encodeClip(rig.clip, {75, 1, 1.5});
  const auto deliveries = deliverFrames(intra, rig.wifi, {0.03, 7});
  std::size_t lostFrames = 0;
  for (const FrameDelivery& d : deliveries) {
    if (!d.intact) ++lostFrames;
  }
  const ConcealedPlayback out = decodeWithConcealment(intra, deliveries);
  EXPECT_EQ(out.concealedFrames, lostFrames)
      << "intra-only: no propagation beyond the lost frames themselves";
}

TEST(Loss, InterCodingPropagatesUntilNextIntra) {
  Rig rig;
  const media::EncodedClip gop = media::encodeClip(rig.clip, {75, 12, 1.5});
  const auto deliveries = deliverFrames(gop, rig.wifi, {0.03, 7});
  std::size_t lostFrames = 0;
  for (const FrameDelivery& d : deliveries) {
    if (!d.intact) ++lostFrames;
  }
  if (lostFrames == 0) GTEST_SKIP() << "no losses at this seed";
  const ConcealedPlayback out = decodeWithConcealment(gop, deliveries);
  EXPECT_GT(out.concealedFrames, lostFrames)
      << "a lost frame must damage the P frames chained on it";
}

TEST(Loss, QualityDegradesMeasurablyWithLossRate) {
  Rig rig;
  const media::EncodedClip enc = media::encodeClip(rig.clip, {75, 8, 1.5});
  const auto meanPsnr = [&](double loss) {
    const ConcealedPlayback out = decodeWithConcealment(
        enc, deliverFrames(enc, rig.wifi, {loss, 3}));
    double sum = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < rig.clip.frames.size(); i += 5) {
      sum += quality::psnr(rig.clip.frames[i], out.video.frames[i]);
      ++n;
    }
    return sum / n;
  };
  const double clean = meanPsnr(0.0);
  const double lossy = meanPsnr(0.10);
  // Concealment (repeat-last-good) is gentle on slow content, but 10%
  // packet loss must still cost measurable fidelity.
  EXPECT_LT(lossy, clean - 0.3);
}

// ---------------------------------------------------------------------------
// Annotation-packet delivery (NACK/retransmit + erasure degradation).
// ---------------------------------------------------------------------------

core::AnnotationTrack lossTestTrack() {
  core::AnnotationTrack t;
  t.clipName = "loss_rig";
  t.fps = 15.0;
  t.granularity = core::Granularity::kPerScene;
  t.qualityLevels = {0.0, 0.05, 0.10};
  std::uint32_t start = 0;
  for (int i = 0; i < 40; ++i) {
    core::SceneAnnotation s;
    s.span.firstFrame = start;
    s.span.frameCount = 25 + static_cast<std::uint32_t>((i * 19) % 60);
    start += s.span.frameCount;
    const auto base = static_cast<std::uint8_t>(235 - (i * 13) % 170);
    s.safeLuma = {base, static_cast<std::uint8_t>(base - base / 8),
                  static_cast<std::uint8_t>(base - base / 5)};
    t.scenes.push_back(std::move(s));
  }
  t.frameCount = start;
  return t;
}

/// A tiny-MTU hop so the few-hundred-byte track spans many packets.
Link tinyMtuLink() { return Link{"tiny80211b", 11e6, 0.002, 64}; }

TEST(AnnotationDelivery, LosslessDeliveryIsExactAndFree) {
  const auto bytes = core::encodeTrack(lossTestTrack());
  const AnnotationDelivery d =
      deliverAnnotationTrack(bytes, tinyMtuLink(), {});
  EXPECT_TRUE(d.complete);
  EXPECT_EQ(d.bytes, bytes);
  EXPECT_EQ(d.packetsLost, 0u);
  EXPECT_EQ(d.retransmits, 0u);
  EXPECT_EQ(d.nackRounds, 0u);
  const std::size_t payloadPerPacket = 64 - kPacketHeaderBytes;
  EXPECT_EQ(d.packetCount,
            (bytes.size() + payloadPerPacket - 1) / payloadPerPacket);
}

TEST(AnnotationDelivery, IsDeterministic) {
  const auto bytes = core::encodeTrack(lossTestTrack());
  AnnotationDeliveryConfig cfg;
  cfg.channel = {0.10, 77};
  cfg.nackEnabled = true;
  const AnnotationDelivery a =
      deliverAnnotationTrack(bytes, tinyMtuLink(), cfg);
  const AnnotationDelivery b =
      deliverAnnotationTrack(bytes, tinyMtuLink(), cfg);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.packetsLost, b.packetsLost);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.erasedSpans, b.erasedSpans);
}

TEST(AnnotationDelivery, TwoPercentLossWithNackIsBitIdenticalToLossless) {
  // The acceptance bar: at <= 2% loss with NACK enabled, the delivered
  // track -- and therefore the backlight schedule the client builds -- is
  // bit-identical to lossless delivery, for EVERY seed tried.
  const core::AnnotationTrack track = lossTestTrack();
  const auto bytes = core::encodeTrack(track);
  const auto device = display::makeDevice(display::KnownDevice::kIpaq5555);
  const core::BacklightSchedule lossless =
      core::buildSchedule(track, 1, device, 10);

  bool sawLoss = false;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    AnnotationDeliveryConfig cfg;
    cfg.channel = {0.02, seed};
    cfg.nackEnabled = true;
    const AnnotationDelivery d =
        deliverAnnotationTrack(bytes, tinyMtuLink(), cfg);
    ASSERT_TRUE(d.complete) << "seed " << seed;
    ASSERT_EQ(d.bytes, bytes) << "seed " << seed;
    if (d.packetsLost > 0) {
      sawLoss = true;
      EXPECT_GT(d.retransmits, 0u);
      EXPECT_GE(d.nackRounds, 1u);
    }
    const core::AnnotationTrack rx = core::decodeTrack(d.bytes);
    EXPECT_EQ(rx, track);
    const core::BacklightSchedule sched =
        core::buildSchedule(rx, 1, device, 10);
    ASSERT_EQ(sched.commands.size(), lossless.commands.size());
    for (std::size_t i = 0; i < sched.commands.size(); ++i) {
      EXPECT_EQ(sched.commands[i].frame, lossless.commands[i].frame);
      EXPECT_EQ(sched.commands[i].level, lossless.commands[i].level);
      EXPECT_EQ(sched.commands[i].gainK, lossless.commands[i].gainK);
    }
  }
  EXPECT_TRUE(sawLoss) << "2% over ~50 multi-packet deliveries must lose "
                          "at least one packet, or the test shows nothing";
}

TEST(AnnotationDelivery, NackCostsTimeButRecovers) {
  const auto bytes = core::encodeTrack(lossTestTrack());
  AnnotationDeliveryConfig lossy;
  lossy.channel = {0.15, 9};
  lossy.nackEnabled = true;
  const AnnotationDelivery clean =
      deliverAnnotationTrack(bytes, tinyMtuLink(), {});
  const AnnotationDelivery recovered =
      deliverAnnotationTrack(bytes, tinyMtuLink(), lossy);
  ASSERT_GT(recovered.packetsLost, 0u);
  EXPECT_TRUE(recovered.complete);
  EXPECT_EQ(recovered.bytes, bytes);
  EXPECT_GT(recovered.deliverySeconds, clean.deliverySeconds);
  EXPECT_GE(recovered.deliverySeconds,
            static_cast<double>(recovered.nackRounds) * lossy.rttSeconds);
}

TEST(AnnotationDelivery, LossWithoutNackDegradesToBoundedFallback) {
  // Unrecovered packets become zero-filled erasures; the lenient decoder
  // repairs the damaged spans with full backlight, and the slew-limited
  // fallback schedule (a) never dims below the intact plan, (b) never
  // exceeds full-backlight power, (c) moves at most maxDelta per frame.
  const core::AnnotationTrack track = lossTestTrack();
  const auto bytes = core::encodeTrack(track);
  const auto device = display::makeDevice(display::KnownDevice::kIpaq5555);
  const core::BacklightSchedule intact =
      core::buildSchedule(track, 1, device, 10);
  const double fullPower = device.backlightPowerWatts(255);
  constexpr std::uint8_t kMaxDelta = 8;

  bool sawDegradedButUsable = false;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    AnnotationDeliveryConfig cfg;
    cfg.channel = {0.06, seed};
    cfg.nackEnabled = false;
    const AnnotationDelivery d =
        deliverAnnotationTrack(bytes, tinyMtuLink(), cfg);
    EXPECT_EQ(d.retransmits, 0u);
    EXPECT_EQ(d.bytes.size(), bytes.size()) << "erasures preserve framing";
    if (d.complete) continue;
    for (const auto& [offset, len] : d.erasedSpans) {
      for (std::size_t i = offset; i < offset + len; ++i) {
        EXPECT_EQ(d.bytes[i], 0u);
      }
    }
    const core::LenientDecodeResult lenient =
        core::decodeTrackLenient(d.bytes);
    if (!lenient.usable) continue;  // header packet lost: full fallback
    EXPECT_FALSE(lenient.damage.intact());
    sawDegradedButUsable = true;

    const core::BacklightSchedule sched = core::limitSlewRate(
        core::buildSchedule(lenient.track, 1, device, 10), kMaxDelta);
    ASSERT_EQ(sched.frameCount, track.frameCount);
    for (std::uint32_t f = 0; f < sched.frameCount; ++f) {
      EXPECT_GE(sched.levelAt(f), intact.levelAt(f))
          << "seed " << seed << " frame " << f;
      EXPECT_LE(device.backlightPowerWatts(sched.levelAt(f)),
                fullPower + 1e-12);
      if (f > 0) {
        const int delta = std::abs(static_cast<int>(sched.levelAt(f)) -
                                   static_cast<int>(sched.levelAt(f - 1)));
        EXPECT_LE(delta, static_cast<int>(kMaxDelta))
            << "seed " << seed << " frame " << f;
      }
    }
  }
  EXPECT_TRUE(sawDegradedButUsable);
}

TEST(AnnotationDelivery, Validation) {
  const std::vector<std::uint8_t> bytes(100, 0x42);
  AnnotationDeliveryConfig bad;
  bad.channel = {1.0, 1};
  EXPECT_THROW((void)deliverAnnotationTrack(bytes, tinyMtuLink(), bad),
               std::invalid_argument);
  bad.channel = {-0.1, 1};
  EXPECT_THROW((void)deliverAnnotationTrack(bytes, tinyMtuLink(), bad),
               std::invalid_argument);
  bad = {};
  bad.maxRetransmits = -1;
  EXPECT_THROW((void)deliverAnnotationTrack(bytes, tinyMtuLink(), bad),
               std::invalid_argument);
  bad = {};
  bad.rttSeconds = -0.5;
  EXPECT_THROW((void)deliverAnnotationTrack(bytes, tinyMtuLink(), bad),
               std::invalid_argument);
  // Empty payload is a no-op, not an error.
  const AnnotationDelivery d =
      deliverAnnotationTrack(std::vector<std::uint8_t>{}, tinyMtuLink(), {});
  EXPECT_TRUE(d.complete);
  EXPECT_EQ(d.packetCount, 0u);
}

TEST(Loss, Validation) {
  Rig rig;
  const media::EncodedClip enc = media::encodeClip(rig.clip, {75, 4, 1.5});
  EXPECT_THROW((void)deliverFrames(enc, rig.wifi, {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)deliverFrames(enc, rig.wifi, {-0.1}),
               std::invalid_argument);
  std::vector<FrameDelivery> wrongCount(3);
  EXPECT_THROW((void)decodeWithConcealment(enc, wrongCount),
               std::invalid_argument);
}

}  // namespace
}  // namespace anno::stream
