#include "stream/loss.h"

#include <gtest/gtest.h>

#include "media/clipgen.h"
#include "quality/metrics.h"

namespace anno::stream {
namespace {

struct Rig {
  media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kCatwoman, 0.04, 48, 36);
  Link wifi = makeReferencePath().lastHop();
};

TEST(Loss, ZeroLossDeliversEverything) {
  Rig rig;
  const media::EncodedClip enc = media::encodeClip(rig.clip, {75, 8, 1.5});
  const auto deliveries = deliverFrames(enc, rig.wifi, {0.0});
  for (const FrameDelivery& d : deliveries) {
    EXPECT_TRUE(d.intact);
    EXPECT_EQ(d.packetsLost, 0u);
  }
  const ConcealedPlayback out = decodeWithConcealment(enc, deliveries);
  EXPECT_EQ(out.concealedFrames, 0u);
  EXPECT_EQ(out.intactFrames, rig.clip.frames.size());
  // Identical to the plain decode path.
  const media::VideoClip plain = media::decodeClip(enc);
  for (std::size_t i = 0; i < plain.frames.size(); i += 7) {
    EXPECT_EQ(out.video.frames[i], plain.frames[i]) << "frame " << i;
  }
}

TEST(Loss, DeliveryIsDeterministic) {
  Rig rig;
  const media::EncodedClip enc = media::encodeClip(rig.clip, {75, 8, 1.5});
  const auto a = deliverFrames(enc, rig.wifi, {0.05, 99});
  const auto b = deliverFrames(enc, rig.wifi, {0.05, 99});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].intact, b[i].intact);
  }
}

TEST(Loss, IntraOnlyLimitsDamageToLostFrames) {
  Rig rig;
  const media::EncodedClip intra = media::encodeClip(rig.clip, {75, 1, 1.5});
  const auto deliveries = deliverFrames(intra, rig.wifi, {0.03, 7});
  std::size_t lostFrames = 0;
  for (const FrameDelivery& d : deliveries) {
    if (!d.intact) ++lostFrames;
  }
  const ConcealedPlayback out = decodeWithConcealment(intra, deliveries);
  EXPECT_EQ(out.concealedFrames, lostFrames)
      << "intra-only: no propagation beyond the lost frames themselves";
}

TEST(Loss, InterCodingPropagatesUntilNextIntra) {
  Rig rig;
  const media::EncodedClip gop = media::encodeClip(rig.clip, {75, 12, 1.5});
  const auto deliveries = deliverFrames(gop, rig.wifi, {0.03, 7});
  std::size_t lostFrames = 0;
  for (const FrameDelivery& d : deliveries) {
    if (!d.intact) ++lostFrames;
  }
  if (lostFrames == 0) GTEST_SKIP() << "no losses at this seed";
  const ConcealedPlayback out = decodeWithConcealment(gop, deliveries);
  EXPECT_GT(out.concealedFrames, lostFrames)
      << "a lost frame must damage the P frames chained on it";
}

TEST(Loss, QualityDegradesMeasurablyWithLossRate) {
  Rig rig;
  const media::EncodedClip enc = media::encodeClip(rig.clip, {75, 8, 1.5});
  const auto meanPsnr = [&](double loss) {
    const ConcealedPlayback out = decodeWithConcealment(
        enc, deliverFrames(enc, rig.wifi, {loss, 3}));
    double sum = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < rig.clip.frames.size(); i += 5) {
      sum += quality::psnr(rig.clip.frames[i], out.video.frames[i]);
      ++n;
    }
    return sum / n;
  };
  const double clean = meanPsnr(0.0);
  const double lossy = meanPsnr(0.10);
  // Concealment (repeat-last-good) is gentle on slow content, but 10%
  // packet loss must still cost measurable fidelity.
  EXPECT_LT(lossy, clean - 0.3);
}

TEST(Loss, Validation) {
  Rig rig;
  const media::EncodedClip enc = media::encodeClip(rig.clip, {75, 4, 1.5});
  EXPECT_THROW((void)deliverFrames(enc, rig.wifi, {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)deliverFrames(enc, rig.wifi, {-0.1}),
               std::invalid_argument);
  std::vector<FrameDelivery> wrongCount(3);
  EXPECT_THROW((void)decodeWithConcealment(enc, wrongCount),
               std::invalid_argument);
}

}  // namespace
}  // namespace anno::stream
