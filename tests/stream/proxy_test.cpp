#include "stream/proxy.h"

#include <gtest/gtest.h>

#include "media/clipgen.h"
#include "stream/mux.h"
#include "stream/server.h"

namespace anno::stream {
namespace {

media::VideoClip testClip() {
  return media::generatePaperClip(media::PaperClip::kIRobot, 0.03, 32, 24);
}

ClientCapabilities ipaqCaps(std::size_t quality = 2) {
  const display::DeviceModel d =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  return ClientCapabilities{d.name, d.transfer, quality};
}

TEST(OnlineAnnotator, MatchesOfflineAnnotator) {
  // The causal annotator must produce exactly the offline scene partition
  // and safe-luma values ("either the proxy or the server node suffices").
  const media::VideoClip clip = testClip();
  const core::AnnotatorConfig cfg;
  const core::AnnotationTrack offline = core::annotateClip(clip, cfg);

  OnlineAnnotator online(cfg);
  std::vector<core::SceneAnnotation> scenes;
  for (const media::Image& f : clip.frames) {
    if (auto s = online.push(media::profileFrame(f))) {
      scenes.push_back(*s);
    }
  }
  if (auto s = online.flush()) scenes.push_back(*s);

  ASSERT_EQ(scenes.size(), offline.scenes.size());
  for (std::size_t i = 0; i < scenes.size(); ++i) {
    EXPECT_EQ(scenes[i], offline.scenes[i]) << "scene " << i;
  }
}

TEST(OnlineAnnotator, PerFrameModeEmitsEveryFrame) {
  core::AnnotatorConfig cfg;
  cfg.granularity = core::Granularity::kPerFrame;
  OnlineAnnotator online(cfg);
  const media::VideoClip clip = testClip();
  std::size_t emitted = 0;
  for (const media::Image& f : clip.frames) {
    if (online.push(media::profileFrame(f))) ++emitted;
  }
  if (online.flush()) ++emitted;
  EXPECT_EQ(emitted, clip.frames.size());
}

TEST(OnlineAnnotator, LatencyBoundForcesCuts) {
  core::AnnotatorConfig cfg;
  OnlineAnnotator bounded(cfg, 10);
  // A long constant scene: unbounded mode would hold it open forever;
  // bounded mode must emit a chunk every 10 frames.
  media::FrameStats stats;
  stats.luminance.maxLuma = 120;
  stats.histogram.add(120, 100);
  std::vector<core::SceneAnnotation> scenes;
  for (int i = 0; i < 35; ++i) {
    if (auto s = bounded.push(stats)) scenes.push_back(*s);
  }
  if (auto s = bounded.flush()) scenes.push_back(*s);
  ASSERT_GE(scenes.size(), 3u);
  for (const core::SceneAnnotation& s : scenes) {
    EXPECT_LE(s.span.frameCount, 10u);
  }
  // Chunks of the same content annotate identically, so the client's
  // schedule merges them: no extra backlight switches from chunking.
  for (std::size_t i = 1; i < scenes.size(); ++i) {
    EXPECT_EQ(scenes[i].safeLuma, scenes[0].safeLuma);
  }
}

TEST(OnlineAnnotator, LatencyBoundValidation) {
  core::AnnotatorConfig cfg;
  cfg.sceneDetect.minSceneFrames = 8;
  EXPECT_THROW(OnlineAnnotator(cfg, 4), std::invalid_argument);
  EXPECT_NO_THROW(OnlineAnnotator(cfg, 8));
  EXPECT_NO_THROW(OnlineAnnotator(cfg, 0));  // unbounded
}

TEST(OnlineAnnotator, FlushOnEmptyIsNull) {
  OnlineAnnotator online;
  EXPECT_FALSE(online.flush().has_value());
  EXPECT_EQ(online.framesSeen(), 0u);
}

TEST(OnlineAnnotator, ValidationOnEmptyQualityLevels) {
  core::AnnotatorConfig cfg;
  cfg.qualityLevels.clear();
  EXPECT_THROW(OnlineAnnotator{cfg}, std::invalid_argument);
}

TEST(Proxy, TranscodeMatchesServerTrack) {
  // Raw stream -> proxy must reconstruct (up to codec noise in the frame
  // statistics) the same annotation structure the server would compute.
  const media::VideoClip clip = testClip();
  MediaServer server;
  server.addClip(clip);

  const auto raw = server.serveRaw(clip.name);
  ProxyNode proxy;
  const auto transcoded = proxy.transcode(raw, ipaqCaps());
  const DemuxedStream d = demux(transcoded);
  ASSERT_TRUE(d.annotations.has_value());
  EXPECT_NO_THROW(core::validateTrack(*d.annotations));
  EXPECT_EQ(d.annotations->frameCount, clip.frames.size());

  // The proxy works from decoded (lossy) frames, so safe luma can differ by
  // a few codes, but the scene structure should be very close.
  const core::AnnotationTrack& serverTrack = server.entry(clip.name).track;
  const double ratio =
      static_cast<double>(d.annotations->scenes.size()) /
      static_cast<double>(serverTrack.scenes.size());
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
}

TEST(Proxy, TranscodedStreamIsCompensated) {
  const media::VideoClip clip = testClip();
  MediaServer server;
  server.addClip(clip);
  ProxyNode proxy;
  const auto transcoded = proxy.transcode(server.serveRaw(clip.name),
                                          ipaqCaps(2));
  const DemuxedStream d = demux(transcoded);
  const media::VideoClip served = media::decodeClip(d.video);
  // Compensation brightens: total luma mass should increase.
  double servedSum = 0.0, origSum = 0.0;
  for (std::size_t i = 0; i < clip.frames.size(); i += 7) {
    for (const media::Rgb8& p : served.frames[i].pixels()) {
      servedSum += media::luminance(p);
    }
    for (const media::Rgb8& p : clip.frames[i].pixels()) {
      origSum += media::luminance(p);
    }
  }
  EXPECT_GT(servedSum, origSum);
}

TEST(Proxy, ResolutionAdaptationShrinksStreamAndFrames) {
  const media::VideoClip clip = testClip();
  MediaServer server;
  server.addClip(clip);
  ProxyNode proxy;
  const auto raw = server.serveRaw(clip.name);
  const auto full = proxy.transcode(raw, ipaqCaps());
  const auto small = proxy.transcode(raw, ipaqCaps(), 16, 12);
  EXPECT_LT(small.size(), full.size() / 2);
  const DemuxedStream d = demux(small);
  EXPECT_EQ(d.video.width, 16);
  EXPECT_EQ(d.video.height, 12);
  EXPECT_EQ(d.video.frames.size(), clip.frames.size());
  ASSERT_TRUE(d.annotations.has_value());
  EXPECT_NO_THROW(core::validateTrack(*d.annotations));
}

TEST(Proxy, ResizedAnnotationsStayClose) {
  // Luminance statistics are (approximately) resolution-invariant, so the
  // resized stream's safe-luma ceilings should track the full-size ones.
  const media::VideoClip clip = testClip();
  MediaServer server;
  server.addClip(clip);
  ProxyNode proxy;
  const auto raw = server.serveRaw(clip.name);
  const auto a = demux(proxy.transcode(raw, ipaqCaps()));
  const auto b = demux(proxy.transcode(raw, ipaqCaps(), 16, 12));
  ASSERT_TRUE(a.annotations && b.annotations);
  // Compare the q=0 ceiling of the first scene (bilinear smoothing can
  // lower peaks slightly at 16x12).
  EXPECT_NEAR(a.annotations->scenes[0].safeLuma[0],
              b.annotations->scenes[0].safeLuma[0], 25.0);
}

TEST(Proxy, ResizeValidation) {
  const media::VideoClip clip = testClip();
  MediaServer server;
  server.addClip(clip);
  ProxyNode proxy;
  const auto raw = server.serveRaw(clip.name);
  EXPECT_THROW((void)proxy.transcode(raw, ipaqCaps(), 16, 0),
               std::invalid_argument);
  EXPECT_THROW((void)proxy.transcode(raw, ipaqCaps(), 0, 12),
               std::invalid_argument);
}

TEST(Proxy, QualityIndexValidation) {
  const media::VideoClip clip = testClip();
  MediaServer server;
  server.addClip(clip);
  ProxyNode proxy;
  EXPECT_THROW((void)proxy.transcode(server.serveRaw(clip.name),
                                     ipaqCaps(17)),
               std::out_of_range);
}

}  // namespace
}  // namespace anno::stream
