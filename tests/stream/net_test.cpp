#include "stream/net.h"

#include <gtest/gtest.h>

namespace anno::stream {
namespace {

TEST(Net, SingleLinkTransferMath) {
  Link link{"test", 8e6, 0.01, 1500};  // 8 Mbit/s, 10 ms, 1500 B MTU
  const TransferStats s = transferOverLink(link, 14600);  // 10 full packets
  EXPECT_EQ(s.packetCount, 10u);
  EXPECT_EQ(s.wireBytes, 14600u + 10u * kPacketHeaderBytes);
  EXPECT_NEAR(s.durationSeconds,
              0.01 + static_cast<double>(s.wireBytes) * 8.0 / 8e6, 1e-12);
}

TEST(Net, ZeroPayload) {
  Link link{"test", 8e6, 0.01, 1500};
  const TransferStats s = transferOverLink(link, 0);
  EXPECT_EQ(s.packetCount, 0u);
  EXPECT_EQ(s.wireBytes, 0u);
  EXPECT_NEAR(s.durationSeconds, 0.01, 1e-12);  // latency only
}

TEST(Net, PartialLastPacket) {
  Link link{"test", 8e6, 0.0, 1500};
  // payload per packet = 1460; 1461 bytes need 2 packets.
  EXPECT_EQ(transferOverLink(link, 1460).packetCount, 1u);
  EXPECT_EQ(transferOverLink(link, 1461).packetCount, 2u);
}

TEST(Net, LinkValidation) {
  Link bad{"bad", 0.0, 0.0, 1500};
  EXPECT_THROW((void)transferOverLink(bad, 100), std::invalid_argument);
  Link tinyMtu{"tiny", 1e6, 0.0, kPacketHeaderBytes};
  EXPECT_THROW((void)transferOverLink(tinyMtu, 100), std::invalid_argument);
}

TEST(Net, PathAccumulatesLatencyAndSerialization) {
  NetworkPath path({Link{"a", 10e6, 0.001, 1500},
                    Link{"b", 10e6, 0.002, 1500}});
  const TransferStats one = transferOverLink(path.links()[0], 5000);
  const TransferStats two = transferOverLink(path.links()[1], 5000);
  const TransferStats total = path.transfer(5000);
  EXPECT_NEAR(total.durationSeconds,
              one.durationSeconds + two.durationSeconds, 1e-12);
}

TEST(Net, PathReportsWirelessHop) {
  const NetworkPath path = makeReferencePath();
  EXPECT_EQ(path.lastHop().name, "ap-pda");
  const TransferStats s = path.transfer(100000);
  const TransferStats last = transferOverLink(path.lastHop(), 100000);
  EXPECT_EQ(s.packetCount, last.packetCount);
  EXPECT_EQ(s.wireBytes, last.wireBytes);
}

TEST(Net, EmptyPathThrows) {
  EXPECT_THROW(NetworkPath({}), std::invalid_argument);
}

TEST(Net, ReferencePathWirelessIsBottleneck) {
  const NetworkPath path = makeReferencePath();
  double slowest = 1e18;
  for (const Link& l : path.links()) {
    slowest = std::min(slowest, l.bandwidthBitsPerSec);
  }
  EXPECT_DOUBLE_EQ(path.lastHop().bandwidthBitsPerSec, slowest);
}

}  // namespace
}  // namespace anno::stream
