#include "stream/client.h"

#include <gtest/gtest.h>

#include "media/clipgen.h"
#include "player/baselines.h"
#include "stream/server.h"

namespace anno::stream {
namespace {

ClientConfig ipaqClient(std::size_t quality = 2) {
  return ClientConfig{display::makeDevice(display::KnownDevice::kIpaq5555),
                      quality, 10};
}

TEST(Client, CapabilitiesMirrorDevice) {
  const ClientSession client(ipaqClient(3), makeReferencePath());
  const ClientCapabilities caps = client.capabilities();
  EXPECT_EQ(caps.deviceName, "ipaq5555");
  EXPECT_EQ(caps.qualityIndex, 3u);
}

TEST(Client, ReceiveBuildsScheduleAndDecodes) {
  MediaServer server;
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kShrek2, 0.03, 32, 24);
  server.addClip(clip);

  const ClientSession client(ipaqClient(), makeReferencePath());
  const auto bytes = server.serve(clip.name, client.capabilities());
  const ReceivedStream rx = client.receive(bytes);

  EXPECT_EQ(rx.video.frames.size(), clip.frames.size());
  EXPECT_EQ(rx.track.frameCount, clip.frames.size());
  EXPECT_EQ(rx.schedule.frameCount, clip.frames.size());
  EXPECT_EQ(rx.streamBytes, bytes.size());
  EXPECT_GT(rx.network.durationSeconds, 0.0);
  EXPECT_GT(rx.network.packetCount, 0u);
}

TEST(Client, ClientScheduleMatchesServerSideComputation) {
  // The paper allows backlight levels to be computed "by either the
  // server/proxy ... or by the client itself"; both must agree.
  MediaServer server;
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kTheMovie, 0.03, 32, 24);
  server.addClip(clip);

  const ClientConfig cfg = ipaqClient(1);
  const ClientSession client(cfg, makeReferencePath());
  const ReceivedStream rx =
      client.receive(server.serve(clip.name, client.capabilities()));

  const core::BacklightSchedule serverSide = core::buildSchedule(
      server.entry(clip.name).track, 1, cfg.device, cfg.minBacklightLevel);
  ASSERT_EQ(rx.schedule.commands.size(), serverSide.commands.size());
  for (std::size_t i = 0; i < serverSide.commands.size(); ++i) {
    EXPECT_EQ(rx.schedule.commands[i].frame, serverSide.commands[i].frame);
    EXPECT_EQ(rx.schedule.commands[i].level, serverSide.commands[i].level);
  }
}

TEST(Client, ReceivesComplexityTrackForDvfs) {
  MediaServer server;
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kShrek2, 0.03, 32, 24);
  server.addClip(clip);
  const ClientSession client(ipaqClient(), makeReferencePath());
  const ReceivedStream rx =
      client.receive(server.serve(clip.name, client.capabilities()));
  ASSERT_TRUE(rx.complexity.has_value());
  EXPECT_EQ(rx.complexity->frameMegacycles.size(), clip.frames.size());
  // Workloads must be positive and usable by the DVFS scheduler.
  const power::DvfsResult r = power::scheduleAnnotated(
      power::DvfsCpu::xscalePxa255(), *rx.complexity, clip.fps);
  EXPECT_GT(r.energyJoules, 0.0);
}

TEST(Client, ReceivesSketchesForToneMapping) {
  MediaServer server;
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kTheMovie, 0.03, 32, 24);
  server.addClip(clip);
  const ClientSession client(ipaqClient(), makeReferencePath());
  const ReceivedStream rx =
      client.receive(server.serve(clip.name, client.capabilities()));
  ASSERT_TRUE(rx.sketches.has_value());
  EXPECT_EQ(rx.sketches->scenes.size(), rx.track.scenes.size());
  // Sketches are usable directly: build a sketch-driven tone-map policy
  // with no frame analysis at all.
  EXPECT_NO_THROW(player::SketchDtmPolicy(
      display::makeDevice(display::KnownDevice::kIpaq5555), rx.track,
      *rx.sketches));
}

TEST(Client, MissingAnnotationsFallsBackToFullBacklight) {
  // The documented graceful-degradation path: a stream with no annotation
  // track plays at full backlight (the non-annotated baseline) -- it must
  // never abort the session.
  MediaServer server;
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kOfficeXp, 0.02, 32, 24);
  server.addClip(clip);
  const ClientSession client(ipaqClient(), makeReferencePath());
  const ReceivedStream rx = client.receive(server.serveRaw(clip.name));
  EXPECT_TRUE(rx.ok);
  EXPECT_TRUE(rx.annotationFallback);
  EXPECT_EQ(rx.video.frames.size(), clip.frames.size());
  EXPECT_EQ(rx.schedule.frameCount, clip.frames.size());
  for (std::uint32_t f = 0; f < rx.schedule.frameCount; ++f) {
    EXPECT_EQ(rx.schedule.levelAt(f), 255) << "frame " << f;
    EXPECT_EQ(rx.schedule.gainAt(f), 1.0) << "frame " << f;
  }
}

TEST(Client, QualityBeyondTrackFallsBack) {
  // A negotiation mismatch (client config asks for a quality level the
  // track does not carry) degrades to full backlight instead of aborting.
  MediaServer server;
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kOfficeXp, 0.02, 32, 24);
  server.addClip(clip);
  // Server is asked with a valid index, client config holds a bogus one.
  ClientConfig cfg = ipaqClient(0);
  const auto bytes =
      server.serve(clip.name, ClientCapabilities{cfg.device.name,
                                                 cfg.device.transfer, 0});
  cfg.qualityIndex = 42;
  const ClientSession client(cfg, makeReferencePath());
  const ReceivedStream rx = client.receive(bytes);
  EXPECT_TRUE(rx.ok);
  EXPECT_TRUE(rx.annotationFallback);
  for (std::uint32_t f = 0; f < rx.schedule.frameCount; ++f) {
    EXPECT_EQ(rx.schedule.levelAt(f), 255);
  }
}

}  // namespace
}  // namespace anno::stream
