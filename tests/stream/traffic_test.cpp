#include "stream/traffic.h"

#include <gtest/gtest.h>

namespace anno::stream {
namespace {

Link wifi() { return Link{"ap-pda", 11e6, 0.004, 1500}; }
power::NicModel nic() { return power::NicModel{}; }

std::vector<std::size_t> typicalFrames(std::size_t n = 120,
                                       std::size_t bytes = 4000) {
  return std::vector<std::size_t>(n, bytes);
}

TEST(Traffic, FrameAirSecondsMath) {
  const auto air = frameAirSeconds({11000000 / 8}, wifi());
  ASSERT_EQ(air.size(), 1u);
  EXPECT_NEAR(air[0], 1.0, 1e-9);  // one second of airtime at 11 Mbit/s
}

TEST(Traffic, AlwaysOnNeverSleeps) {
  const NicScheduleResult r =
      nicAlwaysOn(nic(), typicalFrames(), wifi(), 12.0);
  EXPECT_DOUBLE_EQ(r.awakeFraction, 1.0);
  EXPECT_EQ(r.wakeups, 0u);
  EXPECT_NEAR(r.durationSeconds, 10.0, 1e-9);
  // Energy bounded by idle..receive power over the duration.
  EXPECT_GE(r.energyJoules, nic().idleWatts * 9.0);
  EXPECT_LE(r.energyJoules, nic().receiveWatts * 10.0);
}

TEST(Traffic, AnnotatedSleepsMostOfTheTime) {
  // 4 KB frames at 12 fps over 11 Mbit/s: ~3 ms of airtime per 83 ms frame
  // period -- the radio can sleep ~90% of the time even with wake costs.
  const NicScheduleResult r =
      nicAnnotated(nic(), typicalFrames(), wifi(), 12.0);
  EXPECT_LT(r.awakeFraction, 0.2);
  EXPECT_GT(r.wakeups, 0u);
}

TEST(Traffic, AnnotatedBeatsPsmBeatsAlwaysOn) {
  const auto frames = typicalFrames();
  const NicScheduleResult on = nicAlwaysOn(nic(), frames, wifi(), 12.0);
  const NicScheduleResult psm = nicPsm(nic(), frames, wifi(), 12.0);
  const NicScheduleResult ann = nicAnnotated(nic(), frames, wifi(), 12.0);
  EXPECT_LT(psm.energyJoules, on.energyJoules);
  EXPECT_LT(ann.energyJoules, psm.energyJoules);
  EXPECT_GT(ann.savingsVs(on), 0.5);
}

TEST(Traffic, CoalescingAmortizesWakeCost) {
  const auto frames = typicalFrames();
  NicScheduleConfig one;
  one.framesPerBurst = 1;
  NicScheduleConfig eight;
  eight.framesPerBurst = 8;
  const NicScheduleResult r1 = nicAnnotated(nic(), frames, wifi(), 12.0, one);
  const NicScheduleResult r8 =
      nicAnnotated(nic(), frames, wifi(), 12.0, eight);
  EXPECT_LT(r8.energyJoules, r1.energyJoules);
  EXPECT_LT(r8.wakeups, r1.wakeups);
}

TEST(Traffic, EmptyBurstsSkipWakeups) {
  // Frames with zero wire bytes (nothing buffered): annotated schedule
  // does not wake at all for them.
  std::vector<std::size_t> frames(40, 0);
  frames[0] = 4000;
  NicScheduleConfig cfg;
  cfg.framesPerBurst = 4;
  const NicScheduleResult r = nicAnnotated(nic(), frames, wifi(), 12.0, cfg);
  EXPECT_EQ(r.wakeups, 1u);
}

TEST(Traffic, PsmWakesEveryBeacon) {
  const NicScheduleResult r =
      nicPsm(nic(), typicalFrames(), wifi(), 12.0);  // 10 s, 100 ms beacon
  EXPECT_EQ(r.wakeups, 100u);
}

TEST(Traffic, Validation) {
  EXPECT_THROW((void)nicAlwaysOn(nic(), {}, wifi(), 12.0),
               std::invalid_argument);
  EXPECT_THROW((void)nicAlwaysOn(nic(), typicalFrames(), wifi(), 0.0),
               std::invalid_argument);
  NicScheduleConfig bad;
  bad.framesPerBurst = 0;
  EXPECT_THROW((void)nicAnnotated(nic(), typicalFrames(), wifi(), 12.0, bad),
               std::invalid_argument);
  NicScheduleConfig badBeacon;
  badBeacon.beaconIntervalSeconds = 0.0;
  EXPECT_THROW((void)nicPsm(nic(), typicalFrames(), wifi(), 12.0, badBeacon),
               std::invalid_argument);
  Link dead = wifi();
  dead.bandwidthBitsPerSec = 0.0;
  EXPECT_THROW((void)frameAirSeconds({100}, dead), std::invalid_argument);
}

}  // namespace
}  // namespace anno::stream
