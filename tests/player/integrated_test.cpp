#include "player/integrated.h"

#include <gtest/gtest.h>

#include "core/annotate.h"
#include "media/clipgen.h"

namespace anno::player {
namespace {

struct Rig {
  media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kTheMovie, 0.05, 64, 48);
  media::EncodedClip encoded = media::encodeClip(clip, {75, 12, 1.5});
  power::MobileDevicePower devicePower = power::makeIpaq5555Power();
  power::DvfsCpu cpu = power::DvfsCpu::xscalePxa255();
  stream::Link wifi = stream::makeReferencePath().lastHop();
  core::AnnotationTrack track = core::annotateClip(clip);
  core::BacklightSchedule schedule =
      core::buildSchedule(track, 2, devicePower.displayDevice());
};

IntegratedConfig allOff() {
  IntegratedConfig cfg;
  cfg.useAnnotatedBacklight = false;
  cfg.useAnnotatedDvfs = false;
  cfg.useAnnotatedRadio = false;
  return cfg;
}

TEST(Integrated, BaselineHasNoDropsAndFullPower) {
  Rig s;
  const IntegratedReport r = playIntegrated(
      s.encoded, s.schedule, s.devicePower, s.cpu, s.wifi, allOff());
  EXPECT_EQ(r.droppedFrames, 0u);
  EXPECT_NEAR(r.backlightEnergyJ,
              s.devicePower.backlightWatts(255) * r.durationSeconds, 1e-9);
  EXPECT_GT(r.totalEnergyJ(), 0.0);
}

TEST(Integrated, EachFlagSavesItsComponent) {
  Rig s;
  const IntegratedReport base = playIntegrated(
      s.encoded, s.schedule, s.devicePower, s.cpu, s.wifi, allOff());

  IntegratedConfig blOnly = allOff();
  blOnly.useAnnotatedBacklight = true;
  const IntegratedReport bl = playIntegrated(s.encoded, s.schedule,
                                             s.devicePower, s.cpu, s.wifi,
                                             blOnly);
  EXPECT_LT(bl.backlightEnergyJ, base.backlightEnergyJ * 0.8);
  EXPECT_NEAR(bl.cpuEnergyJ, base.cpuEnergyJ, 1e-9);
  EXPECT_NEAR(bl.nicEnergyJ, base.nicEnergyJ, 1e-9);

  IntegratedConfig cpuOnly = allOff();
  cpuOnly.useAnnotatedDvfs = true;
  const IntegratedReport dvfs = playIntegrated(s.encoded, s.schedule,
                                               s.devicePower, s.cpu, s.wifi,
                                               cpuOnly);
  EXPECT_LT(dvfs.cpuEnergyJ, base.cpuEnergyJ);
  EXPECT_NEAR(dvfs.backlightEnergyJ, base.backlightEnergyJ, 1e-9);

  IntegratedConfig nicOnly = allOff();
  nicOnly.useAnnotatedRadio = true;
  const IntegratedReport nic = playIntegrated(s.encoded, s.schedule,
                                              s.devicePower, s.cpu, s.wifi,
                                              nicOnly);
  EXPECT_LT(nic.nicEnergyJ, base.nicEnergyJ * 0.5);
}

TEST(Integrated, AllFlagsComposeToLargestSavings) {
  Rig s;
  const IntegratedReport base = playIntegrated(
      s.encoded, s.schedule, s.devicePower, s.cpu, s.wifi, allOff());
  const IntegratedReport all = playIntegrated(
      s.encoded, s.schedule, s.devicePower, s.cpu, s.wifi, {});
  EXPECT_LT(all.totalEnergyJ(), base.totalEnergyJ() * 0.75);
  EXPECT_EQ(all.droppedFrames, 0u)
      << "annotated DVFS must never drop frames on feasible content";
}

TEST(Integrated, InfeasibleWorkloadDropsFramesAtAnyPolicy) {
  Rig s;
  IntegratedConfig cfg;
  // Work model heavy enough that even the top OPP overruns.
  cfg.workModel.cyclesPerByte = 100000.0;
  cfg.workModel.cyclesPerPixel = 10000.0;
  const IntegratedReport r = playIntegrated(
      s.encoded, s.schedule, s.devicePower, s.cpu, s.wifi, cfg);
  EXPECT_GT(r.droppedFrames, 0u);
}

TEST(Integrated, Validation) {
  Rig s;
  media::EncodedClip empty;
  EXPECT_THROW((void)playIntegrated(empty, s.schedule, s.devicePower, s.cpu,
                                    s.wifi),
               std::invalid_argument);
}

TEST(Integrated, EnergyDecomposesExactly) {
  Rig s;
  const IntegratedReport r =
      playIntegrated(s.encoded, s.schedule, s.devicePower, s.cpu, s.wifi, {});
  EXPECT_NEAR(r.totalEnergyJ(),
              r.backlightEnergyJ + r.cpuEnergyJ + r.nicEnergyJ +
                  r.fixedEnergyJ,
              1e-12);
  EXPECT_NEAR(r.durationSeconds,
              static_cast<double>(s.encoded.frames.size()) / s.encoded.fps,
              1e-9);
}

}  // namespace
}  // namespace anno::player
