#include "player/baselines.h"

#include <gtest/gtest.h>

#include "core/annotate.h"
#include "media/clipgen.h"
#include "player/playback.h"

namespace anno::player {
namespace {

media::VideoClip testClip() {
  return media::generatePaperClip(media::PaperClip::kTheMovie, 0.03, 48, 36);
}

display::DeviceModel device() {
  return display::makeDevice(display::KnownDevice::kIpaq5555);
}

power::MobileDevicePower devicePower() { return power::makeIpaq5555Power(); }

TEST(Baselines, OracleSavesAtLeastAsMuchAsAnnotation) {
  // Per-frame oracle with the same clip budget is an upper bound on the
  // per-scene annotation scheme (a scene's level is its worst frame's).
  const media::VideoClip clip = testClip();
  const auto dp = devicePower();
  const core::AnnotationTrack track = core::annotateClip(clip);
  const core::BacklightSchedule schedule =
      core::buildSchedule(track, 2, dp.displayDevice());
  const media::VideoClip compensated =
      core::compensateClip(clip, track, 2, dp.displayDevice());

  AnnotationPolicy anno(schedule);
  const PlaybackReport ra = play(clip, compensated, anno, dp);

  OracleFramePolicy oracle(device(), 0.10);
  const PlaybackReport ro = play(clip, clip, oracle, dp);

  EXPECT_GE(ro.backlightSavings(), ra.backlightSavings() - 0.02);
}

TEST(Baselines, OracleFlickersMoreThanAnnotation) {
  const media::VideoClip clip = testClip();
  const auto dp = devicePower();
  const core::AnnotationTrack track = core::annotateClip(clip);
  const core::BacklightSchedule schedule =
      core::buildSchedule(track, 2, dp.displayDevice());
  const media::VideoClip compensated =
      core::compensateClip(clip, track, 2, dp.displayDevice());

  AnnotationPolicy anno(schedule);
  const PlaybackReport ra = play(clip, compensated, anno, dp);
  OracleFramePolicy oracle(device(), 0.10);
  const PlaybackReport ro = play(clip, clip, oracle, dp);
  EXPECT_GT(ro.backlightSwitches, ra.backlightSwitches * 2)
      << "per-frame adaptation must switch far more often (flicker)";
}

TEST(Baselines, AnnotationBeatsClientCompensationOnTotalPower) {
  // Same backlight schedule, but compensation on the client costs CPU:
  // total savings shrink.  This is the paper's delegation argument.
  const media::VideoClip clip = testClip();
  const auto dp = devicePower();
  const core::AnnotationTrack track = core::annotateClip(clip);
  const core::BacklightSchedule schedule =
      core::buildSchedule(track, 2, dp.displayDevice());
  const media::VideoClip compensated =
      core::compensateClip(clip, track, 2, dp.displayDevice());

  AnnotationPolicy serverComp(schedule);
  AnnotationClientPolicy clientComp(schedule);
  const PlaybackReport rs = play(clip, compensated, serverComp, dp);
  const PlaybackReport rc = play(clip, clip, clientComp, dp);
  EXPECT_NEAR(rs.backlightSavings(), rc.backlightSavings(), 0.02);
  EXPECT_GT(rs.totalSavings(), rc.totalSavings() + 0.02);
}

TEST(Baselines, HistoryMispredictsAtSceneChanges) {
  const media::VideoClip clip = testClip();
  HistoryPolicy history(device(), 0.10);
  const PlaybackReport r = play(clip, clip, history, devicePower());
  (void)r;
  // Every dark->bright scene cut is a misprediction: the window still
  // remembers the dark scene and under-provisions the ceiling.
  EXPECT_GT(history.mispredictions(), 0u);
}

TEST(Baselines, OracleNeverMispredictsByConstruction) {
  // Contrast with history: the oracle's ceiling always covers the frame's
  // clip-safe luminance (tested via planner invariants); here we verify the
  // history policy's violation count exceeds zero while its savings are in
  // the oracle's ballpark, i.e. the cost of prediction is quality, not
  // primarily power.
  const media::VideoClip clip = testClip();
  HistoryPolicy history(device(), 0.10);
  OracleFramePolicy oracle(device(), 0.10);
  const PlaybackReport rh = play(clip, clip, history, devicePower());
  const PlaybackReport ro = play(clip, clip, oracle, devicePower());
  EXPECT_GT(history.mispredictions(), 0u);
  EXPECT_NEAR(rh.backlightSavings(), ro.backlightSavings(), 0.15);
}

TEST(Baselines, QabsRespectsPsnrFloor) {
  const media::VideoClip clip = testClip();
  QabsPolicy strict(device(), 45.0);
  QabsPolicy loose(device(), 25.0);
  const PlaybackReport rs = play(clip, clip, strict, devicePower());
  const PlaybackReport rl = play(clip, clip, loose, devicePower());
  // A lower PSNR floor permits deeper dimming.
  EXPECT_GE(rl.backlightSavings(), rs.backlightSavings());
}

TEST(Baselines, EstimatePsnrUnderCeiling) {
  media::Histogram h;
  h.add(100, 99);
  h.add(200, 1);
  EXPECT_DOUBLE_EQ(estimatePsnrUnderCeiling(h, 255.0), 99.0);  // nothing clips
  const double psnrAt150 = estimatePsnrUnderCeiling(h, 150.0);
  const double psnrAt120 = estimatePsnrUnderCeiling(h, 120.0);
  EXPECT_LT(psnrAt120, psnrAt150);
  EXPECT_DOUBLE_EQ(estimatePsnrUnderCeiling(media::Histogram{}, 10.0), 99.0);
}

TEST(Baselines, DtmSavesPowerOnDarkContent) {
  const media::VideoClip clip = testClip();
  DtmPolicy dtm(device(), 9.0);
  const PlaybackReport r = play(clip, clip, dtm, devicePower());
  EXPECT_GT(r.backlightSavings(), 0.15);
  // Tone mapping is client-side work: total savings lag backlight savings
  // by more than the usual share scaling.
  EXPECT_LT(r.totalSavings(), r.backlightSavings() * 0.4);
}

TEST(Baselines, DtmQualityBudgetIsRespected) {
  const media::VideoClip clip = testClip();
  DtmPolicy strict(device(), 1.0);
  DtmPolicy loose(device(), 40.0);
  PlaybackConfig cfg;
  cfg.qualityEvalStride = 6;
  const PlaybackReport rs = play(clip, clip, strict, devicePower(), cfg);
  const PlaybackReport rl = play(clip, clip, loose, devicePower(), cfg);
  EXPECT_LE(rs.backlightSavings(), rl.backlightSavings());
  EXPECT_LE(rs.meanEmd, rl.meanEmd + 0.5);
}

TEST(Baselines, DtmValidation) {
  EXPECT_THROW(DtmPolicy(device(), -1.0), std::invalid_argument);
  EXPECT_THROW(DtmPolicy(device(), 5.0, 0.0), std::invalid_argument);
  EXPECT_EQ(DtmPolicy(device()).name(), "dtm");
}

TEST(Baselines, SketchDtmNeedsNoFrameAnalysis) {
  // The sketch-driven policy is fully precomputed: identical behaviour
  // whether decide() sees real statistics or empty ones.
  const media::VideoClip clip = testClip();
  const core::AnnotationTrack track = core::annotateClip(clip);
  const core::SketchTrack sketches =
      core::buildSketchTrack(track, media::profileClip(clip));
  SketchDtmPolicy a(device(), track, sketches);
  SketchDtmPolicy b(device(), track, sketches);
  const media::FrameStats empty;
  for (std::uint32_t f = 0; f < clip.frames.size(); f += 11) {
    const FrameDecision da = a.decide(f, media::profileFrame(clip.frames[f]));
    const FrameDecision db = b.decide(f, empty);
    EXPECT_EQ(da.backlightLevel, db.backlightLevel) << "frame " << f;
  }
}

TEST(Baselines, SketchDtmTracksFullDtm) {
  // Deciding from 16-bin sketches should land close to deciding from the
  // full per-frame histograms.
  const media::VideoClip clip = testClip();
  const auto dp = devicePower();
  const core::AnnotationTrack track = core::annotateClip(clip);
  const core::SketchTrack sketches =
      core::buildSketchTrack(track, media::profileClip(clip));
  SketchDtmPolicy sketch(device(), track, sketches, 9.0);
  DtmPolicy full(device(), 9.0);
  PlaybackConfig cfg;
  cfg.qualityEvalStride = 8;
  const PlaybackReport rs = play(clip, clip, sketch, dp, cfg);
  const PlaybackReport rf = play(clip, clip, full, dp, cfg);
  EXPECT_NEAR(rs.backlightSavings(), rf.backlightSavings(), 0.12);
  // And it switches at scene rate, not frame rate.
  EXPECT_LE(rs.backlightSwitches, track.scenes.size());
  EXPECT_GT(rf.backlightSwitches, rs.backlightSwitches);
}

TEST(Baselines, SketchDtmValidation) {
  const media::VideoClip clip = testClip();
  const core::AnnotationTrack track = core::annotateClip(clip);
  core::SketchTrack wrongCount;
  wrongCount.scenes.resize(track.scenes.size() + 1);
  EXPECT_THROW(SketchDtmPolicy(device(), track, wrongCount),
               std::invalid_argument);
  const core::SketchTrack sketches =
      core::buildSketchTrack(track, media::profileClip(clip));
  EXPECT_THROW(SketchDtmPolicy(device(), track, sketches, -1.0),
               std::invalid_argument);
  EXPECT_EQ(SketchDtmPolicy(device(), track, sketches).name(), "dtm-sketch");
}

TEST(Baselines, SmoothedLimitsDimmingSlew) {
  const media::VideoClip clip = testClip();
  const auto dp = devicePower();
  SmoothedPolicy smoothed(std::make_unique<OracleFramePolicy>(device(), 0.10),
                          device(), 4);
  const PlaybackReport r = play(clip, clip, smoothed, dp);
  // No downward jump in the level trace may exceed the step.
  for (std::size_t i = 1; i < r.frameBacklightLevel.size(); ++i) {
    const int delta = static_cast<int>(r.frameBacklightLevel[i - 1]) -
                      static_cast<int>(r.frameBacklightLevel[i]);
    EXPECT_LE(delta, 4) << "frame " << i;
  }
}

TEST(Baselines, SmoothedValidation) {
  EXPECT_THROW(SmoothedPolicy(nullptr, device(), 4), std::invalid_argument);
  EXPECT_THROW(SmoothedPolicy(std::make_unique<FullBacklightPolicy>(),
                              device(), 0),
               std::invalid_argument);
}

TEST(Baselines, PolicyNames) {
  EXPECT_EQ(FullBacklightPolicy{}.name(), "full-backlight");
  EXPECT_EQ(OracleFramePolicy(device(), 0.1).name(), "oracle-frame");
  EXPECT_EQ(HistoryPolicy(device(), 0.1).name(), "history");
  EXPECT_EQ(QabsPolicy(device()).name(), "qabs");
  SmoothedPolicy sm(std::make_unique<QabsPolicy>(device()), device());
  EXPECT_EQ(sm.name(), "qabs+smoothed");
}

TEST(Baselines, ConstructorValidation) {
  EXPECT_THROW(OracleFramePolicy(device(), 1.0), std::invalid_argument);
  EXPECT_THROW(HistoryPolicy(device(), -0.1), std::invalid_argument);
  EXPECT_THROW(HistoryPolicy(device(), 0.1, 0), std::invalid_argument);
  EXPECT_THROW(HistoryPolicy(device(), 0.1, 5, 0.9), std::invalid_argument);
}

}  // namespace
}  // namespace anno::player
