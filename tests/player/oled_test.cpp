#include "player/oled.h"

#include <gtest/gtest.h>

#include "core/annotate.h"
#include "media/clipgen.h"

namespace anno::player {
namespace {

struct Rig {
  media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kIceAge, 0.04, 48, 36);
  core::AnnotationTrack track = core::annotateClip(clip);
  core::SketchTrack sketches =
      core::buildSketchTrack(track, media::profileClip(clip));
  display::EmissiveDisplay panel = display::makeGenericOled();
};

TEST(OledPlan, OnePerSceneWithinBounds) {
  Rig rig;
  const auto plan = planOledDimming(rig.track, rig.sketches);
  ASSERT_EQ(plan.size(), rig.track.scenes.size());
  for (std::size_t s = 0; s < plan.size(); ++s) {
    EXPECT_EQ(plan[s].firstFrame, rig.track.scenes[s].span.firstFrame);
    EXPECT_GE(plan[s].dimFactor, 0.6);
    EXPECT_LE(plan[s].dimFactor, 1.0);
  }
}

TEST(OledPlan, BrighterScenesDimDeeper) {
  // A fixed mean-drop budget is a LARGER relative dim on bright scenes:
  // d = 1 - budget/mean is decreasing in... increasing in mean -- bright
  // scenes keep a HIGHER factor.  But bright scenes draw more power, so
  // the absolute watt savings still concentrate there (verified in the
  // playback test); here we pin the planner arithmetic.
  core::AnnotationTrack track;
  track.clipName = "t";
  track.fps = 12.0;
  track.frameCount = 20;
  track.qualityLevels = {0.0};
  track.scenes = {{core::SceneSpan{0, 10}, {80}},
                  {core::SceneSpan{10, 10}, {240}}};
  core::SketchTrack sketches;
  core::SceneSketch dark;
  dark.bins[2] = 255;  // mean ~40
  core::SceneSketch bright;
  bright.bins[13] = 255;  // mean ~215
  sketches.scenes = {dark, bright};
  OledPlanConfig cfg;
  cfg.maxMeanLumaDrop = 8.0;
  const auto plan = planOledDimming(track, sketches, cfg);
  EXPECT_LT(plan[0].dimFactor, plan[1].dimFactor);
  // Both respect the budget: (1-d)*mean <= 8 (+ sketch quantization).
  EXPECT_NEAR((1.0 - plan[1].dimFactor) * 215.0, 8.0, 1.5);
}

TEST(OledPlayback, SavesPowerWithinQualityBudget) {
  Rig rig;
  OledPlanConfig cfg;
  cfg.maxMeanLumaDrop = 8.0;
  const auto plan = planOledDimming(rig.track, rig.sketches, cfg);
  const OledPlaybackReport r =
      playEmissive(rig.clip, rig.track, plan, rig.panel);
  EXPECT_GT(r.panelSavings(), 0.03) << "bright clip: dimming must pay";
  // The measured mean-luma drop respects the planner's budget (sketch
  // quantization allows ~1 code of slack).
  EXPECT_LE(r.meanLumaDrop, cfg.maxMeanLumaDrop + 1.5);
}

TEST(OledPlayback, LargerBudgetSavesMore) {
  Rig rig;
  OledPlanConfig small;
  small.maxMeanLumaDrop = 3.0;
  OledPlanConfig large;
  large.maxMeanLumaDrop = 20.0;
  const OledPlaybackReport rs = playEmissive(
      rig.clip, rig.track, planOledDimming(rig.track, rig.sketches, small),
      rig.panel);
  const OledPlaybackReport rl = playEmissive(
      rig.clip, rig.track, planOledDimming(rig.track, rig.sketches, large),
      rig.panel);
  EXPECT_GT(rl.panelSavings(), rs.panelSavings());
}

TEST(OledPlayback, ZeroBudgetIsIdentity) {
  Rig rig;
  OledPlanConfig cfg;
  cfg.maxMeanLumaDrop = 0.0;
  const auto plan = planOledDimming(rig.track, rig.sketches, cfg);
  for (const OledSceneDecision& d : plan) {
    EXPECT_DOUBLE_EQ(d.dimFactor, 1.0);
  }
  const OledPlaybackReport r =
      playEmissive(rig.clip, rig.track, plan, rig.panel);
  EXPECT_NEAR(r.panelSavings(), 0.0, 1e-12);
  EXPECT_NEAR(r.meanLumaDrop, 0.0, 1e-9);
}

TEST(OledPlayback, Validation) {
  Rig rig;
  OledPlanConfig bad;
  bad.minDimFactor = 0.0;
  EXPECT_THROW((void)planOledDimming(rig.track, rig.sketches, bad),
               std::invalid_argument);
  core::SketchTrack wrong;
  wrong.scenes.resize(rig.track.scenes.size() + 2);
  EXPECT_THROW((void)planOledDimming(rig.track, wrong),
               std::invalid_argument);
  std::vector<OledSceneDecision> shortPlan(1);
  if (rig.track.scenes.size() > 1) {
    EXPECT_THROW(
        (void)playEmissive(rig.clip, rig.track, shortPlan, rig.panel),
        std::invalid_argument);
  }
}

}  // namespace
}  // namespace anno::player
