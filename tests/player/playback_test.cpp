#include "player/playback.h"

#include <gtest/gtest.h>

#include "core/annotate.h"
#include "core/runtime.h"
#include "media/clipgen.h"
#include "player/baselines.h"

namespace anno::player {
namespace {

media::VideoClip testClip() {
  return media::generatePaperClip(media::PaperClip::kSpiderman2, 0.03, 48, 36);
}

power::MobileDevicePower devicePower() { return power::makeIpaq5555Power(); }

TEST(Playback, FullBacklightHasZeroSavings) {
  const media::VideoClip clip = testClip();
  FullBacklightPolicy policy;
  const PlaybackReport r = play(clip, clip, policy, devicePower());
  EXPECT_NEAR(r.backlightSavings(), 0.0, 1e-12);
  EXPECT_NEAR(r.totalSavings(), 0.0, 1e-12);
  EXPECT_EQ(r.backlightSwitches, 0u);
  EXPECT_GT(r.meanPsnrDb, 50.0);  // identical content, identical backlight
  EXPECT_LT(r.meanEmd, 1.0);
}

TEST(Playback, AnnotationPolicySavesPower) {
  const media::VideoClip clip = testClip();
  const auto dp = devicePower();
  const core::AnnotationTrack track = core::annotateClip(clip);
  const core::BacklightSchedule schedule =
      core::buildSchedule(track, 2, dp.displayDevice());
  const media::VideoClip compensated =
      core::compensateClip(clip, track, 2, dp.displayDevice());
  AnnotationPolicy policy(schedule);
  const PlaybackReport r = play(clip, compensated, policy, dp);
  EXPECT_GT(r.backlightSavings(), 0.15);
  EXPECT_GT(r.totalSavings(), 0.04);
  EXPECT_LT(r.totalSavings(), r.backlightSavings());
  EXPECT_EQ(r.backlightSwitches, schedule.switchCount());
}

TEST(Playback, QualityPreservedUnderAnnotationPolicy) {
  const media::VideoClip clip = testClip();
  const auto dp = devicePower();
  const core::AnnotationTrack track = core::annotateClip(clip);
  // Quality level 0: no pixels may clip; perceived output should be very
  // close to the full-backlight original.
  const core::BacklightSchedule schedule =
      core::buildSchedule(track, 0, dp.displayDevice());
  const media::VideoClip compensated =
      core::compensateClip(clip, track, 0, dp.displayDevice());
  AnnotationPolicy policy(schedule);
  PlaybackConfig cfg;
  cfg.qualityEvalStride = 3;
  const PlaybackReport r = play(clip, compensated, policy, dp, cfg);
  EXPECT_LT(r.meanEmd, 6.0);
  EXPECT_GT(r.meanPsnrDb, 25.0);
}

TEST(Playback, MoreClippingMoreSavingsLessQuality) {
  const media::VideoClip clip = testClip();
  const auto dp = devicePower();
  const core::AnnotationTrack track = core::annotateClip(clip);
  double prevSavings = -1.0;
  double prevEmd = -1.0;
  for (std::size_t q : {0u, 2u, 4u}) {
    const core::BacklightSchedule schedule =
        core::buildSchedule(track, q, dp.displayDevice());
    const media::VideoClip compensated =
        core::compensateClip(clip, track, q, dp.displayDevice());
    AnnotationPolicy policy(schedule);
    PlaybackConfig cfg;
    cfg.qualityEvalStride = 5;
    const PlaybackReport r = play(clip, compensated, policy, dp, cfg);
    EXPECT_GE(r.backlightSavings(), prevSavings - 1e-9) << "q=" << q;
    EXPECT_GE(r.meanEmd, prevEmd - 0.5) << "q=" << q;
    prevSavings = r.backlightSavings();
    prevEmd = r.meanEmd;
  }
}

TEST(Playback, TransitionTimeTracksDeviceResponse) {
  // The same schedule flickers longer on a CCFL device (80 ms response)
  // than on the LED iPAQ 5555 (5 ms) -- paper Sec. 2's LED advantage.
  const media::VideoClip clip = testClip();
  const core::AnnotationTrack track = core::annotateClip(clip);

  const auto run = [&](display::KnownDevice id) {
    const display::DeviceModel device = display::makeDevice(id);
    const power::MobileDevicePower dp{device};
    const core::BacklightSchedule schedule =
        core::buildSchedule(track, 2, device);
    AnnotationPolicy policy(schedule);
    const media::VideoClip comp =
        core::compensateClip(clip, track, 2, device);
    PlaybackConfig cfg;
    cfg.qualityEvalStride = 1 << 20;
    return play(clip, comp, policy, dp, cfg);
  };
  const PlaybackReport led = run(display::KnownDevice::kIpaq5555);
  const PlaybackReport ccfl = run(display::KnownDevice::kIpaq3650);
  if (led.backlightSwitches > 0 && ccfl.backlightSwitches > 0) {
    EXPECT_LT(led.transitionSeconds / led.backlightSwitches,
              ccfl.transitionSeconds / ccfl.backlightSwitches);
  }
  EXPECT_NEAR(led.transitionSeconds,
              led.backlightSwitches * 5.0 / 1000.0, 1e-9);
}

TEST(Playback, TracesHaveFrameLength) {
  const media::VideoClip clip = testClip();
  FullBacklightPolicy policy;
  const PlaybackReport r = play(clip, clip, policy, devicePower());
  EXPECT_EQ(r.frameBacklightLevel.size(), clip.frames.size());
  EXPECT_EQ(r.frameBacklightPowerW.size(), clip.frames.size());
  EXPECT_EQ(r.frameTotalPowerW.size(), clip.frames.size());
  EXPECT_EQ(r.frameMaxLuma.size(), clip.frames.size());
  EXPECT_NEAR(r.durationSeconds, clip.durationSeconds(), 1e-9);
}

TEST(Playback, GeometryMismatchThrows) {
  const media::VideoClip clip = testClip();
  media::VideoClip other = clip;
  other.frames.pop_back();
  FullBacklightPolicy policy;
  EXPECT_THROW((void)play(clip, other, policy, devicePower()),
               std::invalid_argument);
}

TEST(Playback, StrideValidation) {
  const media::VideoClip clip = testClip();
  FullBacklightPolicy policy;
  PlaybackConfig cfg;
  cfg.qualityEvalStride = 0;
  EXPECT_THROW((void)play(clip, clip, policy, devicePower(), cfg),
               std::invalid_argument);
}

TEST(Playback, StreamingFlagChangesNicPower) {
  const media::VideoClip clip = testClip();
  FullBacklightPolicy p1, p2;
  PlaybackConfig streaming, local;
  local.streamingWhilePlaying = false;
  const PlaybackReport rs = play(clip, clip, p1, devicePower(), streaming);
  const PlaybackReport rl = play(clip, clip, p2, devicePower(), local);
  EXPECT_GT(rs.totalEnergyJ, rl.totalEnergyJ);
}

}  // namespace
}  // namespace anno::player
