#include "player/adaptive.h"

#include <gtest/gtest.h>

#include "core/annotate.h"
#include "media/clipgen.h"

namespace anno::player {
namespace {

core::AnnotationTrack testTrack() {
  return core::annotateClip(
      media::generatePaperClip(media::PaperClip::kSpiderman2, 0.06, 48, 36));
}

power::MobileDevicePower devicePower() { return power::makeIpaq5555Power(); }
power::BatteryModel battery() { return power::BatteryModel::ipaq5555(); }

TEST(Adaptive, FullBatteryShortTargetKeepsPreferredQuality) {
  AdaptiveConfig cfg;
  cfg.batteryChargeFraction = 1.0;
  cfg.targetSeconds = 600.0;  // 10 min on a full pack: no pressure
  cfg.preferredQuality = 0;
  const AdaptivePlan plan =
      planAdaptivePlayback(testTrack(), devicePower(), battery(), cfg);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.worstQualityUsed, 0u);
  for (const AdaptiveDecision& d : plan.decisions) {
    EXPECT_EQ(d.qualityIndex, 0u);
  }
}

TEST(Adaptive, LowBatteryLongTargetDegradesQuality) {
  AdaptiveConfig cfg;
  cfg.batteryChargeFraction = 0.5;
  // Demand more playback time than lossless quality can deliver at ~3 W
  // on half a 4.6 Wh pack (~0.8 h): 2.5 hours forces degradation.
  cfg.targetSeconds = 2.5 * 3600.0;
  cfg.preferredQuality = 0;
  const AdaptivePlan plan =
      planAdaptivePlayback(testTrack(), devicePower(), battery(), cfg);
  EXPECT_GT(plan.worstQualityUsed, 0u);
}

TEST(Adaptive, ImpossibleTargetReportedInfeasible) {
  AdaptiveConfig cfg;
  cfg.batteryChargeFraction = 0.05;
  cfg.targetSeconds = 10.0 * 3600.0;  // 10 h on 5% charge: hopeless
  const AdaptivePlan plan =
      planAdaptivePlayback(testTrack(), devicePower(), battery(), cfg);
  EXPECT_FALSE(plan.feasible);
  // Everything pushed to the last quality level.
  const core::AnnotationTrack track = testTrack();
  for (const AdaptiveDecision& d : plan.decisions) {
    EXPECT_EQ(d.qualityIndex, track.qualityLevels.size() - 1);
  }
}

TEST(Adaptive, DegradationIsMonotoneInTarget) {
  const core::AnnotationTrack track = testTrack();
  std::size_t prevWorst = 0;
  for (double hours : {0.2, 1.0, 1.6, 2.2, 3.0}) {
    AdaptiveConfig cfg;
    cfg.batteryChargeFraction = 0.6;
    cfg.targetSeconds = hours * 3600.0;
    const AdaptivePlan plan =
        planAdaptivePlayback(track, devicePower(), battery(), cfg);
    EXPECT_GE(plan.worstQualityUsed, prevWorst) << "hours=" << hours;
    prevWorst = plan.worstQualityUsed;
  }
}

TEST(Adaptive, ProjectionMatchesDecisionEnergy) {
  AdaptiveConfig cfg;
  cfg.batteryChargeFraction = 0.5;
  cfg.targetSeconds = 2.0 * 3600.0;
  const core::AnnotationTrack track = testTrack();
  const AdaptivePlan plan =
      planAdaptivePlayback(track, devicePower(), battery(), cfg);
  // The plan's projection must equal the sum over its own decisions.
  double joules = 0.0;
  const double timeScale =
      cfg.targetSeconds /
      (static_cast<double>(track.frameCount) / track.fps);
  for (std::size_t s = 0; s < track.scenes.size(); ++s) {
    power::OperatingPoint op;
    op.backlightLevel = plan.decisions[s].backlightLevel;
    joules += devicePower().totalWatts(op) *
              (static_cast<double>(track.scenes[s].span.frameCount) /
               track.fps * timeScale);
  }
  EXPECT_NEAR(plan.projectedEnergyJoules, joules,
              0.01 * plan.projectedEnergyJoules);
}

TEST(Adaptive, Validation) {
  AdaptiveConfig cfg;
  cfg.batteryChargeFraction = 0.0;
  EXPECT_THROW((void)planAdaptivePlayback(testTrack(), devicePower(),
                                          battery(), cfg),
               std::invalid_argument);
  cfg = AdaptiveConfig{};
  cfg.preferredQuality = 99;
  EXPECT_THROW((void)planAdaptivePlayback(testTrack(), devicePower(),
                                          battery(), cfg),
               std::out_of_range);
}

TEST(Adaptive, DarkScenesDegradeLast) {
  // The greedy controller should spend degradation where it buys the most
  // energy -- bright scenes -- and leave already-cheap dark scenes at the
  // preferred level when possible.
  AdaptiveConfig cfg;
  cfg.batteryChargeFraction = 0.5;
  cfg.targetSeconds = 1.5 * 3600.0;
  const core::AnnotationTrack track = testTrack();
  const AdaptivePlan plan =
      planAdaptivePlayback(track, devicePower(), battery(), cfg);
  if (plan.worstQualityUsed == 0) GTEST_SKIP() << "no pressure at this size";
  // Find the darkest and brightest scene at the preferred quality.
  std::size_t darkest = 0, brightest = 0;
  for (std::size_t s = 1; s < track.scenes.size(); ++s) {
    if (track.scenes[s].safeLuma[0] < track.scenes[darkest].safeLuma[0]) {
      darkest = s;
    }
    if (track.scenes[s].safeLuma[0] > track.scenes[brightest].safeLuma[0]) {
      brightest = s;
    }
  }
  EXPECT_LE(plan.decisions[darkest].qualityIndex,
            plan.decisions[brightest].qualityIndex);
}

}  // namespace
}  // namespace anno::player
