#include "player/experiment.h"

#include <gtest/gtest.h>

#include "media/clipgen.h"

namespace anno::player {
namespace {

TEST(Experiment, ProducesOneReportPerQualityLevel) {
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kOfficeXp, 0.04, 48, 36);
  PlaybackConfig cfg;
  cfg.qualityEvalStride = 1 << 20;
  const ClipExperimentResult result =
      runAnnotationExperiment(clip, power::makeIpaq5555Power(), {}, cfg);
  EXPECT_EQ(result.clipName, clip.name);
  ASSERT_EQ(result.qualityLevels.size(), 5u);
  ASSERT_EQ(result.reports.size(), 5u);
  for (const PlaybackReport& r : result.reports) {
    EXPECT_EQ(r.policyName, "annotation");
    EXPECT_EQ(r.frameBacklightLevel.size(), clip.frames.size());
  }
}

TEST(Experiment, CustomQualityLevelsHonored) {
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kOfficeXp, 0.03, 32, 24);
  core::AnnotatorConfig acfg;
  acfg.qualityLevels = {0.0, 0.5};
  PlaybackConfig cfg;
  cfg.qualityEvalStride = 1 << 20;
  const ClipExperimentResult result =
      runAnnotationExperiment(clip, power::makeIpaq5555Power(), acfg, cfg);
  ASSERT_EQ(result.reports.size(), 2u);
  // A 50% clip budget must dim far deeper than lossless.
  EXPECT_GT(result.reports[1].backlightSavings(),
            result.reports[0].backlightSavings() + 0.1);
}

TEST(Experiment, MeasureAverageWattsMatchesTrace) {
  PlaybackReport report;
  report.frameTotalPowerW.assign(120, 2.0);
  for (std::size_t i = 0; i < 60; ++i) report.frameTotalPowerW[i] = 3.0;
  const double measured = measureAverageWatts(report, 12.0);
  EXPECT_NEAR(measured, 2.5, 0.02);
}

TEST(Experiment, MeasureAverageWattsValidation) {
  PlaybackReport empty;
  EXPECT_THROW((void)measureAverageWatts(empty, 12.0),
               std::invalid_argument);
  PlaybackReport ok;
  ok.frameTotalPowerW.assign(10, 1.0);
  EXPECT_THROW((void)measureAverageWatts(ok, 0.0), std::invalid_argument);
}

TEST(Experiment, RejectsInvalidClip) {
  media::VideoClip bad;
  bad.name = "bad";
  EXPECT_THROW((void)runAnnotationExperiment(bad, power::makeIpaq5555Power()),
               std::invalid_argument);
}

}  // namespace
}  // namespace anno::player
