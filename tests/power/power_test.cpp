#include "power/power.h"

#include <gtest/gtest.h>

namespace anno::power {
namespace {

TEST(CpuModel, StateOrdering) {
  const CpuModel cpu;
  EXPECT_LT(cpu.watts(CpuState::kIdle), cpu.watts(CpuState::kDecode));
  // Client-side compensation costs extra CPU power: the load the paper's
  // server-side scheme removes.
  EXPECT_LT(cpu.watts(CpuState::kDecode),
            cpu.watts(CpuState::kDecodeCompensate));
}

TEST(NicModel, StateOrdering) {
  const NicModel nic;
  EXPECT_LT(nic.watts(NicState::kSleep), nic.watts(NicState::kIdle));
  EXPECT_LT(nic.watts(NicState::kIdle), nic.watts(NicState::kReceive));
  EXPECT_LT(nic.watts(NicState::kReceive), nic.watts(NicState::kTransmit));
}

TEST(MobileDevicePower, TotalIsComponentSum) {
  const MobileDevicePower dev = makeIpaq5555Power();
  OperatingPoint op{CpuState::kDecode, NicState::kReceive, 255, true};
  const double total = dev.totalWatts(op);
  const double withoutBacklight =
      total - dev.backlightWatts(255);
  op.backlightLevel = 0;
  EXPECT_NEAR(dev.totalWatts(op), withoutBacklight, 1e-12);
}

TEST(MobileDevicePower, PanelOffDropsDisplayPower) {
  const MobileDevicePower dev = makeIpaq5555Power();
  OperatingPoint on{CpuState::kIdle, NicState::kSleep, 255, true};
  OperatingPoint off = on;
  off.panelOn = false;
  EXPECT_GT(dev.totalWatts(on), dev.totalWatts(off) + 0.5);
}

TEST(MobileDevicePower, BacklightShareMatchesPaper) {
  // Paper Sec. 4: backlight is "about 25-30% of total power consumption".
  const MobileDevicePower dev = makeIpaq5555Power();
  EXPECT_GE(dev.backlightShare(), 0.25);
  EXPECT_LE(dev.backlightShare(), 0.30);
}

TEST(MobileDevicePower, DimmingReducesTotalProportionally) {
  const MobileDevicePower dev = makeIpaq5555Power();
  OperatingPoint full{CpuState::kDecode, NicState::kReceive, 255, true};
  OperatingPoint dim = full;
  dim.backlightLevel = 50;
  const double delta = dev.totalWatts(full) - dev.totalWatts(dim);
  EXPECT_NEAR(delta, dev.backlightWatts(255) - dev.backlightWatts(50), 1e-12);
}

TEST(MobileDevicePower, MaxTotalSavingsBoundedByShare) {
  // Even turning the backlight fully off cannot save more than its share.
  const MobileDevicePower dev = makeIpaq5555Power();
  OperatingPoint full{CpuState::kDecode, NicState::kReceive, 255, true};
  OperatingPoint off = full;
  off.backlightLevel = 0;
  const double savings =
      1.0 - dev.totalWatts(off) / dev.totalWatts(full);
  EXPECT_NEAR(savings, dev.backlightShare(), 1e-12);
}

}  // namespace
}  // namespace anno::power
