#include "power/daq.h"

#include <gtest/gtest.h>

#include <cmath>

namespace anno::power {
namespace {

TEST(Daq, ReconstructsConstantPower) {
  DaqSimulator daq(DaqConfig{});
  const PowerTrace trace = daq.record([](double) { return 2.5; }, 0.1);
  EXPECT_EQ(trace.sampleCount(), 2000u);  // 20 kS/s * 0.1 s
  // ADC noise/quantization: average within a few mW.
  EXPECT_NEAR(trace.averageWatts(), 2.5, 0.02);
}

TEST(Daq, ReconstructsStepPower) {
  DaqSimulator daq(DaqConfig{});
  const PowerTrace trace = daq.record(
      [](double t) { return t < 0.05 ? 3.0 : 1.0; }, 0.1);
  EXPECT_NEAR(trace.averageWatts(), 2.0, 0.02);
  EXPECT_GT(trace.peakWatts(), 2.8);
  EXPECT_LT(trace.minWatts(), 1.2);
}

TEST(Daq, SenseResistorDropAccounted) {
  // With a 0.1 ohm shunt and ~0.5 A draw the device voltage is ~4.95 V, not
  // 5 V; the reconstruction P = V_device * I must still match true power.
  DaqConfig cfg;
  cfg.noiseRmsVolts = 0.0;
  cfg.adcBits = 24;  // effectively exact: isolates the circuit model
  DaqSimulator daq(cfg);
  const PowerTrace trace = daq.record([](double) { return 2.5; }, 0.01);
  EXPECT_NEAR(trace.averageWatts(), 2.5, 1e-3);
}

TEST(Daq, DeterministicForSeed) {
  DaqConfig cfg;
  cfg.seed = 77;
  DaqSimulator a(cfg), b(cfg);
  const auto ta = a.record([](double) { return 1.0; }, 0.01);
  const auto tb = b.record([](double) { return 1.0; }, 0.01);
  EXPECT_EQ(ta.samples(), tb.samples());
}

TEST(Daq, CoarseAdcIsNoisier) {
  DaqConfig fine;
  fine.adcBits = 16;
  fine.noiseRmsVolts = 0.0;
  DaqConfig coarse = fine;
  coarse.adcBits = 6;
  const auto err = [](DaqConfig cfg) {
    DaqSimulator daq(cfg);
    const PowerTrace t = daq.record([](double) { return 2.5; }, 0.005);
    double sum = 0.0;
    for (double w : t.samples()) sum += std::abs(w - 2.5);
    return sum / static_cast<double>(t.sampleCount());
  };
  EXPECT_GT(err(coarse), err(fine) * 5.0);
}

TEST(Daq, ConfigValidation) {
  DaqConfig bad;
  bad.sampleRateHz = 0.0;
  EXPECT_THROW(DaqSimulator{bad}, std::invalid_argument);
  bad = DaqConfig{};
  bad.adcBits = 0;
  EXPECT_THROW(DaqSimulator{bad}, std::invalid_argument);
  bad = DaqConfig{};
  bad.senseResistorOhms = -1.0;
  EXPECT_THROW(DaqSimulator{bad}, std::invalid_argument);
}

TEST(Daq, RecordValidation) {
  DaqSimulator daq(DaqConfig{});
  EXPECT_THROW((void)daq.record(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW((void)daq.record([](double) { return 1.0; }, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)daq.record([](double) { return -1.0; }, 0.01),
               std::domain_error);
  // Power beyond what the 5 V supply can deliver through the shunt.
  EXPECT_THROW((void)daq.record([](double) { return 100.0; }, 0.001),
               std::domain_error);
}

}  // namespace
}  // namespace anno::power
