#include "power/battery.h"

#include <gtest/gtest.h>

namespace anno::power {
namespace {

TEST(Battery, OneCReferencePoint) {
  // Ideal battery (k=1): at the 1C current it runs exactly one hour.
  BatteryModel ideal(3.7, 1250.0, 1.0);
  const double oneCwatts = 3.7 * 1.25;
  EXPECT_NEAR(ideal.runtimeHours(oneCwatts), 1.0, 1e-9);
}

TEST(Battery, IdealBatteryIsLinear) {
  BatteryModel ideal(3.7, 1250.0, 1.0);
  EXPECT_NEAR(ideal.runtimeHours(1.0) / ideal.runtimeHours(2.0), 2.0, 1e-9);
}

TEST(Battery, PeukertMakesSavingsSuperlinear) {
  // With k>1 a 20% power cut extends runtime by MORE than 25% (=1/0.8).
  const BatteryModel pack = BatteryModel::ipaq5555();
  const double ext = pack.extensionFactor(3.0, 2.4);
  EXPECT_GT(ext, 1.0 / 0.8);
  BatteryModel ideal(3.7, 1250.0, 1.0);
  EXPECT_NEAR(ideal.extensionFactor(3.0, 2.4), 1.0 / 0.8, 1e-9);
}

TEST(Battery, RealisticIpaqRuntime) {
  // ~3 W streaming draw on a 4.6 Wh pack: between 1 and 2 hours.
  const BatteryModel pack = BatteryModel::ipaq5555();
  const double hours = pack.runtimeHours(3.0);
  EXPECT_GT(hours, 1.0);
  EXPECT_LT(hours, 2.0);
}

TEST(Battery, Validation) {
  EXPECT_THROW(BatteryModel(0.0, 1000.0), std::invalid_argument);
  EXPECT_THROW(BatteryModel(3.7, 0.0), std::invalid_argument);
  EXPECT_THROW(BatteryModel(3.7, 1000.0, 0.9), std::invalid_argument);
  const BatteryModel pack = BatteryModel::ipaq5555();
  EXPECT_THROW((void)pack.runtimeHours(0.0), std::invalid_argument);
  EXPECT_THROW((void)pack.runtimeHours(-1.0), std::invalid_argument);
}

TEST(Battery, ExtensionFactorSymmetry) {
  const BatteryModel pack = BatteryModel::ipaq5555();
  EXPECT_NEAR(pack.extensionFactor(3.0, 3.0), 1.0, 1e-12);
  EXPECT_NEAR(pack.extensionFactor(3.0, 2.0) * pack.extensionFactor(2.0, 3.0),
              1.0, 1e-9);
}

}  // namespace
}  // namespace anno::power
