#include "power/dvfs.h"

#include <gtest/gtest.h>

#include "media/clipgen.h"

namespace anno::power {
namespace {

DvfsCpu cpu() { return DvfsCpu::xscalePxa255(); }

ComplexityTrack gopTrack() {
  // I frames heavy, P frames light: the pattern GOP coding produces.
  ComplexityTrack track;
  for (int i = 0; i < 60; ++i) {
    track.frameMegacycles.push_back(i % 12 == 0 ? 30.0 : 6.0);
  }
  return track;
}

TEST(DvfsCpu, OppsSortedAndPowered) {
  const DvfsCpu c = cpu();
  ASSERT_EQ(c.oppCount(), 4u);
  double prevFreq = 0.0, prevPower = 0.0;
  for (std::size_t i = 0; i < c.oppCount(); ++i) {
    EXPECT_GT(c.opps()[i].freqMHz, prevFreq);
    EXPECT_GT(c.activeWatts(i), prevPower);
    prevFreq = c.opps()[i].freqMHz;
    prevPower = c.activeWatts(i);
  }
  EXPECT_NEAR(c.activeWatts(3), 0.90, 1e-12);  // top OPP = decode power
  EXPECT_LT(c.idleWatts(), c.activeWatts(0));
}

TEST(DvfsCpu, VoltageScalingIsSuperlinear) {
  // Halving frequency (400->200) with lower voltage must save MORE than
  // half the power -- that is the whole point of DVFS.
  const DvfsCpu c = cpu();
  EXPECT_LT(c.activeWatts(1), 0.5 * c.activeWatts(3));
}

TEST(DvfsCpu, TimingAndInverse) {
  const DvfsCpu c = cpu();
  EXPECT_NEAR(c.secondsFor(400.0, 3), 1.0, 1e-12);  // 400 Mc @ 400 MHz
  EXPECT_NEAR(c.secondsFor(400.0, 0), 4.0, 1e-12);  // @ 100 MHz
  // Lowest OPP for 10 Mc in 40 ms: 100 MHz does it in 100 ms (no), 300 MHz
  // in 33 ms (yes); 200 MHz takes 50 ms (no).
  EXPECT_EQ(c.lowestOppFor(10.0, 0.040), 2u);
  // Impossible deadline: top OPP returned.
  EXPECT_EQ(c.lowestOppFor(1000.0, 0.001), 3u);
}

TEST(DvfsCpu, Validation) {
  EXPECT_THROW(DvfsCpu({}, 1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(DvfsCpu({{100.0, 1.0}}, -1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(DvfsCpu({{0.0, 1.0}}, 1.0, 0.1), std::invalid_argument);
  const DvfsCpu c = cpu();
  EXPECT_THROW((void)c.activeWatts(4), std::out_of_range);
  EXPECT_THROW((void)c.secondsFor(-1.0, 0), std::invalid_argument);
}

TEST(ComplexityTrack, FromEncodedClipTracksSizes) {
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kOfficeXp, 0.06, 48, 36);
  const media::EncodedClip enc = media::encodeClip(clip, {75, 8, 1.5});
  const ComplexityTrack track = ComplexityTrack::fromEncodedClip(enc);
  ASSERT_EQ(track.frameMegacycles.size(), enc.frames.size());
  ASSERT_GT(track.frameMegacycles.size(), 9u);
  // I frames are bigger, hence more cycles, than neighbouring P frames.
  EXPECT_GT(track.frameMegacycles[0], track.frameMegacycles[1]);
  EXPECT_GT(track.frameMegacycles[8], track.frameMegacycles[7]);
}

TEST(ComplexityTrack, EncodeDecodeRoundtrip) {
  const ComplexityTrack track = gopTrack();
  const ComplexityTrack decoded = ComplexityTrack::decode(track.encode());
  ASSERT_EQ(decoded.frameMegacycles.size(), track.frameMegacycles.size());
  for (std::size_t i = 0; i < track.frameMegacycles.size(); ++i) {
    EXPECT_NEAR(decoded.frameMegacycles[i], track.frameMegacycles[i], 0.01);
  }
}

TEST(ComplexityTrack, EncodingIsCompact) {
  // Delta-coded similar values: ~1-2 bytes per frame.
  const ComplexityTrack track = gopTrack();
  EXPECT_LT(track.encode().size(), track.frameMegacycles.size() * 3);
}

TEST(DvfsSchedule, AnnotatedNeverMissesWhenFeasible) {
  // 30 Mc @ 400 MHz = 75 ms < 83 ms deadline at 12 fps: feasible.
  const DvfsResult r = scheduleAnnotated(cpu(), gopTrack(), 12.0);
  EXPECT_EQ(r.missedDeadlines, 0u);
}

TEST(DvfsSchedule, AnnotatedBeatsRaceToIdle) {
  const DvfsResult annotated = scheduleAnnotated(cpu(), gopTrack(), 12.0);
  const DvfsResult race = scheduleRaceToIdle(cpu(), gopTrack(), 12.0);
  EXPECT_LT(annotated.energyJoules, race.energyJoules);
  EXPECT_LT(annotated.averageFreqMHz, race.averageFreqMHz);
  EXPECT_GT(annotated.savingsVs(race), 0.05);
}

TEST(DvfsSchedule, ReactiveMissesAtComplexitySpikes) {
  // After a string of cheap P frames the reactive policy predicts cheap,
  // picks a low OPP, and the next I frame blows the deadline.
  const DvfsResult reactive = scheduleReactive(cpu(), gopTrack(), 12.0);
  EXPECT_GT(reactive.missedDeadlines, 0u);
  const DvfsResult annotated = scheduleAnnotated(cpu(), gopTrack(), 12.0);
  EXPECT_EQ(annotated.missedDeadlines, 0u);
}

TEST(DvfsSchedule, OppTraceMatchesWorkload) {
  const DvfsResult r = scheduleAnnotated(cpu(), gopTrack(), 12.0);
  ASSERT_EQ(r.oppPerFrame.size(), 60u);
  // Heavy frames need a higher OPP than light frames.
  EXPECT_GT(r.oppPerFrame[0], r.oppPerFrame[1]);
}

TEST(DvfsSchedule, Validation) {
  ComplexityTrack empty;
  EXPECT_THROW((void)scheduleAnnotated(cpu(), empty, 12.0),
               std::invalid_argument);
  EXPECT_THROW((void)scheduleAnnotated(cpu(), gopTrack(), 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)scheduleReactive(cpu(), gopTrack(), 12.0, 0.5),
               std::invalid_argument);
}

TEST(DvfsSchedule, InfeasibleWorkloadCountsMisses) {
  ComplexityTrack heavy;
  heavy.frameMegacycles.assign(10, 100.0);  // 250 ms @ 400 MHz
  const DvfsResult r = scheduleAnnotated(cpu(), heavy, 12.0);
  EXPECT_EQ(r.missedDeadlines, 10u);
}

}  // namespace
}  // namespace anno::power
