#include "power/trace.h"

#include <gtest/gtest.h>

namespace anno::power {
namespace {

TEST(PowerTrace, EnergyIntegration) {
  PowerTrace t(0.5);  // 0.5 s per sample
  t.append(2.0);
  t.append(4.0);
  EXPECT_DOUBLE_EQ(t.energyJoules(), 3.0);
  EXPECT_DOUBLE_EQ(t.averageWatts(), 3.0);
  EXPECT_DOUBLE_EQ(t.durationSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(t.peakWatts(), 4.0);
  EXPECT_DOUBLE_EQ(t.minWatts(), 2.0);
}

TEST(PowerTrace, EmptyTrace) {
  PowerTrace t(0.1);
  EXPECT_DOUBLE_EQ(t.energyJoules(), 0.0);
  EXPECT_DOUBLE_EQ(t.averageWatts(), 0.0);
  EXPECT_EQ(t.sampleCount(), 0u);
}

TEST(PowerTrace, InvalidIntervalThrows) {
  EXPECT_THROW(PowerTrace(0.0), std::invalid_argument);
  EXPECT_THROW(PowerTrace(-1.0), std::invalid_argument);
}

TEST(PowerTrace, AppendTraceConcatenates) {
  PowerTrace a(0.1), b(0.1);
  a.append(1.0);
  b.append(2.0);
  b.append(3.0);
  a.append(b);
  EXPECT_EQ(a.sampleCount(), 3u);
  EXPECT_DOUBLE_EQ(a.averageWatts(), 2.0);
}

TEST(PowerTrace, AppendMismatchedRateThrows) {
  PowerTrace a(0.1), b(0.2);
  b.append(1.0);
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(EnergySavings, ComputesRelativeReduction) {
  PowerTrace base(1.0), opt(1.0);
  base.append(10.0);
  base.append(10.0);
  opt.append(8.0);
  opt.append(8.0);
  EXPECT_NEAR(energySavings(base, opt), 0.2, 1e-12);
}

TEST(EnergySavings, LengthRobust) {
  // Compares average power, so a dropped trailing sample barely matters.
  PowerTrace base(1.0), opt(1.0);
  for (int i = 0; i < 100; ++i) base.append(10.0);
  for (int i = 0; i < 99; ++i) opt.append(5.0);
  EXPECT_NEAR(energySavings(base, opt), 0.5, 1e-9);
}

TEST(EnergySavings, EmptyThrows) {
  PowerTrace base(1.0), opt(1.0);
  base.append(1.0);
  EXPECT_THROW((void)energySavings(base, opt), std::invalid_argument);
  EXPECT_THROW((void)energySavings(opt, base), std::invalid_argument);
}

}  // namespace
}  // namespace anno::power
