// Cross-module property sweeps over randomized inputs: the invariants that
// define the system's correctness, checked on content no human picked.
#include <gtest/gtest.h>

#include "compensate/planner.h"
#include "core/anno_codec.h"
#include "core/annotate.h"
#include "core/runtime.h"
#include "display/transfer.h"
#include "media/clipgen.h"
#include "media/rng.h"
#include "power/dvfs.h"
#include "stream/net.h"

namespace anno {
namespace {

class PropertySeed : public ::testing::TestWithParam<int> {};

TEST_P(PropertySeed, RandomTransferLutInverseIsExact) {
  // For any monotone LUT, minimumLevelFor(T(level)) <= level, and the
  // returned level always achieves the target.
  media::SplitMix64 rng(10 + GetParam());
  std::array<double, 256> lut{};
  double acc = 0.0;
  for (double& v : lut) {
    acc += rng.uniform(0.0, 1.0);
    v = acc;
  }
  const display::TransferFunction tf = display::TransferFunction::fromLut(lut);
  for (int level = 0; level < 256; level += 7) {
    const double t = tf.relLuminance(level);
    const std::uint8_t back = tf.minimumLevelFor(t);
    EXPECT_LE(back, level);
    EXPECT_GE(tf.relLuminance(back), t - 1e-12);
  }
  for (int i = 0; i < 20; ++i) {
    const double target = rng.uniform();
    const std::uint8_t level = tf.minimumLevelFor(target);
    EXPECT_GE(tf.relLuminance(level), target - 1e-12);
    if (level > 0) {
      EXPECT_LT(tf.relLuminance(level - 1), target);
    }
  }
}

TEST_P(PropertySeed, RandomClipAnnotationInvariants) {
  // Random scene mixes: the track must validate, cover every frame, keep
  // ceilings above content at q=0, and round-trip the codec byte-exactly.
  media::SplitMix64 rng(100 + GetParam());
  media::ClipProfile profile;
  profile.name = "prop";
  profile.width = 32;
  profile.height = 24;
  profile.fps = 12.0;
  profile.seed = rng.next();
  const int nscenes = 1 + static_cast<int>(rng.below(6));
  for (int i = 0; i < nscenes; ++i) {
    media::SceneSpec s;
    s.durationSeconds = rng.uniform(0.5, 2.0);
    s.backgroundLuma = static_cast<std::uint8_t>(rng.between(10, 200));
    s.backgroundSpread = static_cast<std::uint8_t>(rng.between(5, 50));
    s.highlightFraction = rng.uniform(0.0, 0.02);
    s.highlightLuma = static_cast<std::uint8_t>(rng.between(200, 255));
    profile.scenes.push_back(s);
  }
  const media::VideoClip clip = media::generateClip(profile);
  const core::AnnotationTrack track = core::annotateClip(clip);
  EXPECT_NO_THROW(core::validateTrack(track));
  EXPECT_EQ(core::decodeTrack(core::encodeTrack(track)), track);

  const auto stats = media::profileClip(clip);
  for (const core::SceneAnnotation& s : track.scenes) {
    std::uint8_t sceneMax = 0;
    for (std::uint32_t f = s.span.firstFrame; f <= s.span.lastFrame(); ++f) {
      sceneMax = std::max(sceneMax, stats[f].luminance.maxLuma);
    }
    EXPECT_GE(s.safeLuma[0], sceneMax);
  }
}

TEST_P(PropertySeed, ScheduleGainLevelInvariant) {
  // For every device and random track: gain * T(level) == 1 wherever the
  // level wasn't clamped by the floor.
  media::SplitMix64 rng(200 + GetParam());
  const media::VideoClip clip = media::generatePaperClip(
      media::allPaperClips()[rng.below(10)], 0.02, 32, 24);
  const core::AnnotationTrack track = core::annotateClip(clip);
  for (display::KnownDevice id : display::allKnownDevices()) {
    const display::DeviceModel device = display::makeDevice(id);
    for (std::size_t q = 0; q < track.qualityLevels.size(); q += 2) {
      const core::BacklightSchedule schedule =
          core::buildSchedule(track, q, device, 10);
      for (const core::BacklightCommand& cmd : schedule.commands) {
        const double rel = device.transfer.relLuminance(cmd.level);
        if (cmd.level > 10 && rel > 0.0) {
          EXPECT_NEAR(cmd.gainK * rel, 1.0, 1e-9)
              << device.name << " q=" << q << " frame=" << cmd.frame;
        }
      }
    }
  }
}

TEST_P(PropertySeed, DvfsAnnotatedDominatesRaceToIdle) {
  // For any workload, annotated DVFS never uses more energy than
  // race-to-idle and never misses more deadlines.
  media::SplitMix64 rng(300 + GetParam());
  power::ComplexityTrack track;
  const int n = 10 + static_cast<int>(rng.below(80));
  for (int i = 0; i < n; ++i) {
    track.frameMegacycles.push_back(rng.uniform(0.5, 35.0));
  }
  const power::DvfsCpu cpu = power::DvfsCpu::xscalePxa255();
  const double fps = rng.uniform(8.0, 30.0);
  const power::DvfsResult annotated =
      power::scheduleAnnotated(cpu, track, fps);
  const power::DvfsResult race = power::scheduleRaceToIdle(cpu, track, fps);
  EXPECT_LE(annotated.energyJoules, race.energyJoules + 1e-9);
  EXPECT_LE(annotated.missedDeadlines, race.missedDeadlines);
}

TEST_P(PropertySeed, TransferStatsAccounting) {
  // Wire bytes always exceed payload; duration positive; packets cover
  // the payload.
  media::SplitMix64 rng(400 + GetParam());
  stream::Link link;
  link.bandwidthBitsPerSec = rng.uniform(1e5, 1e8);
  link.latencySeconds = rng.uniform(0.0, 0.1);
  link.mtuBytes = 100 + rng.below(3000);
  for (int i = 0; i < 20; ++i) {
    const std::size_t payload = rng.below(1 << 20);
    const stream::TransferStats s = stream::transferOverLink(link, payload);
    EXPECT_GE(s.wireBytes, payload);
    EXPECT_GE(s.durationSeconds, link.latencySeconds);
    EXPECT_GE(s.packetCount * (link.mtuBytes - stream::kPacketHeaderBytes),
              payload);
  }
}

TEST_P(PropertySeed, PlanThenPredictNeverExceedsBudget) {
  // planForHistogram + plannedClipFraction + predictPerceivedEmd must
  // be mutually consistent on arbitrary histograms.
  media::SplitMix64 rng(500 + GetParam());
  media::Histogram hist;
  const int n = 100 + static_cast<int>(rng.below(5000));
  for (int i = 0; i < n; ++i) {
    hist.add(static_cast<std::uint8_t>(rng.below(256)));
  }
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  double prevEmd = -1.0;
  for (double q : {0.0, 0.05, 0.10, 0.20}) {
    const compensate::CompensationPlan plan =
        compensate::planForHistogram(device, hist, q);
    EXPECT_LE(compensate::plannedClipFraction(plan, hist), q + 1e-9);
    const double emd = compensate::predictPerceivedEmd(hist, plan);
    EXPECT_GE(emd, prevEmd - 1e-9);
    prevEmd = emd;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeed, ::testing::Range(0, 8));

}  // namespace
}  // namespace anno
