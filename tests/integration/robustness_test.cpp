// Failure-injection / fuzz-style robustness: every binary parser in the
// system must either throw a std::exception or return validated data when
// fed corrupted or random input -- never crash, hang, or hand back
// structurally invalid objects.  (A streaming client lives on a hostile
// network; parse robustness is table stakes.)
#include <gtest/gtest.h>

#include "core/anno_codec.h"
#include "core/annotate.h"
#include "media/clipgen.h"
#include "media/codec.h"
#include "media/rng.h"
#include "power/dvfs.h"
#include "stream/mux.h"
#include "stream/server.h"

namespace anno {
namespace {

std::vector<std::uint8_t> validContainer() {
  static const std::vector<std::uint8_t> bytes = [] {
    stream::MediaServer server;
    server.addClip(
        media::generatePaperClip(media::PaperClip::kOfficeXp, 0.02, 32, 24));
    const display::DeviceModel d =
        display::makeDevice(display::KnownDevice::kIpaq5555);
    return server.serve("officexp",
                        stream::ClientCapabilities{d.name, d.transfer, 1});
  }();
  return bytes;
}

/// Corrupts `count` random bytes.
std::vector<std::uint8_t> corrupt(std::vector<std::uint8_t> bytes,
                                  media::SplitMix64& rng, int count) {
  for (int i = 0; i < count && !bytes.empty(); ++i) {
    bytes[rng.below(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
  }
  return bytes;
}

class CorruptionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionFuzz, DemuxNeverCrashes) {
  media::SplitMix64 rng(1000 + GetParam());
  const auto base = validContainer();
  for (int trial = 0; trial < 40; ++trial) {
    const auto bad = corrupt(base, rng, 1 + static_cast<int>(rng.below(8)));
    try {
      const stream::DemuxedStream d = stream::demux(bad);
      // If it parsed, the pieces must be structurally sound.
      if (d.annotations) core::validateTrack(*d.annotations);
      EXPECT_GE(d.video.width, 0);
    } catch (const std::exception&) {
      // Throwing is the expected outcome for most corruptions.
    }
  }
}

TEST_P(CorruptionFuzz, TruncationNeverCrashes) {
  media::SplitMix64 rng(2000 + GetParam());
  const auto base = validContainer();
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t cut = rng.below(base.size());
    std::vector<std::uint8_t> bad(base.begin(),
                                  base.begin() + static_cast<long>(cut));
    try {
      (void)stream::demux(bad);
    } catch (const std::exception&) {
    }
  }
}

TEST_P(CorruptionFuzz, RandomBytesNeverCrashAnyParser) {
  media::SplitMix64 rng(3000 + GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::uint8_t> junk(rng.below(2000));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    try {
      (void)stream::demux(junk);
    } catch (const std::exception&) {
    }
    try {
      (void)core::decodeTrack(junk);
    } catch (const std::exception&) {
    }
    try {
      (void)media::parseClip(junk);
    } catch (const std::exception&) {
    }
    try {
      (void)power::ComplexityTrack::decode(junk);
    } catch (const std::exception&) {
    }
    try {
      media::EncodedFrame frame;
      frame.bytes = junk;
      (void)media::decodeFrame(frame, 16, 16);
    } catch (const std::exception&) {
    }
  }
}

TEST_P(CorruptionFuzz, CorruptedTrackDecodeIsSafe) {
  media::SplitMix64 rng(4000 + GetParam());
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kShrek2, 0.02, 32, 24);
  const auto base = core::encodeTrack(core::annotateClip(clip));
  for (int trial = 0; trial < 60; ++trial) {
    const auto bad = corrupt(base, rng, 1 + static_cast<int>(rng.below(4)));
    try {
      const core::AnnotationTrack t = core::decodeTrack(bad);
      // decodeTrack validates internally; reaching here means valid.
      core::validateTrack(t);
    } catch (const std::exception&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz, ::testing::Range(0, 6));

}  // namespace
}  // namespace anno
