// Cross-product coverage: the full streaming+playback pipeline over every
// (device, clip) pair, asserting the invariants that must hold regardless
// of content or display technology.
#include <gtest/gtest.h>

#include <tuple>

#include "media/clipgen.h"
#include "player/baselines.h"
#include "player/playback.h"
#include "power/power.h"
#include "stream/client.h"
#include "stream/server.h"

namespace anno {
namespace {

using MatrixParam = std::tuple<display::KnownDevice, media::PaperClip>;

class DeviceClipMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(DeviceClipMatrix, PipelineInvariantsHold) {
  const auto [deviceId, clipId] = GetParam();
  const media::VideoClip clip =
      media::generatePaperClip(clipId, 0.03, 48, 36);

  stream::MediaServer server;
  server.addClip(clip);

  stream::ClientConfig cfg{display::makeDevice(deviceId), 2, 10};
  const stream::ClientSession client(cfg, stream::makeReferencePath());
  const stream::ReceivedStream rx =
      client.receive(server.serve(clip.name, client.capabilities()));

  // Invariant 1: the annotation track is device-independent.
  EXPECT_EQ(rx.track, server.entry(clip.name).track);

  // Invariant 2: every scheduled level can display the scene's safe luma
  // (ceiling covers it) on THIS device's transfer.
  for (const core::SceneAnnotation& scene : rx.track.scenes) {
    const std::uint8_t level = rx.schedule.levelAt(scene.span.firstFrame);
    const double ceiling =
        255.0 * cfg.device.transfer.relLuminance(level);
    EXPECT_GE(ceiling + 1e-9, scene.safeLuma[2])
        << "scene at frame " << scene.span.firstFrame;
  }

  // Invariant 3: playback never uses MORE energy than the full-backlight
  // baseline, and savings stay within physical bounds.
  const power::MobileDevicePower devicePower{cfg.device};
  player::AnnotationPolicy policy(rx.schedule);
  player::PlaybackConfig pcfg;
  pcfg.qualityEvalStride = 1 << 20;
  const player::PlaybackReport r =
      player::play(clip, rx.video, policy, devicePower, pcfg);
  EXPECT_GE(r.backlightSavings(), -1e-9);
  EXPECT_LE(r.backlightSavings(), 1.0);
  EXPECT_LE(r.totalSavings(), devicePower.backlightShare() + 1e-9)
      << "total savings cannot exceed the backlight's share";

  // Invariant 4: switch count bounded by scene count.
  EXPECT_LE(r.backlightSwitches, rx.track.scenes.size());
}

std::string matrixName(const ::testing::TestParamInfo<MatrixParam>& info) {
  std::string n = display::deviceName(std::get<0>(info.param)) + "_" +
                  media::paperClipName(std::get<1>(info.param));
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    AllDevicesAllClips, DeviceClipMatrix,
    ::testing::Combine(::testing::ValuesIn(display::allKnownDevices()),
                       ::testing::ValuesIn(media::allPaperClips())),
    matrixName);

}  // namespace
}  // namespace anno
