// Quantitative claims of the paper, checked as tests (small/fast variants of
// the bench experiments; EXPERIMENTS.md records the full-size numbers).
#include <gtest/gtest.h>

#include "media/clipgen.h"
#include "player/experiment.h"
#include "power/power.h"

namespace anno {
namespace {

player::ClipExperimentResult runClip(media::PaperClip clip,
                                     double scale = 0.08) {
  const media::VideoClip v = media::generatePaperClip(clip, scale, 64, 48);
  player::PlaybackConfig cfg;
  cfg.qualityEvalStride = 1 << 20;  // skip quality eval: power only
  return player::runAnnotationExperiment(v, power::makeIpaq5555Power(), {},
                                         cfg);
}

TEST(PaperClaims, BacklightShareIs25To30Percent) {
  const double share = power::makeIpaq5555Power().backlightShare();
  EXPECT_GE(share, 0.25);
  EXPECT_LE(share, 0.30);
}

TEST(PaperClaims, DarkClipsReachSixtyPercentBacklightSavings) {
  // Abstract: "up to 65% of backlight power can be saved".
  double best = 0.0;
  for (media::PaperClip clip : {media::PaperClip::kTheMovie,
                                media::PaperClip::kCatwoman,
                                media::PaperClip::kReturnOfTheKing}) {
    const auto result = runClip(clip);
    best = std::max(best, result.reports.back().backlightSavings());
  }
  EXPECT_GT(best, 0.55);
  EXPECT_LT(best, 0.85) << "savings beyond ~80% would be suspicious";
}

TEST(PaperClaims, IceAgeShowsAlmostNoImprovement) {
  // Fig. 10: "with the exception of ice age, which shows almost no
  // improvement".
  const auto result = runClip(media::PaperClip::kIceAge);
  EXPECT_LT(result.reports[1].backlightSavings(), 0.15);
  EXPECT_LT(result.reports[1].totalSavings(), 0.05);
}

TEST(PaperClaims, HunterSubresIsLimited) {
  // "In two cases (hunter subres and ice age) the background in the videos
  // is bright, so the results are limited".
  const auto hunter = runClip(media::PaperClip::kHunterSubres);
  const auto dark = runClip(media::PaperClip::kCatwoman);
  for (std::size_t q = 0; q < 5; ++q) {
    EXPECT_LT(hunter.reports[q].backlightSavings(),
              dark.reports[q].backlightSavings())
        << "quality level " << q;
  }
}

TEST(PaperClaims, FivePercentQualityAlreadyHelpsALot) {
  // "Even at the 5% quality loss we already start seeing a huge improvement
  // in the backlight power consumption."
  const auto result = runClip(media::PaperClip::kReturnOfTheKing);
  const double q0 = result.reports[0].backlightSavings();
  const double q5 = result.reports[1].backlightSavings();
  EXPECT_GT(q5, q0 + 0.15);
}

TEST(PaperClaims, TotalSavingsFifteenToTwentyPercent) {
  // "showing up to 15-20% power reduction for the entire device".
  double best = 0.0;
  for (media::PaperClip clip :
       {media::PaperClip::kTheMovie, media::PaperClip::kCatwoman}) {
    const auto result = runClip(clip);
    best = std::max(best, result.reports.back().totalSavings());
  }
  EXPECT_GT(best, 0.14);
  EXPECT_LT(best, 0.26);
}

TEST(PaperClaims, SavingsMonotoneInQualityLevel) {
  for (media::PaperClip clip :
       {media::PaperClip::kIRobot, media::PaperClip::kShrek2}) {
    const auto result = runClip(clip, 0.05);
    for (std::size_t q = 1; q < result.reports.size(); ++q) {
      EXPECT_GE(result.reports[q].backlightSavings(),
                result.reports[q - 1].backlightSavings() - 1e-9)
          << media::paperClipName(clip) << " q=" << q;
    }
  }
}

TEST(PaperClaims, SavingsAreResolutionIndependent) {
  // EXPERIMENTS.md runs the benches at reduced resolution; the savings
  // percentages must not depend on it (they are functions of the luminance
  // DISTRIBUTION, which the generator reproduces at any raster size).
  const auto savingsAt = [](int w, int h) {
    const media::VideoClip v =
        media::generatePaperClip(media::PaperClip::kCatwoman, 0.06, w, h);
    player::PlaybackConfig cfg;
    cfg.qualityEvalStride = 1 << 20;
    const auto result = player::runAnnotationExperiment(
        v, power::makeIpaq5555Power(), {}, cfg);
    return result.reports[2].backlightSavings();
  };
  const double small = savingsAt(48, 36);
  const double large = savingsAt(128, 96);
  EXPECT_NEAR(small, large, 0.05);
}

TEST(PaperClaims, GoldenAnnotationRegression) {
  // Pin the exact annotation output for a fixed clip configuration: any
  // unintended change to the generator, profiler, scene detector or
  // budget arithmetic shows up here before it silently skews the figures.
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kOfficeXp, 0.06, 48, 36);
  const core::AnnotationTrack track = core::annotateClip(clip);
  ASSERT_GE(track.scenes.size(), 1u);
  // Re-derive the expected values from first principles rather than magic
  // numbers: scene 0's safeLuma at q=0 must equal the accumulated
  // histogram's true maximum, and at each q the budget bound must be tight
  // (clipping less than the budget but more than the next-lower level
  // would allow).
  const auto stats = media::profileClip(clip);
  const core::SceneAnnotation& s0 = track.scenes.front();
  media::Histogram hist;
  for (std::uint32_t f = s0.span.firstFrame; f <= s0.span.lastFrame(); ++f) {
    hist.accumulate(stats[f].histogram);
  }
  EXPECT_EQ(s0.safeLuma[0], hist.highPoint());
  for (std::size_t q = 0; q < track.qualityLevels.size(); ++q) {
    EXPECT_LE(hist.fractionAbove(s0.safeLuma[q]),
              track.qualityLevels[q] + 1e-12);
    if (s0.safeLuma[q] > 0) {
      EXPECT_GT(hist.fractionAbove(
                    static_cast<std::uint8_t>(s0.safeLuma[q] - 1)),
                track.qualityLevels[q])
          << "safeLuma must be the TIGHTEST level meeting the budget";
    }
  }
  // And a true golden pin for cross-run determinism.
  static constexpr std::uint64_t kExpectedFrameCount = 22;
  EXPECT_EQ(track.frameCount, kExpectedFrameCount);
}

TEST(PaperClaims, MeasuredDaqAgreesWithAnalyticModel) {
  // Sec. 5: power results come from both analytic simulation (Fig. 9) and
  // DAQ measurement (Fig. 10); the two must agree.
  const media::VideoClip v =
      media::generatePaperClip(media::PaperClip::kOfficeXp, 0.05, 48, 36);
  player::PlaybackConfig cfg;
  cfg.qualityEvalStride = 1 << 20;
  const auto result = player::runAnnotationExperiment(
      v, power::makeIpaq5555Power(), {}, cfg);
  const player::PlaybackReport& r = result.reports[2];
  const double analytic = r.totalEnergyJ / r.durationSeconds;
  const double measured = player::measureAverageWatts(r, v.fps);
  EXPECT_NEAR(measured, analytic, 0.03 * analytic);
}

}  // namespace
}  // namespace anno
