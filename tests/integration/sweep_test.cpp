// Full-catalog sweeps: the Fig. 9 experiment's structural invariants on
// every paper clip, and camera validation across camera configurations --
// the breadth checks behind the headline tables.
#include <gtest/gtest.h>

#include <tuple>

#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "media/clipgen.h"
#include "player/experiment.h"
#include "power/power.h"
#include "quality/validate.h"

namespace anno {
namespace {

class ClipSweep : public ::testing::TestWithParam<media::PaperClip> {};

TEST_P(ClipSweep, Fig9InvariantsHoldPerClip) {
  const media::VideoClip clip =
      media::generatePaperClip(GetParam(), 0.04, 48, 36);
  player::PlaybackConfig cfg;
  cfg.qualityEvalStride = 1 << 20;
  const player::ClipExperimentResult result =
      player::runAnnotationExperiment(clip, power::makeIpaq5555Power(), {},
                                      cfg);
  double prev = -1.0;
  for (std::size_t q = 0; q < result.reports.size(); ++q) {
    const player::PlaybackReport& r = result.reports[q];
    // Savings monotone in quality level, inside physical bounds.
    EXPECT_GE(r.backlightSavings(), prev - 1e-9) << "q=" << q;
    EXPECT_GE(r.backlightSavings(), -1e-9);
    EXPECT_LT(r.backlightSavings(), 0.97);
    prev = r.backlightSavings();
    // Total savings = backlight savings x backlight share (no other
    // component changes in this experiment).
    const double share = power::makeIpaq5555Power().backlightShare();
    EXPECT_NEAR(r.totalSavings(), r.backlightSavings() * share, 0.02)
        << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllClips, ClipSweep, ::testing::ValuesIn(media::allPaperClips()),
    [](const ::testing::TestParamInfo<media::PaperClip>& paramInfo) {
      std::string n = media::paperClipName(paramInfo.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

/// Camera-parameter sweep: the validation methodology must deliver the same
/// verdicts regardless of the camera a lab happens to own.
class CameraSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(CameraSweep, ValidationVerdictsAreCameraInvariant) {
  const auto [gamma, vignetting, noise] = GetParam();
  quality::CameraConfig camCfg;
  camCfg.responseGamma = gamma;
  camCfg.vignetting = vignetting;
  camCfg.noiseRms = noise;
  quality::CameraModel camera(camCfg);

  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  media::SceneSpec scene;
  scene.backgroundLuma = 55;
  scene.backgroundSpread = 25;
  scene.highlightFraction = 0.004;
  scene.highlightLuma = 245;
  const media::Image original =
      media::renderSceneFrame(scene, 96, 72, 0.0, media::SplitMix64(7));

  // Properly compensated dimming must PASS with any camera...
  const compensate::CompensationPlan plan = compensate::planForHistogram(
      device, media::Histogram::ofImage(original), 0.05);
  const media::Image compensated =
      compensate::contrastEnhance(original, plan.gainK);
  const quality::ValidationReport good = quality::validateCompensation(
      device, camera, original, compensated, plan.backlightLevel);
  EXPECT_TRUE(good.pass) << "gamma=" << gamma << " vig=" << vignetting
                         << " noise=" << noise << " -> "
                         << quality::toString(good.comparison);

  // ...and naked dimming must FAIL with any camera.
  const quality::ValidationReport bad = quality::validateCompensation(
      device, camera, original, original, plan.backlightLevel);
  EXPECT_FALSE(bad.pass) << "gamma=" << gamma;
}

INSTANTIATE_TEST_SUITE_P(
    CameraConfigs, CameraSweep,
    ::testing::Values(std::make_tuple(1.8, 0.0, 0.0),
                      std::make_tuple(2.2, 0.12, 0.8),
                      std::make_tuple(2.6, 0.25, 1.5),
                      std::make_tuple(2.0, 0.05, 2.5)));

}  // namespace
}  // namespace anno
