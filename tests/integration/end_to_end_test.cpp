// End-to-end tests of the full system model (paper Fig. 1): server annotates
// and compensates, stream crosses the network, the client builds its
// backlight schedule, the player measures power and quality, and the camera
// validates the result -- all in one flow.
#include <gtest/gtest.h>

#include "core/anno_codec.h"
#include "media/clipgen.h"
#include "player/baselines.h"
#include "player/playback.h"
#include "power/power.h"
#include "quality/validate.h"
#include "stream/client.h"
#include "stream/loss.h"
#include "stream/proxy.h"
#include "stream/server.h"

namespace anno {
namespace {

stream::ClientConfig ipaqClient(std::size_t quality) {
  return stream::ClientConfig{
      display::makeDevice(display::KnownDevice::kIpaq5555), quality, 10};
}

TEST(EndToEnd, ServerPathSavesPowerWithAcceptableQuality) {
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kCatwoman, 0.04, 48, 36);
  stream::MediaServer server;
  server.addClip(clip);

  const stream::ClientSession client(ipaqClient(1),
                                     stream::makeReferencePath());
  const stream::ReceivedStream rx =
      client.receive(server.serve(clip.name, client.capabilities()));

  const power::MobileDevicePower dp = power::makeIpaq5555Power();
  player::AnnotationPolicy policy(rx.schedule);
  const player::PlaybackReport report =
      player::play(clip, rx.video, policy, dp);

  EXPECT_GT(report.backlightSavings(), 0.3) << "dark clip, 5% quality";
  EXPECT_GT(report.totalSavings(), 0.08);
  EXPECT_LT(report.meanEmd, 12.0);
}

TEST(EndToEnd, ProxyPathAlsoWorks) {
  // Legacy server (raw stream) + annotating proxy: the paper's alternative
  // deployment, "no changes for the client".
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kIRobot, 0.04, 48, 36);
  stream::MediaServer server;
  server.addClip(clip);
  stream::ProxyNode proxy;

  const stream::ClientSession client(ipaqClient(2),
                                     stream::makeReferencePath());
  const auto raw = server.serveRaw(clip.name);
  const stream::ReceivedStream rx =
      client.receive(proxy.transcode(raw, client.capabilities()));

  const power::MobileDevicePower dp = power::makeIpaq5555Power();
  player::AnnotationPolicy policy(rx.schedule);
  const player::PlaybackReport report =
      player::play(clip, rx.video, policy, dp);
  EXPECT_GT(report.backlightSavings(), 0.2);
}

TEST(EndToEnd, CameraValidatesServedFrames) {
  // Close the loop with the paper's camera methodology: photograph the
  // panel showing (a) the original frame at full backlight and (b) the
  // served compensated frame at the scheduled backlight; histograms must
  // match within the quality thresholds.
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kTheMovie, 0.03, 64, 48);
  stream::MediaServer server;
  server.addClip(clip);
  const stream::ClientConfig cfg = ipaqClient(1);
  const stream::ClientSession client(cfg, stream::makeReferencePath());
  const stream::ReceivedStream rx =
      client.receive(server.serve(clip.name, client.capabilities()));

  quality::CameraModel camera;
  // Thresholds widened slightly: the toy codec adds its own noise on top of
  // the compensation being validated.
  quality::QualityThresholds thresholds;
  thresholds.maxAveragePointShift = 16.0;
  thresholds.maxEarthMovers = 18.0;
  thresholds.minIntersection = 0.45;
  int checked = 0;
  for (std::uint32_t f = 0; f < clip.frames.size(); f += 8) {
    const quality::ValidationReport report = quality::validateCompensation(
        display::makeDevice(display::KnownDevice::kIpaq5555), camera,
        clip.frames[f], rx.video.frames[f], rx.schedule.levelAt(f),
        thresholds);
    EXPECT_TRUE(report.pass)
        << "frame " << f << ": " << quality::toString(report.comparison)
        << " level=" << int(rx.schedule.levelAt(f));
    ++checked;
  }
  EXPECT_GE(checked, 5);
}

TEST(EndToEnd, PacketLossInteractsWithBacklightSchedule) {
  // Concealment repeats old frames while the backlight schedule marches on;
  // if losses straddle a scene cut, the client briefly shows an old scene's
  // (compensated) pixels at the NEW scene's backlight level.  Quality under
  // loss must therefore be no better than the loss-free run -- and the
  // system must remain stable (no crash, schedule still applies).
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kCatwoman, 0.04, 48, 36);
  const power::MobileDevicePower dp = power::makeIpaq5555Power();
  const core::AnnotationTrack track = core::annotateClip(clip);
  const core::BacklightSchedule schedule =
      core::buildSchedule(track, 2, dp.displayDevice());
  const media::VideoClip compensated =
      core::compensateClip(clip, track, 2, dp.displayDevice());
  const media::EncodedClip encoded = media::encodeClip(compensated, {75, 8});
  const stream::Link wifi = stream::makeReferencePath().lastHop();

  const auto playAtLoss = [&](double loss) {
    const stream::ConcealedPlayback out = stream::decodeWithConcealment(
        encoded, stream::deliverFrames(encoded, wifi, {loss, 21}));
    player::AnnotationPolicy policy(schedule);
    player::PlaybackConfig cfg;
    cfg.qualityEvalStride = 3;
    return player::play(clip, out.video, policy, dp, cfg);
  };
  const player::PlaybackReport clean = playAtLoss(0.0);
  const player::PlaybackReport lossy = playAtLoss(0.08);
  EXPECT_GE(lossy.meanEmd, clean.meanEmd - 0.2);
  EXPECT_LE(lossy.meanSsim, clean.meanSsim + 0.01);
  // Power is unaffected: the schedule runs on frame indices, not content.
  EXPECT_NEAR(lossy.backlightSavings(), clean.backlightSavings(), 1e-9);
}

TEST(EndToEnd, AnnotationOverheadNegligibleOnWire) {
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kShrek2, 0.04, 48, 36);
  stream::MediaServer server;
  server.addClip(clip);
  const auto withAnno =
      server.serve(clip.name,
                   stream::ClientCapabilities{
                       "ipaq5555",
                       display::makeDevice(display::KnownDevice::kIpaq5555)
                           .transfer,
                       0});
  const auto withoutAnno = server.serveRaw(clip.name);
  // Compensated frames compress differently, so compare annotation size to
  // stream size rather than stream-to-stream.
  const core::AnnotationTrack& track = server.entry(clip.name).track;
  const std::size_t annoBytes = core::encodeTrack(track).size();
  EXPECT_LT(annoBytes * 100, withoutAnno.size())
      << "annotations must be <1% of the stream";
  EXPECT_GT(withAnno.size(), annoBytes * 50);
}

TEST(EndToEnd, MultipleDevicesServedFromSameCatalog) {
  // One annotated catalog entry serves every PDA type: only the negotiated
  // transfer changes the delivered gains/levels.
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kOfficeXp, 0.03, 32, 24);
  stream::MediaServer server;
  server.addClip(clip);
  const power::MobileDevicePower dp = power::makeIpaq5555Power();

  double prevSavings = -1.0;
  for (display::KnownDevice id : display::allKnownDevices()) {
    stream::ClientConfig cfg{display::makeDevice(id), 2, 10};
    const stream::ClientSession client(cfg, stream::makeReferencePath());
    const stream::ReceivedStream rx =
        client.receive(server.serve(clip.name, client.capabilities()));
    EXPECT_EQ(rx.video.frames.size(), clip.frames.size());
    EXPECT_EQ(rx.track, server.entry(clip.name).track)
        << "annotations are device-independent";
    player::AnnotationPolicy policy(rx.schedule);
    // Use the rx device for playback power so levels match the transfer.
    const power::MobileDevicePower dpi(cfg.device);
    const player::PlaybackReport r =
        player::play(clip, rx.video, policy, dpi);
    EXPECT_GE(r.backlightSavings(), 0.0);
    prevSavings = r.backlightSavings();
  }
  (void)prevSavings;
}

}  // namespace
}  // namespace anno
