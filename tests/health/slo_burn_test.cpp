// SLO burn-rate state-machine tests: synthetic step/ramp/spike signals
// with HAND-COMPUTED fire/clear tick indices, the no-flapping hysteresis
// guarantee, and the underweight-evidence hold.  These pin the exact tick
// arithmetic tools/fleet_health asserts end-to-end.
#include "telemetry/slo.h"

#include <gtest/gtest.h>

#include <optional>

namespace anno::telemetry {
namespace {

SloWindowValue wv(double value, double weight = 1000.0, bool ready = true) {
  return SloWindowValue{value, weight, ready};
}

SloRule maxRule() {
  SloRule r;
  r.name = "stall_rate";
  r.signal = "stall_rate";
  r.bound = SloBoundKind::kMax;
  r.limit = 0.1;
  r.hysteresis = 0.1;
  r.fastWindowTicks = 5;
  r.slowWindowTicks = 20;
  r.clearHoldTicks = 3;
  r.warmupTicks = 20;
  return r;
}

TEST(SloRuleEngine, ConstructorValidatesRule) {
  SloRule r = maxRule();
  r.name = "";
  EXPECT_THROW(SloRuleEngine{r}, std::invalid_argument);
  r = maxRule();
  r.fastWindowTicks = 0;
  EXPECT_THROW(SloRuleEngine{r}, std::invalid_argument);
  r = maxRule();
  r.fastWindowTicks = 30;  // exceeds slow
  EXPECT_THROW(SloRuleEngine{r}, std::invalid_argument);
  r = maxRule();
  r.bound = SloBoundKind::kBand;
  r.limitHigh = r.limit;  // band needs limit < limitHigh
  EXPECT_THROW(SloRuleEngine{r}, std::invalid_argument);
  r = maxRule();
  r.hysteresis = -0.1;
  EXPECT_THROW(SloRuleEngine{r}, std::invalid_argument);
}

TEST(SloRuleEngine, StepFiresOnlyWhenBothWindowsViolate) {
  SloRuleEngine engine(maxRule());
  // Healthy through warmup and beyond.
  for (std::uint64_t t = 0; t <= 40; ++t) {
    EXPECT_FALSE(engine.evaluate(t, wv(0.05), wv(0.05)).has_value()) << t;
  }
  EXPECT_EQ(engine.status().state, SloRuleState::kOk);
  // Step: the fast window sees the violation first (ticks 41..49); the
  // slow window is still diluted -> no page on the leading edge.
  for (std::uint64_t t = 41; t <= 49; ++t) {
    EXPECT_FALSE(engine.evaluate(t, wv(0.2), wv(0.05)).has_value()) << t;
  }
  // Tick 50: the slow window has absorbed the step -> fires EXACTLY here.
  const auto fired = engine.evaluate(50, wv(0.2), wv(0.15));
  ASSERT_TRUE(fired.has_value());
  EXPECT_TRUE(fired->fired);
  EXPECT_EQ(fired->tick, 50u);
  EXPECT_EQ(fired->rule, "stall_rate");
  EXPECT_DOUBLE_EQ(fired->fastValue, 0.2);
  EXPECT_DOUBLE_EQ(fired->limit, 0.1);
  EXPECT_EQ(engine.status().fireCount, 1u);
  EXPECT_EQ(engine.status().lastTransitionTick, 50u);
}

TEST(SloRuleEngine, SpikeShorterThanFastWindowNeverPages) {
  SloRuleEngine engine(maxRule());
  for (std::uint64_t t = 0; t <= 30; ++t) {
    (void)engine.evaluate(t, wv(0.05), wv(0.05));
  }
  // A transient spike violates the fast window only; the slow window's
  // confirmation never arrives.
  for (std::uint64_t t = 31; t <= 36; ++t) {
    EXPECT_FALSE(engine.evaluate(t, wv(0.5), wv(0.06)).has_value()) << t;
  }
  EXPECT_EQ(engine.status().state, SloRuleState::kOk);
  EXPECT_EQ(engine.status().fireCount, 0u);
}

TEST(SloRuleEngine, RampFiresWhenSlowWindowCrosses) {
  SloRule r = maxRule();
  r.warmupTicks = 10;
  SloRuleEngine engine(r);
  // Linear ramp; the slow window lags the fast one by 5 ticks' worth of
  // signal.  fast(t) = t/100 crosses 0.1 at t = 11; slow(t) = (t-5)/100
  // crosses at t = 16 -> hand-computed first firing tick 16.
  std::uint64_t firedAt = 0;
  for (std::uint64_t t = 0; t <= 30 && firedAt == 0; ++t) {
    const double fast = static_cast<double>(t) / 100.0;
    const double slow = (static_cast<double>(t) - 5.0) / 100.0;
    if (engine.evaluate(t, wv(fast), wv(slow)).has_value()) firedAt = t;
  }
  EXPECT_EQ(firedAt, 16u);
}

TEST(SloRuleEngine, ClearNeedsHysteresisMarginAndHold) {
  SloRuleEngine engine(maxRule());
  for (std::uint64_t t = 0; t <= 49; ++t) {
    (void)engine.evaluate(t, wv(0.05), wv(0.05));
  }
  ASSERT_TRUE(engine.evaluate(50, wv(0.2), wv(0.15)).has_value());
  // Back under the limit but INSIDE the hysteresis band
  // (0.09 < 0.095 <= 0.1): not clear-eligible -- a signal oscillating on
  // the threshold must not flap.
  for (std::uint64_t t = 51; t <= 80; ++t) {
    EXPECT_FALSE(engine.evaluate(t, wv(0.095), wv(0.12)).has_value()) << t;
  }
  EXPECT_EQ(engine.status().state, SloRuleState::kFiring);
  // Clear-eligible (0.08 <= 0.1 * 0.9) for clearHoldTicks = 3 consecutive
  // ticks: streak ticks 81, 82, clears EXACTLY on 83.
  EXPECT_FALSE(engine.evaluate(81, wv(0.08), wv(0.1)).has_value());
  EXPECT_FALSE(engine.evaluate(82, wv(0.08), wv(0.1)).has_value());
  const auto cleared = engine.evaluate(83, wv(0.08), wv(0.1));
  ASSERT_TRUE(cleared.has_value());
  EXPECT_FALSE(cleared->fired);
  EXPECT_EQ(cleared->tick, 83u);
  EXPECT_EQ(engine.status().state, SloRuleState::kOk);
  EXPECT_EQ(engine.status().fireCount, 1u);  // one event pair, no storm
}

TEST(SloRuleEngine, UnderweightTickResetsClearStreakAndBlocksFiring) {
  SloRule r = maxRule();
  r.minWeight = 100.0;
  SloRuleEngine engine(r);
  // Violating values with too little evidence never fire.
  for (std::uint64_t t = 0; t <= 40; ++t) {
    EXPECT_FALSE(
        engine.evaluate(t, wv(0.5, 10.0), wv(0.5, 10.0)).has_value());
  }
  EXPECT_EQ(engine.status().state, SloRuleState::kWarmup);
  // With evidence, it fires.
  ASSERT_TRUE(engine.evaluate(41, wv(0.5), wv(0.5)).has_value());
  // Two clear-eligible ticks, then an underweight tick: the streak resets
  // (absence of evidence is not recovery), so clearing needs 3 MORE.
  (void)engine.evaluate(42, wv(0.08), wv(0.1));
  (void)engine.evaluate(43, wv(0.08), wv(0.1));
  EXPECT_FALSE(engine.evaluate(44, wv(0.08, 10.0), wv(0.1)).has_value());
  EXPECT_FALSE(engine.evaluate(45, wv(0.08), wv(0.1)).has_value());
  EXPECT_FALSE(engine.evaluate(46, wv(0.08), wv(0.1)).has_value());
  const auto cleared = engine.evaluate(47, wv(0.08), wv(0.1));
  ASSERT_TRUE(cleared.has_value());
  EXPECT_EQ(cleared->tick, 47u);
}

TEST(SloRuleEngine, WarmupGatesTheFirstEvaluation) {
  SloRule r = maxRule();
  r.warmupTicks = 10;
  SloRuleEngine engine(r);
  // Violating from tick 0: warmup holds until tick + 1 >= 10, so the
  // first possible firing is tick 9 -- and it fires THAT tick (warmup
  // exit falls through to evaluation).
  for (std::uint64_t t = 0; t <= 8; ++t) {
    EXPECT_FALSE(engine.evaluate(t, wv(0.5), wv(0.5)).has_value()) << t;
    EXPECT_EQ(engine.status().state, SloRuleState::kWarmup);
  }
  const auto fired = engine.evaluate(9, wv(0.5), wv(0.5));
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->tick, 9u);
}

TEST(SloRuleEngine, WarmupDefaultsToSlowWindow) {
  SloRule r = maxRule();
  r.warmupTicks = 0;  // -> slowWindowTicks = 20
  SloRuleEngine engine(r);
  for (std::uint64_t t = 0; t <= 18; ++t) {
    EXPECT_FALSE(engine.evaluate(t, wv(0.5), wv(0.5)).has_value()) << t;
  }
  const auto fired = engine.evaluate(19, wv(0.5), wv(0.5));
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->tick, 19u);
}

TEST(SloRuleEngine, NotReadyWindowsHoldState) {
  SloRuleEngine engine(maxRule());
  for (std::uint64_t t = 0; t <= 100; ++t) {
    EXPECT_FALSE(
        engine.evaluate(t, wv(0.5, 1000.0, false), wv(0.5)).has_value());
  }
  EXPECT_EQ(engine.status().state, SloRuleState::kWarmup);
}

TEST(SloRuleEngine, MinBoundFiresBelowAndClearsAbove) {
  SloRule r = maxRule();
  r.name = "cache_hit_rate";
  r.bound = SloBoundKind::kMin;
  r.limit = 0.85;
  SloRuleEngine engine(r);
  for (std::uint64_t t = 0; t <= 19; ++t) {
    (void)engine.evaluate(t, wv(0.95), wv(0.95));
  }
  const auto fired = engine.evaluate(20, wv(0.7), wv(0.8));
  ASSERT_TRUE(fired.has_value());
  EXPECT_LT(engine.status().margin, 0.0);  // violation depth is negative
  // Clear bound mirrors upward: needs v >= 0.85 * 1.1 = 0.935.
  for (std::uint64_t t = 21; t <= 30; ++t) {
    EXPECT_FALSE(engine.evaluate(t, wv(0.9), wv(0.9)).has_value()) << t;
  }
  (void)engine.evaluate(31, wv(0.95), wv(0.9));
  (void)engine.evaluate(32, wv(0.95), wv(0.9));
  const auto cleared = engine.evaluate(33, wv(0.95), wv(0.9));
  ASSERT_TRUE(cleared.has_value());
  EXPECT_EQ(cleared->tick, 33u);
  EXPECT_GT(engine.status().margin, 0.0);
}

TEST(SloRuleEngine, BandFiresOnEitherEdgeAndNamesIt) {
  SloRule r = maxRule();
  r.name = "watts";
  r.bound = SloBoundKind::kBand;
  r.limit = 0.5;
  r.limitHigh = 2.0;
  r.warmupTicks = 1;
  SloRuleEngine low(r);
  const auto lowFired = low.evaluate(0, wv(0.3), wv(0.3));
  ASSERT_TRUE(lowFired.has_value());
  EXPECT_DOUBLE_EQ(lowFired->limit, 0.5);  // names the violated edge

  SloRuleEngine high(r);
  const auto highFired = high.evaluate(0, wv(2.5), wv(2.5));
  ASSERT_TRUE(highFired.has_value());
  EXPECT_DOUBLE_EQ(highFired->limit, 2.0);

  SloRuleEngine healthy(r);
  EXPECT_FALSE(healthy.evaluate(0, wv(1.0), wv(1.0)).has_value());
  EXPECT_GT(healthy.status().margin, 0.0);
}

TEST(SloRuleEngine, RefiresAfterClearing) {
  SloRule r = maxRule();
  r.warmupTicks = 1;
  SloRuleEngine engine(r);
  ASSERT_TRUE(engine.evaluate(0, wv(0.5), wv(0.5)).has_value());
  (void)engine.evaluate(1, wv(0.05), wv(0.05));
  (void)engine.evaluate(2, wv(0.05), wv(0.05));
  ASSERT_TRUE(engine.evaluate(3, wv(0.05), wv(0.05)).has_value());  // clear
  const auto refired = engine.evaluate(4, wv(0.5), wv(0.5));
  ASSERT_TRUE(refired.has_value());
  EXPECT_TRUE(refired->fired);
  EXPECT_EQ(engine.status().fireCount, 2u);
}

}  // namespace
}  // namespace anno::telemetry
