// The shared histogram-quantile estimator and its exporter surface:
// bucket-interpolated p50/p90/p99 vs EXACT quantiles of the raw sample
// stream (agreement within one bucket width), edge cases (+Inf clamp,
// first-bucket interpolation, empty), the JSON exporter's quantile
// fields, and the hostile-name Prometheus escaping regression
// (label values and HELP text with \n, \\ and ").
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace anno::telemetry {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

TEST(QuantileEstimator, MatchesExactQuantilesWithinOneBucket) {
  const std::vector<double> bounds = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<std::uint64_t> counts(bounds.size() + 1, 0);
  std::vector<double> samples;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    // Deterministic draw in [0, 10): skewed toward small values like a
    // latency distribution.
    const double u =
        static_cast<double>(splitmix64(i) >> 11) * 0x1.0p-53;
    const double v = 10.0 * u * u;
    samples.push_back(v);
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    counts[static_cast<std::size_t>(it - bounds.begin())]++;
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const double est = quantileFromBucketCounts(bounds, counts, q);
    const double exact =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    // The estimator interpolates inside one bucket; it can never be off
    // by more than that bucket's width (1.0 here).
    EXPECT_NEAR(est, exact, 1.0) << "q=" << q;
  }
}

TEST(QuantileEstimator, EdgeCases) {
  const std::vector<double> bounds = {1.0, 2.0};
  // Empty histogram (and empty bounds) -> 0.
  EXPECT_EQ(quantileFromBucketCounts(bounds, {0, 0, 0}, 0.99), 0.0);
  EXPECT_EQ(quantileFromBucketCounts({}, {}, 0.5), 0.0);
  // All mass in the +Inf bucket clamps to the last finite bound.
  EXPECT_EQ(quantileFromBucketCounts(bounds, {0, 0, 7}, 0.5), 2.0);
  // First bucket interpolates up from 0: one sample, rank 0.5 of 1.
  EXPECT_DOUBLE_EQ(quantileFromBucketCounts(bounds, {1, 0, 0}, 0.5), 0.5);
  // Uniform mass: p50 lands exactly on the first bound.
  EXPECT_DOUBLE_EQ(quantileFromBucketCounts(bounds, {1, 1, 0}, 0.5), 1.0);
  // q clamps to [0, 1].
  EXPECT_EQ(quantileFromBucketCounts(bounds, {1, 1, 0}, 2.0),
            quantileFromBucketCounts(bounds, {1, 1, 0}, 1.0));
}

TEST(QuantileEstimator, MonotoneInQ) {
  const std::vector<double> bounds = {0.125, 0.25, 0.5, 1, 2, 4, 8};
  const std::vector<std::uint64_t> counts = {5, 17, 40, 20, 9, 4, 2, 3};
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = quantileFromBucketCounts(bounds, counts, q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(QuantileExport, JsonCarriesQuantilesFromTheSameEstimator) {
  Registry registry;
  Histogram& h = registry.histogram("startup_seconds",
                                    {0.25, 0.5, 1.0, 2.0}, {}, "startup");
  for (int i = 0; i < 100; ++i) h.observe(0.01 * i);  // 0 .. 0.99
  const Snapshot snap = scrape(registry);
  ASSERT_EQ(snap.instruments.size(), 1u);
  const HistogramSnapshot& hs = snap.instruments[0].histogram;
  const double p50 = histogramQuantile(hs, 0.5);
  const double p99 = histogramQuantile(hs, 0.99);
  EXPECT_DOUBLE_EQ(p50, quantileFromBucketCounts(hs.bounds, hs.counts, 0.5));
  EXPECT_GT(p99, p50);
  const std::string json = toJson(snap);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(PrometheusEscaping, HostileLabelValuesAndHelpSurviveExposition) {
  Registry registry;
  registry
      .counter("hostile_total",
               {{"path", "a\nb"},
                {"quote", "she said \"hi\""},
                {"win", "C:\\temp\\x"}},
               "help with\nnewline and back\\slash")
      .inc(3);
  const std::string text = toPrometheusText(scrape(registry));
  // Label values: \n -> \n, " -> \", \\ -> \\ (exposition format 0.0.4).
  EXPECT_NE(text.find("path=\"a\\nb\""), std::string::npos) << text;
  EXPECT_NE(text.find("quote=\"she said \\\"hi\\\"\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("win=\"C:\\\\temp\\\\x\""), std::string::npos) << text;
  // HELP text escapes newlines/backslashes too -- a raw \n would truncate
  // the comment and corrupt every following line.
  EXPECT_NE(
      text.find(
          "# HELP hostile_total help with\\nnewline and back\\\\slash\n"),
      std::string::npos)
      << text;
  // No RAW newline may survive inside any line: every '\n' in the output
  // must be a line terminator followed by a valid line start.
  for (std::size_t i = 0; (i = text.find('\n', i)) != std::string::npos;
       ++i) {
    if (i + 1 < text.size()) {
      const char next = text[i + 1];
      EXPECT_TRUE(next == '#' || next == 'h') << "offset " << i;
    }
  }
  EXPECT_NE(text.find("hostile_total{"), std::string::npos);
  EXPECT_NE(text.find("} 3\n"), std::string::npos);
}

TEST(PrometheusEscaping, JsonExporterEscapesTheSameHostileNames) {
  Registry registry;
  registry.counter("hostile_total", {{"k", "v\"\\\n"}}, "h").inc();
  const std::string json = toJson(scrape(registry));
  EXPECT_NE(json.find("v\\\"\\\\\\n"), std::string::npos) << json;
  // The document must not contain a raw control character.
  for (char c : json) {
    EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != '\n')
        << "raw control char in JSON";
  }
}

}  // namespace
}  // namespace anno::telemetry
