// The live-health arm through the REAL serving stack at test scale: a
// clean soak fires nothing, an injected fault-rate step fires the fault
// SLO inside its degradation window (under both scheduler policies),
// firings freeze flight-recorder captures, and the whole event stream is
// byte-deterministic -- same config twice, and worker-pool delivery
// pinned identical to serial.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "soak/driver.h"

namespace anno::soak {
namespace {

SoakConfig baseConfig() {
  SoakConfig cfg;
  cfg.mix.sessions = 1200;
  cfg.mix.daySeconds = 30.0;
  cfg.mix.tenantCount = 4;
  return cfg;
}

SoakConfig degradedConfig(stream::SchedulePolicy policy) {
  SoakConfig cfg = baseConfig();
  cfg.policy = policy;
  cfg.health = defaultHealthOptions(cfg.mix);
  // Day 30s -> 12-tick virtual hours (see defaultHealthOptions).
  const std::uint64_t hourTicks = 12;
  cfg.degradations = {{Degradation::Kind::kFaultRateStep, 6 * hourTicks,
                       18 * hourTicks, 0.7}};
  // The default evidence floor is tuned for tool/CI scale; at 1200
  // sessions the fast window carries less mass.
  for (telemetry::SloRule& rule : cfg.health.config.rules) {
    if (rule.name == "fault_session_rate") rule.minWeight = 10.0;
  }
  return cfg;
}

TEST(HealthFleet, CleanSoakFiresNothingUnderBothPolicies) {
  for (const auto policy :
       {stream::SchedulePolicy::kRoundRobin, stream::SchedulePolicy::kDeadline}) {
    SoakConfig cfg = baseConfig();
    cfg.policy = policy;
    cfg.health = defaultHealthOptions(cfg.mix);
    const FleetSoakReport r = runSoak(cfg);
    EXPECT_TRUE(r.healthEvents.empty());
    EXPECT_EQ(r.flightTriggers, 0u);
    EXPECT_EQ(r.flightCaptureCount, 0u);
    EXPECT_TRUE(r.flightCaptures.empty());
    // Rules were live (reported), and the hour-boundary margin samples
    // accumulated.
    EXPECT_EQ(r.healthRules.size(), 4u);  // no watts rule without a target
    EXPECT_FALSE(r.healthSamples.empty());
    for (const SoakHealthRule& rule : r.healthRules) {
      EXPECT_NE(rule.state, "firing") << rule.name;
      EXPECT_EQ(rule.fireCount, 0u) << rule.name;
    }
  }
}

TEST(HealthFleet, FaultStepFiresTheFaultRuleInsideItsWindow) {
  for (const auto policy :
       {stream::SchedulePolicy::kRoundRobin, stream::SchedulePolicy::kDeadline}) {
    const FleetSoakReport r = runSoak(degradedConfig(policy));
    const auto fired = std::find_if(
        r.healthEvents.begin(), r.healthEvents.end(),
        [](const SoakHealthEvent& e) {
          return e.fired && e.rule == "fault_session_rate";
        });
    ASSERT_NE(fired, r.healthEvents.end());
    // Can't fire before the step begins; must fire while it lasts.
    EXPECT_GE(fired->tick, 72u);
    EXPECT_LT(fired->tick, 216u);
    // No OTHER rule may page off this drill.
    for (const SoakHealthEvent& e : r.healthEvents) {
      EXPECT_EQ(e.rule, "fault_session_rate") << e.rule;
    }
    // The firing froze a capture whose trigger matches the event.
    EXPECT_GE(r.flightTriggers, 1u);
    ASSERT_GE(r.flightCaptureCount, 1u);
    ASSERT_FALSE(r.flightCaptures.empty());
    EXPECT_EQ(r.flightCaptures[0].trigger.rule, "fault_session_rate");
    EXPECT_EQ(r.flightCaptures[0].trigger.tick, fired->tick);
    EXPECT_FALSE(r.flightCaptures[0].snapshot.events.empty());
  }
}

TEST(HealthFleet, DegradedRunIsByteDeterministic) {
  const SoakConfig cfg = degradedConfig(stream::SchedulePolicy::kRoundRobin);
  const std::string a = deterministicJson(runSoak(cfg));
  const std::string b = deterministicJson(runSoak(cfg));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"health_events\""), std::string::npos);
  EXPECT_NE(a.find("\"fault_session_rate\""), std::string::npos);

  // Worker-pool delivery must not perturb the health stream either.
  SoakConfig pooled = cfg;
  pooled.deliveryThreads = 3;
  EXPECT_EQ(a, deterministicJson(runSoak(pooled)));
}

TEST(HealthFleet, DisabledHealthArmReportsNothingAndCostsNothing) {
  SoakConfig cfg = baseConfig();
  ASSERT_FALSE(cfg.health.enabled);
  const FleetSoakReport r = runSoak(cfg);
  EXPECT_TRUE(r.healthEvents.empty());
  EXPECT_TRUE(r.healthRules.empty());
  EXPECT_TRUE(r.healthSamples.empty());
  EXPECT_EQ(r.flightTriggers, 0u);
  const std::string json = deterministicJson(r);
  // The schema keeps the keys (stable field order) with empty payloads.
  EXPECT_NE(json.find("\"health_events\": []"), std::string::npos);
  EXPECT_NE(json.find("\"health_rules\": []"), std::string::npos);
}

}  // namespace
}  // namespace anno::soak
