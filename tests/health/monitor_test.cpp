// HealthMonitor + FlightRecorder unit tests: hand-computed rolling-window
// aggregates for every signal kind, lazy handle resolution without
// fabricated rate jumps, rule evaluation through the monitor, anomaly
// captures with their trace markers, and the trace-loss introspection
// gauges (drops + intern pool) surfaced through a registry scrape.
#include "telemetry/health.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace anno::telemetry {
namespace {

/// A rule that can never fire but forces `slow + 1` ring capacity onto its
/// signal, so signalWindow() can be probed at real window lengths.
SloRule capRule(const std::string& signal, std::uint64_t fast = 2,
                std::uint64_t slow = 8) {
  SloRule r;
  r.name = "cap_" + signal;
  r.signal = signal;
  r.bound = SloBoundKind::kMax;
  r.limit = 1e18;
  r.fastWindowTicks = fast;
  r.slowWindowTicks = slow;
  r.warmupTicks = 1;
  return r;
}

std::int64_t gaugeValue(const Snapshot& snap, const std::string& name) {
  for (const InstrumentSnapshot& inst : snap.instruments) {
    if (inst.name == name && inst.kind == InstrumentKind::kGauge) {
      return inst.gaugeValue;
    }
  }
  return -1;
}

TEST(HealthMonitor, ValidatesConfiguration) {
  Registry registry;
  HealthConfig cfg;
  cfg.tickSeconds = 0.0;
  EXPECT_THROW(HealthMonitor(cfg, &registry), std::invalid_argument);

  cfg.tickSeconds = 0.1;
  HealthSignal direct;
  direct.name = "d";
  cfg.signals = {direct, direct};  // duplicate
  EXPECT_THROW(HealthMonitor(cfg, &registry), std::invalid_argument);

  cfg.signals = {direct};
  cfg.rules = {capRule("nope")};  // unknown signal
  EXPECT_THROW(HealthMonitor(cfg, &registry), std::invalid_argument);

  HealthSignal ratio;
  ratio.name = "r";
  ratio.kind = HealthSignalKind::kCounterRatio;
  ratio.metric = "num_total";  // no denominators
  cfg.signals = {ratio};
  cfg.rules = {};
  EXPECT_THROW(HealthMonitor(cfg, &registry), std::invalid_argument);

  HealthSignal rate;
  rate.name = "rate";
  rate.kind = HealthSignalKind::kCounterRate;  // no metric
  cfg.signals = {rate};
  EXPECT_THROW(HealthMonitor(cfg, &registry), std::invalid_argument);

  cfg.signals = {direct};
  HealthMonitor monitor(cfg, &registry);
  EXPECT_THROW(monitor.setSignal("unknown", 1.0), std::invalid_argument);
}

TEST(HealthMonitor, CounterRatioWindowHandComputed) {
  Registry registry;
  Counter& err = registry.counter("err_total", {}, "t");
  Counter& total = registry.counter("all_total", {}, "t");

  HealthConfig cfg;
  cfg.tickSeconds = 1.0;
  HealthSignal sig;
  sig.name = "r";
  sig.kind = HealthSignalKind::kCounterRatio;
  sig.metric = "err_total";
  sig.denominatorMetrics = {"all_total"};
  cfg.signals = {sig};
  cfg.rules = {capRule("r")};
  HealthMonitor monitor(cfg, &registry);

  // Ticks 0..4 error-free, 5..9 at 20% errors.
  for (std::uint64_t t = 0; t < 10; ++t) {
    if (t >= 5) err.inc(2);
    total.inc(10);
    monitor.observe();
  }
  // Window 4 at tick 9: err 10 - 2 = 8, total 100 - 60 = 40.
  const SloWindowValue w4 = monitor.signalWindow("r", 4);
  ASSERT_TRUE(w4.ready);
  EXPECT_DOUBLE_EQ(w4.value, 8.0 / 40.0);
  EXPECT_DOUBLE_EQ(w4.weight, 40.0);
  // An oversized request clamps to the ring (slow window = 8):
  // err 10 - 0 = 10, total 100 - 20 = 80.
  const SloWindowValue w8 = monitor.signalWindow("r", 100);
  ASSERT_TRUE(w8.ready);
  EXPECT_DOUBLE_EQ(w8.value, 10.0 / 80.0);
}

TEST(HealthMonitor, CounterRateWindowHandComputed) {
  Registry registry;
  Counter& c = registry.counter("ops_total", {}, "t");
  HealthConfig cfg;
  cfg.tickSeconds = 0.5;
  HealthSignal sig;
  sig.name = "rate";
  sig.kind = HealthSignalKind::kCounterRate;
  sig.metric = "ops_total";
  cfg.signals = {sig};
  cfg.rules = {capRule("rate")};
  HealthMonitor monitor(cfg, &registry);
  for (std::uint64_t t = 0; t < 10; ++t) {
    c.inc(5);
    monitor.observe();
  }
  // 4-tick window: delta 20 over 4 * 0.5s -> 10 ops/s, weight = delta.
  const SloWindowValue w = monitor.signalWindow("rate", 4);
  ASSERT_TRUE(w.ready);
  EXPECT_DOUBLE_EQ(w.value, 10.0);
  EXPECT_DOUBLE_EQ(w.weight, 20.0);
}

TEST(HealthMonitor, GaugeMeanAndGaugeRatioWindows) {
  Registry registry;
  Gauge& g = registry.gauge("depth", {}, "t");
  Gauge& num = registry.gauge("mw", {}, "t");
  Gauge& den = registry.gauge("playing", {}, "t");
  HealthConfig cfg;
  cfg.tickSeconds = 1.0;
  HealthSignal mean;
  mean.name = "depth";
  mean.kind = HealthSignalKind::kGauge;
  mean.metric = "depth";
  HealthSignal ratio;
  ratio.name = "per_session";
  ratio.kind = HealthSignalKind::kGaugeRatio;
  ratio.metric = "mw";
  ratio.denominatorMetric = "playing";
  ratio.scale = 2.0;
  cfg.signals = {mean, ratio};
  cfg.rules = {capRule("depth"), capRule("per_session")};
  HealthMonitor monitor(cfg, &registry);
  for (std::uint64_t t = 0; t < 10; ++t) {
    g.set(static_cast<std::int64_t>((t + 1) * 10));
    num.set(30);
    den.set(10);
    monitor.observe();
  }
  // Mean of the last 4 instantaneous samples (70, 80, 90, 100) = 85.
  const SloWindowValue w = monitor.signalWindow("depth", 4);
  ASSERT_TRUE(w.ready);
  EXPECT_DOUBLE_EQ(w.value, 85.0);
  EXPECT_DOUBLE_EQ(w.weight, 4.0);
  // Gauge ratio: sum(num)/sum(den) = 120/40 = 3, scaled by 2; weight is
  // the denominator mass.
  const SloWindowValue r = monitor.signalWindow("per_session", 4);
  ASSERT_TRUE(r.ready);
  EXPECT_DOUBLE_EQ(r.value, 6.0);
  EXPECT_DOUBLE_EQ(r.weight, 40.0);
}

TEST(HealthMonitor, HistogramQuantileUsesTheSharedEstimator) {
  Registry registry;
  const std::vector<double> bounds = {1, 2, 4, 8};
  Histogram& h = registry.histogram("lat_seconds", bounds, {}, "t");
  HealthConfig cfg;
  cfg.tickSeconds = 1.0;
  HealthSignal sig;
  sig.name = "p50";
  sig.kind = HealthSignalKind::kHistogramQuantile;
  sig.metric = "lat_seconds";
  sig.quantile = 0.5;
  cfg.signals = {sig};
  cfg.rules = {capRule("p50")};
  HealthMonitor monitor(cfg, &registry);

  monitor.observe();  // tick 0: empty baseline
  for (int i = 0; i < 3; ++i) h.observe(0.5);
  for (int i = 0; i < 2; ++i) h.observe(1.5);
  for (int i = 0; i < 4; ++i) h.observe(3.0);
  h.observe(100.0);
  for (std::uint64_t t = 1; t <= 8; ++t) monitor.observe();

  const SloWindowValue w = monitor.signalWindow("p50", 8);
  ASSERT_TRUE(w.ready);
  EXPECT_DOUBLE_EQ(w.weight, 10.0);
  // Same math as the JSON exporter: the window delta IS the full sample
  // set here (the baseline tick saw an empty histogram).
  EXPECT_DOUBLE_EQ(w.value,
                   quantileFromBucketCounts(bounds, {3, 2, 4, 0, 1}, 0.5));
}

TEST(HealthMonitor, LateRegisteredMetricFabricatesNoRateJump) {
  Registry registry;
  HealthConfig cfg;
  cfg.tickSeconds = 1.0;
  HealthSignal sig;
  sig.name = "rate";
  sig.kind = HealthSignalKind::kCounterRate;
  sig.metric = "late_total";
  cfg.signals = {sig};
  cfg.rules = {capRule("rate", 2, 4)};
  HealthMonitor monitor(cfg, &registry);

  // Ticks 0..2: the instrument does not exist yet.
  for (int t = 0; t < 3; ++t) monitor.observe();
  EXPECT_FALSE(monitor.signalWindow("rate", 2).ready);

  // It appears mid-run with 1000 pre-existing increments.
  Counter& c = registry.counter("late_total", {}, "t");
  c.inc(1000);
  monitor.observe();  // tick 3: resolves; window still reaches pre-history
  EXPECT_FALSE(monitor.signalWindow("rate", 2).ready);

  c.inc(5);
  monitor.observe();  // tick 4
  c.inc(5);
  monitor.observe();  // tick 5
  const SloWindowValue w = monitor.signalWindow("rate", 2);
  ASSERT_TRUE(w.ready);
  // The 1000-increment backlog must NOT leak into the rate: only the
  // post-resolution deltas count (10 over 2 ticks).
  EXPECT_DOUBLE_EQ(w.value, 5.0);
}

HealthConfig directRuleConfig() {
  HealthConfig cfg;
  cfg.tickSeconds = 1.0;
  HealthSignal sig;
  sig.name = "d";
  cfg.signals = {sig};
  SloRule rule;
  rule.name = "direct_max";
  rule.signal = "d";
  rule.limit = 1.0;
  rule.hysteresis = 0.0;
  rule.fastWindowTicks = 2;
  rule.slowWindowTicks = 2;
  rule.clearHoldTicks = 2;
  rule.warmupTicks = 2;
  cfg.rules = {rule};
  return cfg;
}

TEST(HealthMonitor, DirectSignalDrivesRuleToHandComputedTicks) {
  HealthMonitor monitor(directRuleConfig(), nullptr);
  monitor.setSignal("d", 0.0);
  monitor.observe();  // tick 0
  monitor.observe();  // tick 1: warmup exits, mean 0, ok
  monitor.setSignal("d", 5.0);
  monitor.observe();  // tick 2: mean 2.5 > 1 in both windows -> fires
  ASSERT_EQ(monitor.events().size(), 1u);
  EXPECT_TRUE(monitor.events()[0].fired);
  EXPECT_EQ(monitor.events()[0].tick, 2u);
  monitor.setSignal("d", 0.0);
  monitor.observe();  // tick 3: mean 2.5 still out of bound
  monitor.observe();  // tick 4: mean 0, hold streak 1
  monitor.observe();  // tick 5: streak 2 -> clears
  ASSERT_EQ(monitor.events().size(), 2u);
  EXPECT_FALSE(monitor.events()[1].fired);
  EXPECT_EQ(monitor.events()[1].tick, 5u);
  const auto statuses = monitor.ruleStatuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].status.state, SloRuleState::kOk);
  EXPECT_EQ(statuses[0].status.fireCount, 1u);
}

TEST(FlightRecorder, CapturesOnFiringWithMarkerAndHonorsMaxCaptures) {
  FlightRecorder::Config fcfg;
  fcfg.trace.eventsPerThread = 256;
  fcfg.rotateTicks = 4;
  fcfg.maxCaptures = 1;
  FlightRecorder flight(fcfg);
  HealthMonitor monitor(directRuleConfig(), nullptr);
  monitor.attachFlightRecorder(&flight);

  const auto driveCycle = [&](std::uint64_t baseTick) {
    for (std::uint64_t i = 0; i < 6; ++i) {
      flight.onTick(baseTick + i);
      flight.recorder()->instant("ctx", "test");
      monitor.setSignal("d", i == 2 ? 5.0 : 0.0);
      monitor.observe();
    }
  };
  driveCycle(0);   // fires once, clears once
  driveCycle(6);   // fires + clears again
  EXPECT_EQ(flight.triggerCount(), 2u);
  ASSERT_EQ(flight.captures().size(), 1u);  // maxCaptures kept the first

  const FlightRecorder::Capture& cap = flight.captures()[0];
  EXPECT_EQ(cap.trigger.rule, "direct_max");
  EXPECT_TRUE(cap.trigger.fired);
  bool sawMarker = false;
  std::size_t ctxEvents = 0;
  for (const TraceSnapshotEvent& ev : cap.snapshot.events) {
    if (ev.name == "slo_fired") {
      sawMarker = true;
      EXPECT_EQ(ev.strKey, "rule");
      EXPECT_EQ(ev.strValue, "direct_max");
    }
    if (ev.name == "ctx") ++ctxEvents;
  }
  EXPECT_TRUE(sawMarker);
  // Rotation bounds the history: at most two generations of context.
  EXPECT_GT(ctxEvents, 0u);
  EXPECT_LE(ctxEvents, 2 * fcfg.rotateTicks);
  const std::string json = toChromeTraceJson(cap.snapshot);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("slo_fired"), std::string::npos);
}

TEST(TraceTelemetry, DropAndInternGaugesVisibleThroughScrape) {
  Registry registry;
  TraceRecorder recorder(TraceConfig{.eventsPerThread = 4});
  recorder.attachTelemetry(registry);
  (void)recorder.intern("interned-name");
  for (int i = 0; i < 50; ++i) recorder.instant("spam", "test");
  const Snapshot snap = scrape(registry);
  // 4 slots, 50 events: the overflow shows up as a live gauge without any
  // recorder-side polling.
  EXPECT_GE(gaugeValue(snap, "anno_trace_dropped_events"), 46);
  EXPECT_GE(gaugeValue(snap, "anno_trace_intern_pool_size"), 1);
  EXPECT_EQ(recorder.droppedEvents(),
            static_cast<std::uint64_t>(
                gaugeValue(snap, "anno_trace_dropped_events")));
  recorder.detachTelemetry();
}

}  // namespace
}  // namespace anno::telemetry
