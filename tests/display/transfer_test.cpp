#include "display/transfer.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <utility>
#include <vector>

namespace anno::display {
namespace {

void expectMonotoneNormalized(const TransferFunction& tf) {
  double prev = -1.0;
  for (int level = 0; level < 256; ++level) {
    const double v = tf.relLuminance(level);
    EXPECT_GE(v, prev) << "level " << level;
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(tf.relLuminance(255), 1.0);
}

TEST(Transfer, DefaultIsLinear) {
  const TransferFunction tf;
  EXPECT_DOUBLE_EQ(tf.relLuminance(0), 0.0);
  EXPECT_NEAR(tf.relLuminance(128), 128.0 / 255.0, 1e-12);
  EXPECT_DOUBLE_EQ(tf.relLuminance(255), 1.0);
}

struct NamedTransfer {
  const char* name;
  TransferFunction tf;
};

class TransferShapes : public ::testing::TestWithParam<int> {
 public:
  static std::vector<NamedTransfer> shapes() {
    return {
        {"linear", TransferFunction::linear()},
        {"gamma075", TransferFunction::gamma(0.75)},
        {"gamma22", TransferFunction::gamma(2.2)},
        {"ccfl", TransferFunction::ccfl()},
        {"ccfl_hi", TransferFunction::ccfl(0.3, 1.5)},
        {"scurve", TransferFunction::sCurve()},
        {"scurve_steep", TransferFunction::sCurve(0.4, 10.0)},
    };
  }
};

TEST_P(TransferShapes, MonotoneAndNormalized) {
  expectMonotoneNormalized(shapes()[GetParam()].tf);
}

TEST_P(TransferShapes, InverseReturnsMinimalLevel) {
  const TransferFunction& tf = shapes()[GetParam()].tf;
  for (double target = 0.0; target <= 1.0; target += 0.05) {
    const std::uint8_t level = tf.minimumLevelFor(target);
    EXPECT_GE(tf.relLuminance(level), target - 1e-12);
    if (level > 0) {
      EXPECT_LT(tf.relLuminance(level - 1), target)
          << "level " << int(level) << " not minimal for target " << target;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllShapes, TransferShapes, ::testing::Range(0, 7));

TEST(Transfer, GammaConcaveVsConvex) {
  const TransferFunction concave = TransferFunction::gamma(0.5);
  const TransferFunction convex = TransferFunction::gamma(2.0);
  // Concave (g<1) lies above the diagonal, convex below.
  EXPECT_GT(concave.relLuminance(128), 128.0 / 255.0 + 0.05);
  EXPECT_LT(convex.relLuminance(128), 128.0 / 255.0 - 0.05);
}

TEST(Transfer, CcflHasDeadZone) {
  const TransferFunction tf = TransferFunction::ccfl(0.2, 1.1);
  EXPECT_DOUBLE_EQ(tf.relLuminance(0), 0.0);
  EXPECT_DOUBLE_EQ(tf.relLuminance(static_cast<int>(0.19 * 255)), 0.0);
  EXPECT_GT(tf.relLuminance(static_cast<int>(0.3 * 255)), 0.0);
}

TEST(Transfer, FromLutNormalizesAndMonotonizes) {
  std::array<double, 256> lut{};
  for (int i = 0; i < 256; ++i) {
    lut[i] = 0.5 * i / 255.0;  // tops out at 0.5: must be renormalized
  }
  lut[100] = 0.0;  // non-monotone dip: must be smoothed by running max
  const TransferFunction tf = TransferFunction::fromLut(lut);
  expectMonotoneNormalized(tf);
}

TEST(Transfer, FromLutValidation) {
  std::vector<double> tooShort(100, 0.5);
  EXPECT_THROW((void)TransferFunction::fromLut(tooShort),
               std::invalid_argument);
  std::array<double, 256> zeros{};
  EXPECT_THROW((void)TransferFunction::fromLut(zeros), std::invalid_argument);
}

TEST(Transfer, BuilderValidation) {
  EXPECT_THROW((void)TransferFunction::gamma(0.0), std::invalid_argument);
  EXPECT_THROW((void)TransferFunction::gamma(-1.0), std::invalid_argument);
  EXPECT_THROW((void)TransferFunction::ccfl(1.0), std::invalid_argument);
  EXPECT_THROW((void)TransferFunction::sCurve(0.0), std::invalid_argument);
  EXPECT_THROW((void)TransferFunction::sCurve(0.5, -1.0),
               std::invalid_argument);
}

TEST(Transfer, RelLuminanceValidatesRange) {
  const TransferFunction tf;
  EXPECT_THROW((void)tf.relLuminance(-1), std::invalid_argument);
  EXPECT_THROW((void)tf.relLuminance(256), std::invalid_argument);
}

TEST(Transfer, FitFromSamplesRecoversLinear) {
  std::vector<std::pair<int, double>> samples;
  for (int level = 0; level <= 255; level += 15) {
    samples.emplace_back(level, level / 255.0 * 3.7);  // arbitrary scale
  }
  const TransferFunction tf = TransferFunction::fitFromSamples(samples);
  for (int level = 0; level < 256; ++level) {
    EXPECT_NEAR(tf.relLuminance(level), level / 255.0, 0.01)
        << "level " << level;
  }
}

TEST(Transfer, FitFromSamplesRecoversGamma) {
  const TransferFunction truth = TransferFunction::gamma(0.75);
  std::vector<std::pair<int, double>> samples;
  for (int level = 0; level <= 255; level += 5) {
    samples.emplace_back(level, truth.relLuminance(level));
  }
  const TransferFunction fitted = TransferFunction::fitFromSamples(samples);
  for (int level = 0; level < 256; ++level) {
    EXPECT_NEAR(fitted.relLuminance(level), truth.relLuminance(level), 0.01);
  }
}

TEST(Transfer, FitFromSamplesValidation) {
  std::vector<std::pair<int, double>> one = {{10, 0.5}};
  EXPECT_THROW((void)TransferFunction::fitFromSamples(one),
               std::invalid_argument);
  std::vector<std::pair<int, double>> dup = {{10, 0.5}, {10, 0.6}};
  EXPECT_THROW((void)TransferFunction::fitFromSamples(dup),
               std::invalid_argument);
  std::vector<std::pair<int, double>> oob = {{-1, 0.1}, {10, 0.5}};
  EXPECT_THROW((void)TransferFunction::fitFromSamples(oob),
               std::invalid_argument);
}

TEST(Transfer, MinimumLevelForClampsTarget) {
  const TransferFunction tf;
  EXPECT_EQ(tf.minimumLevelFor(-0.5), 0);
  EXPECT_EQ(tf.minimumLevelFor(2.0), 255);
}

}  // namespace
}  // namespace anno::display
