#include "display/device.h"

#include <gtest/gtest.h>

namespace anno::display {
namespace {

TEST(Device, AllThreePaperDevicesExist) {
  const auto devices = allKnownDevices();
  ASSERT_EQ(devices.size(), 3u);
  EXPECT_EQ(makeDevice(devices[0]).name, "ipaq3650");
  EXPECT_EQ(makeDevice(devices[1]).name, "zaurus_sl5600");
  EXPECT_EQ(makeDevice(devices[2]).name, "ipaq5555");
}

TEST(Device, NamesMatchFactories) {
  for (KnownDevice d : allKnownDevices()) {
    EXPECT_EQ(makeDevice(d).name, deviceName(d));
  }
}

TEST(Device, Ipaq5555IsTransflectiveLed) {
  const DeviceModel d = makeDevice(KnownDevice::kIpaq5555);
  EXPECT_EQ(d.panel.type, PanelType::kTransflective);
  EXPECT_EQ(d.backlight.type, BacklightType::kLed);
  // LED: fast response, negligible floor (paper Sec. 2).
  EXPECT_LT(d.backlight.responseTimeMs, 10.0);
  EXPECT_LT(d.backlight.floorPowerWatts, 0.1);
}

TEST(Device, CcflDevicesHaveInverterFloor) {
  for (KnownDevice id :
       {KnownDevice::kIpaq3650, KnownDevice::kZaurusSl5600}) {
    const DeviceModel d = makeDevice(id);
    EXPECT_EQ(d.backlight.type, BacklightType::kCcfl);
    EXPECT_GT(d.backlight.floorPowerWatts, 0.1) << d.name;
    EXPECT_GT(d.backlight.responseTimeMs, 30.0) << d.name;
  }
}

TEST(Device, TransferCurvesDifferAcrossDevices) {
  // Paper: "Each display technology showed a different transfer
  // characteristic."
  const DeviceModel a = makeDevice(KnownDevice::kIpaq3650);
  const DeviceModel b = makeDevice(KnownDevice::kIpaq5555);
  double maxDiff = 0.0;
  for (int level = 0; level < 256; ++level) {
    maxDiff = std::max(maxDiff, std::abs(a.transfer.relLuminance(level) -
                                         b.transfer.relLuminance(level)));
  }
  EXPECT_GT(maxDiff, 0.2);
}

TEST(Device, Ipaq5555TransferIsNonlinearConcave) {
  // Fig. 7: measured brightness not linear in backlight level.
  const DeviceModel d = makeDevice(KnownDevice::kIpaq5555);
  EXPECT_GT(d.transfer.relLuminance(128), 128.0 / 255.0 + 0.05);
}

TEST(Device, BacklightSavingsAtFullIsZero) {
  for (KnownDevice id : allKnownDevices()) {
    const DeviceModel d = makeDevice(id);
    EXPECT_NEAR(d.backlightSavings(255), 0.0, 1e-12) << d.name;
    EXPECT_GT(d.backlightSavings(64), 0.0) << d.name;
    EXPECT_NEAR(d.backlightSavings(0), 1.0, 1e-12) << d.name;
  }
}

TEST(Device, SavingsMonotoneInLevel) {
  const DeviceModel d = makeDevice(KnownDevice::kIpaq5555);
  double prev = 1.1;
  for (int level = 0; level <= 255; level += 5) {
    const double s = d.backlightSavings(level);
    EXPECT_LE(s, prev);
    prev = s;
  }
}

}  // namespace
}  // namespace anno::display
