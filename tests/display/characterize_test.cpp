#include "display/characterize.h"

#include <gtest/gtest.h>

namespace anno::display {
namespace {

TEST(Characterize, IdealMeterReadsPanelModel) {
  const DeviceModel d = makeDevice(KnownDevice::kIpaq5555);
  IdealMeter meter;
  const double white = meter.measure(d, 255, 255);
  const double gray = meter.measure(d, 128, 255);
  EXPECT_NEAR(gray / white, 128.0 / 255.0, 1e-9);  // linear in image luma
}

TEST(Characterize, SweepSizesAndRange) {
  const DeviceModel d = makeDevice(KnownDevice::kIpaq5555);
  IdealMeter meter;
  const auto sweep = sweepBacklight(d, meter, 12);
  ASSERT_EQ(sweep.size(), 12u);
  EXPECT_EQ(sweep.front().x, 0);
  EXPECT_EQ(sweep.back().x, 255);
  EXPECT_THROW((void)sweepBacklight(d, meter, 1), std::invalid_argument);
  EXPECT_THROW((void)sweepWhiteLevel(d, meter, 300), std::invalid_argument);
}

TEST(Characterize, BacklightSweepIsNonlinearForIpaq5555) {
  // Fig. 7: brightness vs backlight is NOT linear on this device.
  const DeviceModel d = makeDevice(KnownDevice::kIpaq5555);
  IdealMeter meter;
  const auto sweep = sweepBacklight(d, meter, 18);
  const double full = sweep.back().brightness;
  // Compare midpoint against the straight line between endpoints.
  double worstDeviation = 0.0;
  for (const SweepPoint& p : sweep) {
    const double linear = full * p.x / 255.0;
    worstDeviation =
        std::max(worstDeviation, std::abs(p.brightness - linear) / full);
  }
  EXPECT_GT(worstDeviation, 0.05);
}

TEST(Characterize, WhiteSweepIsLinear) {
  // Fig. 8: brightness IS (almost) linear in the displayed white value.
  const DeviceModel d = makeDevice(KnownDevice::kIpaq5555);
  IdealMeter meter;
  for (int backlight : {255, 128}) {
    const auto sweep = sweepWhiteLevel(d, meter, backlight, 18);
    const double full = sweep.back().brightness;
    for (const SweepPoint& p : sweep) {
      EXPECT_NEAR(p.brightness / full, p.x / 255.0, 0.01)
          << "backlight=" << backlight << " gray=" << p.x;
    }
  }
}

TEST(Characterize, HalfBacklightSweepIsDimmer) {
  const DeviceModel d = makeDevice(KnownDevice::kIpaq5555);
  IdealMeter meter;
  const auto full = sweepWhiteLevel(d, meter, 255, 10);
  const auto half = sweepWhiteLevel(d, meter, 128, 10);
  for (std::size_t i = 1; i < full.size(); ++i) {
    EXPECT_LT(half[i].brightness, full[i].brightness);
  }
}

class CharacterizeAllDevices : public ::testing::TestWithParam<KnownDevice> {};

TEST_P(CharacterizeAllDevices, IdealMeterFitIsAccurate) {
  const DeviceModel d = makeDevice(GetParam());
  IdealMeter meter;
  const CharacterizationResult result = characterizeDevice(d, meter, 32);
  // With an exact meter and 32 sample points, the piecewise-linear fit of
  // the true transfer should be within a few percent everywhere.
  EXPECT_LT(result.maxAbsFitError, 0.03) << d.name;
}

TEST_P(CharacterizeAllDevices, FittedInverseUsable) {
  const DeviceModel d = makeDevice(GetParam());
  IdealMeter meter;
  const CharacterizationResult result = characterizeDevice(d, meter, 32);
  // Using the FITTED transfer to pick levels must still deliver at least
  // the target luminance under the TRUE transfer (within fit error).
  for (double target = 0.1; target <= 1.0; target += 0.1) {
    const std::uint8_t level = result.fittedTransfer.minimumLevelFor(target);
    EXPECT_GE(d.transfer.relLuminance(level), target - 0.05)
        << d.name << " target=" << target;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDevices, CharacterizeAllDevices,
    ::testing::ValuesIn(allKnownDevices()),
    [](const ::testing::TestParamInfo<KnownDevice>& paramInfo) {
      return deviceName(paramInfo.param);
    });

}  // namespace
}  // namespace anno::display
