#include "display/profile_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <random>

namespace anno::display {
namespace {

void expectSameDevice(const DeviceModel& a, const DeviceModel& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.panel.type, b.panel.type);
  EXPECT_NEAR(a.panel.transmittance, b.panel.transmittance, 1e-9);
  EXPECT_NEAR(a.panel.reflectance, b.panel.reflectance, 1e-9);
  EXPECT_EQ(a.backlight.type, b.backlight.type);
  EXPECT_NEAR(a.backlight.maxPowerWatts, b.backlight.maxPowerWatts, 1e-9);
  EXPECT_NEAR(a.backlight.floorPowerWatts, b.backlight.floorPowerWatts, 1e-9);
  EXPECT_NEAR(a.backlight.responseTimeMs, b.backlight.responseTimeMs, 1e-9);
  for (int level = 0; level < 256; level += 5) {
    EXPECT_NEAR(a.transfer.relLuminance(level),
                b.transfer.relLuminance(level), 1e-6)
        << "level " << level;
  }
}

TEST(ProfileIo, RoundtripAllKnownDevices) {
  for (KnownDevice id : allKnownDevices()) {
    const DeviceModel original = makeDevice(id);
    const DeviceModel parsed =
        parseDeviceProfile(formatDeviceProfile(original));
    expectSameDevice(original, parsed);
  }
}

TEST(ProfileIo, FileRoundtrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("annolight_profile_" +
                    std::to_string(std::random_device{}()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "dev.profile").string();
  const DeviceModel original = makeDevice(KnownDevice::kZaurusSl5600);
  saveDeviceProfile(original, path);
  expectSameDevice(original, loadDeviceProfile(path));
  std::filesystem::remove_all(dir);
}

TEST(ProfileIo, CommentsAndBlankLinesIgnored) {
  std::string text = formatDeviceProfile(makeDevice(KnownDevice::kIpaq5555));
  text.insert(text.find("name"), "# a comment\n\n");
  const DeviceModel parsed = parseDeviceProfile(text);
  EXPECT_EQ(parsed.name, "ipaq5555");
}

TEST(ProfileIo, DiagnosticsNameTheLine) {
  try {
    (void)parseDeviceProfile("annolight-device 1\nname x\npanel plasma\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(ProfileIo, RejectsMalformedProfiles) {
  EXPECT_THROW((void)parseDeviceProfile(""), std::runtime_error);
  EXPECT_THROW((void)parseDeviceProfile("not-a-header 1\n"),
               std::runtime_error);
  EXPECT_THROW((void)parseDeviceProfile("annolight-device 2\n"),
               std::runtime_error);
  // Missing transfer LUT.
  EXPECT_THROW((void)parseDeviceProfile("annolight-device 1\nname x\n"),
               std::runtime_error);
  // Truncated transfer.
  EXPECT_THROW(
      (void)parseDeviceProfile("annolight-device 1\nname x\ntransfer 0.1 0.5\n"),
      std::runtime_error);
  // Unknown key.
  std::string text = formatDeviceProfile(makeDevice(KnownDevice::kIpaq5555));
  text += "wattage 9000\n";
  EXPECT_THROW((void)parseDeviceProfile(text), std::runtime_error);
  EXPECT_THROW((void)loadDeviceProfile("/nonexistent/path.profile"),
               std::runtime_error);
}

TEST(ProfileIo, ParsedProfileIsUsableForPlanning) {
  const DeviceModel parsed = parseDeviceProfile(
      formatDeviceProfile(makeDevice(KnownDevice::kIpaq3650)));
  // The CCFL dead zone must survive the round trip.
  EXPECT_DOUBLE_EQ(parsed.transfer.relLuminance(10), 0.0);
  EXPECT_GT(parsed.transfer.relLuminance(200), 0.5);
  EXPECT_GT(parsed.backlightPowerWatts(255), 1.0);
}

}  // namespace
}  // namespace anno::display
