#include "display/panel.h"

#include <gtest/gtest.h>

namespace anno::display {
namespace {

TEST(Panel, PerceivedIntensityFollowsFormula) {
  // I = rho * L * Y for transmissive panels in a dark room.
  LcdPanel panel{PanelType::kTransmissive, 0.08, 0.02};
  EXPECT_NEAR(panel.perceivedIntensity(255, 1.0), 0.08, 1e-12);
  EXPECT_NEAR(panel.perceivedIntensity(255, 0.5), 0.04, 1e-12);
  EXPECT_NEAR(panel.perceivedIntensity(128, 1.0), 0.08 * 128.0 / 255.0,
              1e-12);
  EXPECT_NEAR(panel.perceivedIntensity(0, 1.0), 0.0, 1e-12);
}

TEST(Panel, KeepingLYProductConstantPreservesIntensity) {
  // The paper's compensation invariant: halve L, double Y.
  LcdPanel panel{PanelType::kTransmissive, 0.08, 0.02};
  const double a = panel.perceivedIntensity(100, 1.0);
  const double b = panel.perceivedIntensity(200, 0.5);
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(Panel, TransflectiveAddsAmbientTerm) {
  LcdPanel panel{PanelType::kTransflective, 0.08, 0.03};
  const double dark = panel.perceivedIntensity(200, 0.5, 0.0);
  const double lit = panel.perceivedIntensity(200, 0.5, 1.0);
  EXPECT_GT(lit, dark);
  EXPECT_NEAR(lit - dark, 0.03 * 200.0 / 255.0, 1e-12);
}

TEST(Panel, TransmissiveIgnoresAmbient) {
  LcdPanel panel{PanelType::kTransmissive, 0.08, 0.03};
  EXPECT_DOUBLE_EQ(panel.perceivedIntensity(200, 0.5, 0.0),
                   panel.perceivedIntensity(200, 0.5, 1.0));
}

TEST(Panel, PerceivedIntensityValidation) {
  LcdPanel panel;
  EXPECT_THROW((void)panel.perceivedIntensity(10, -0.1),
               std::invalid_argument);
  EXPECT_THROW((void)panel.perceivedIntensity(10, 1.1), std::invalid_argument);
  EXPECT_THROW((void)panel.perceivedIntensity(10, 0.5, -1.0),
               std::invalid_argument);
}

TEST(Backlight, PowerScalesWithEmittedLight) {
  Backlight bl{BacklightType::kLed, 1.0, 0.0, 5.0};
  const TransferFunction linear;
  EXPECT_DOUBLE_EQ(bl.powerWatts(0, linear), 0.0);
  EXPECT_NEAR(bl.powerWatts(255, linear), 1.0, 1e-12);
  EXPECT_NEAR(bl.powerWatts(128, linear), 128.0 / 255.0, 1e-12);
}

TEST(Backlight, FloorPowerAppliesWhileLit) {
  Backlight ccfl{BacklightType::kCcfl, 1.4, 0.3, 80.0};
  const TransferFunction tf = TransferFunction::ccfl(0.15, 1.2);
  EXPECT_DOUBLE_EQ(ccfl.powerWatts(0, tf), 0.0);  // lamp off
  // Just above zero level: inverter floor dominates.
  EXPECT_GE(ccfl.powerWatts(1, tf), 0.3);
  EXPECT_NEAR(ccfl.powerWatts(255, tf), 1.4, 1e-12);
}

TEST(Backlight, PowerMonotoneInLevel) {
  Backlight bl{BacklightType::kLed, 0.95, 0.02, 5.0};
  const TransferFunction tf = TransferFunction::gamma(0.75);
  double prev = -1.0;
  for (int level = 0; level <= 255; ++level) {
    const double p = bl.powerWatts(level, tf);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Backlight, LevelValidation) {
  Backlight bl;
  const TransferFunction tf;
  EXPECT_THROW((void)bl.powerWatts(-1, tf), std::invalid_argument);
  EXPECT_THROW((void)bl.powerWatts(256, tf), std::invalid_argument);
}

TEST(DisplayedLuma, FullBacklightWhiteIs255) {
  LcdPanel panel{PanelType::kTransflective, 0.08, 0.03};
  media::Image white(4, 4, media::Rgb8{255, 255, 255});
  const media::GrayImage out = displayedLuma(panel, white, 1.0);
  for (std::uint8_t v : out.pixels()) EXPECT_EQ(v, 255);
}

TEST(DisplayedLuma, HalfBacklightHalvesOutput) {
  LcdPanel panel{PanelType::kTransmissive, 0.08, 0.0};
  media::Image white(4, 4, media::Rgb8{255, 255, 255});
  const media::GrayImage out = displayedLuma(panel, white, 0.5);
  for (std::uint8_t v : out.pixels()) EXPECT_EQ(v, 128);
}

TEST(DisplayedLuma, EmptyThrows) {
  LcdPanel panel;
  EXPECT_THROW((void)displayedLuma(panel, media::Image{}, 1.0),
               std::invalid_argument);
}

TEST(EnumNames, RoundTripStrings) {
  EXPECT_EQ(toString(PanelType::kReflective), "reflective");
  EXPECT_EQ(toString(PanelType::kTransmissive), "transmissive");
  EXPECT_EQ(toString(PanelType::kTransflective), "transflective");
  EXPECT_EQ(toString(BacklightType::kCcfl), "CCFL");
  EXPECT_EQ(toString(BacklightType::kLed), "LED");
}

}  // namespace
}  // namespace anno::display
