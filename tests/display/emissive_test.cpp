#include "display/emissive.h"

#include <gtest/gtest.h>

#include "compensate/compensate.h"
#include "core/annotate.h"
#include "media/clipgen.h"

namespace anno::display {
namespace {

TEST(Emissive, PowerScalesWithContent) {
  const EmissiveDisplay oled = makeGenericOled();
  const media::Image black(16, 16, media::Rgb8{0, 0, 0});
  const media::Image gray(16, 16, media::Rgb8{128, 128, 128});
  const media::Image white(16, 16, media::Rgb8{255, 255, 255});
  const double pb = oled.powerWatts(black);
  const double pg = oled.powerWatts(gray);
  const double pw = oled.powerWatts(white);
  EXPECT_LT(pb, pg);
  EXPECT_LT(pg, pw);
  EXPECT_NEAR(pb, oled.basePanelWatts, 1e-12);
  EXPECT_NEAR(pw, oled.basePanelWatts + oled.maxPowerWatts, 1e-12);
}

TEST(Emissive, GammaMakesMidGrayCheap) {
  // With gamma 2.2, 50% gray draws ~22% of white's emission, not 50%.
  const EmissiveDisplay oled = makeGenericOled();
  const media::Image gray(8, 8, media::Rgb8{128, 128, 128});
  const double emission =
      (oled.powerWatts(gray) - oled.basePanelWatts) / oled.maxPowerWatts;
  EXPECT_NEAR(emission, std::pow(128.0 / 255.0, 2.2), 0.01);
}

TEST(Emissive, BlueContentCostsMore) {
  const EmissiveDisplay oled = makeGenericOled();
  const media::Image blue(8, 8, media::Rgb8{0, 0, 200});
  const media::Image green(8, 8, media::Rgb8{0, 200, 0});
  EXPECT_GT(oled.powerWatts(blue), oled.powerWatts(green));
}

TEST(Emissive, CompensatedStreamCostsMoreOnOled) {
  // THE negative result: the paper's compensation (brighten pixels, dim the
  // backlight) saves power on LCD but RAISES power on an emissive panel.
  // Capability negotiation must keep compensated streams away from OLEDs.
  const EmissiveDisplay oled = makeGenericOled();
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kTheMovie, 0.03, 48, 36);
  const core::AnnotationTrack track = core::annotateClip(clip);
  const display::DeviceModel lcd =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  const media::VideoClip compensated =
      core::compensateClip(clip, track, 2, lcd);
  EXPECT_GT(oled.averagePowerWatts(compensated),
            oled.averagePowerWatts(clip) * 1.3);
}

TEST(Emissive, ContentDimmingIsTheOledDual) {
  const EmissiveDisplay oled = makeGenericOled();
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kShrek2, 0.02, 48, 36);
  media::VideoClip dimmed = clip;
  for (media::Image& f : dimmed.frames) f = dimContent(f, 0.8);
  const double original = oled.averagePowerWatts(clip);
  const double reduced = oled.averagePowerWatts(dimmed);
  EXPECT_LT(reduced, original);
  // Roughly factor^gamma on the emission part.
  const double expectedRatio = std::pow(0.8, 2.2);
  const double actualRatio = (reduced - oled.basePanelWatts) /
                             (original - oled.basePanelWatts);
  EXPECT_NEAR(actualRatio, expectedRatio, 0.08);
}

TEST(Emissive, Validation) {
  const EmissiveDisplay oled = makeGenericOled();
  EXPECT_THROW((void)oled.powerWatts(media::Image{}), std::invalid_argument);
  media::Image img(4, 4);
  EXPECT_THROW((void)dimContent(img, -0.1), std::invalid_argument);
  EXPECT_THROW((void)dimContent(img, 1.1), std::invalid_argument);
  EXPECT_THROW((void)dimContent(media::Image{}, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace anno::display
