#include "display/quantize.h"

#include <gtest/gtest.h>

#include "media/luminance.h"
#include "media/rng.h"

namespace anno::display {
namespace {

TEST(Rgb565, ExtremesPreserved) {
  EXPECT_EQ(toRgb565(media::Rgb8{0, 0, 0}), (media::Rgb8{0, 0, 0}));
  EXPECT_EQ(toRgb565(media::Rgb8{255, 255, 255}),
            (media::Rgb8{255, 255, 255}));
}

TEST(Rgb565, ErrorBounded) {
  media::SplitMix64 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const media::Rgb8 p{static_cast<std::uint8_t>(rng.below(256)),
                        static_cast<std::uint8_t>(rng.below(256)),
                        static_cast<std::uint8_t>(rng.below(256))};
    const media::Rgb8 q = toRgb565(p);
    EXPECT_LE(std::abs(p.r - q.r), 8);  // 5-bit step = 8
    EXPECT_LE(std::abs(p.g - q.g), 4);  // 6-bit step = 4
    EXPECT_LE(std::abs(p.b - q.b), 8);
  }
}

TEST(Rgb565, QuantizationIsIdempotent) {
  media::SplitMix64 rng(2);
  for (int i = 0; i < 500; ++i) {
    const media::Rgb8 p{static_cast<std::uint8_t>(rng.below(256)),
                        static_cast<std::uint8_t>(rng.below(256)),
                        static_cast<std::uint8_t>(rng.below(256))};
    const media::Rgb8 once = toRgb565(p);
    EXPECT_EQ(toRgb565(once), once);
  }
}

TEST(Rgb565, FrameQuantizationErrorSmall) {
  media::SplitMix64 rng(3);
  media::Image img(32, 32);
  for (media::Rgb8& p : img.pixels()) {
    p = media::Rgb8{static_cast<std::uint8_t>(rng.below(256)),
                    static_cast<std::uint8_t>(rng.below(256)),
                    static_cast<std::uint8_t>(rng.below(256))};
  }
  const media::Image q = quantizeRgb565(img);
  EXPECT_LT(quantizationError(img, q), 4.0);
}

TEST(Rgb565, DitheringPreservesMeanOnGradients) {
  // A smooth dark ramp: plain truncation banding biases the mean; Bayer
  // dithering should track the true mean more closely.
  media::Image img(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      const auto v = static_cast<std::uint8_t>(40 + x / 8);
      img(x, y) = media::Rgb8{v, v, v};
    }
  }
  const double trueMean = media::analyzeLuminance(img).meanLuma;
  const double flatMean =
      media::analyzeLuminance(quantizeRgb565(img, false)).meanLuma;
  const double ditherMean =
      media::analyzeLuminance(quantizeRgb565(img, true)).meanLuma;
  EXPECT_LE(std::abs(ditherMean - trueMean),
            std::abs(flatMean - trueMean) + 0.25);
  EXPECT_LT(std::abs(ditherMean - trueMean), 1.0);
}

TEST(Rgb565, Validation) {
  EXPECT_THROW((void)quantizeRgb565(media::Image{}), std::invalid_argument);
  media::Image a(2, 2), b(3, 2);
  EXPECT_THROW((void)quantizationError(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace anno::display
