#include "fault/inject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace anno::fault {
namespace {

std::vector<std::uint8_t> rampBuffer(std::size_t n) {
  std::vector<std::uint8_t> buf(n);
  std::iota(buf.begin(), buf.end(), std::uint8_t{0});
  return buf;
}

TEST(Inject, PlanIsDeterministic) {
  const auto a = planInjections(42, 300);
  const auto b = planInjections(42, 300);
  EXPECT_EQ(a, b);
  const auto c = planInjections(43, 300);
  EXPECT_NE(a, c);
}

TEST(Inject, ApplyIsDeterministic) {
  const auto base = rampBuffer(257);
  for (std::uint64_t seed = 1; seed < 64; ++seed) {
    const InjectionPlan plan = planInjections(seed, base.size());
    EXPECT_EQ(applyPlan(base, plan), applyPlan(base, plan)) << "seed " << seed;
  }
}

TEST(Inject, EmptyPlanIsIdentity) {
  const auto base = rampBuffer(64);
  InjectionPlan plan;
  InjectionReport report;
  EXPECT_EQ(applyPlan(base, plan, &report), base);
  EXPECT_TRUE(report.identity());
  EXPECT_EQ(report.inputBytes, 64u);
  EXPECT_EQ(report.outputBytes, 64u);
}

TEST(Inject, BitFlipChangesExactlyOneBit) {
  const auto base = rampBuffer(32);
  InjectionPlan plan;
  plan.mutations.push_back({MutationKind::kBitFlip, 7, 0, 0, 3});
  InjectionReport report;
  const auto out = applyPlan(base, plan, &report);
  ASSERT_EQ(out.size(), base.size());
  EXPECT_EQ(report.mutationsApplied, 1u);
  int bitsChanged = 0;
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::uint8_t diff = base[i] ^ out[i];
    while (diff != 0) {
      bitsChanged += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bitsChanged, 1);
  EXPECT_EQ(out[7], base[7] ^ (1u << 3));
}

TEST(Inject, TruncateShortensToOffset) {
  const auto base = rampBuffer(100);
  InjectionPlan plan;
  plan.mutations.push_back({MutationKind::kTruncate, 40, 0, 0, 0});
  const auto out = applyPlan(base, plan);
  EXPECT_EQ(out.size(), 40u);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), base.begin()));
}

TEST(Inject, ChunkDropRemovesSpan) {
  const auto base = rampBuffer(100);
  InjectionPlan plan;
  plan.mutations.push_back({MutationKind::kChunkDrop, 10, 5, 0, 0});
  const auto out = applyPlan(base, plan);
  ASSERT_EQ(out.size(), 95u);
  EXPECT_EQ(out[9], 9);
  EXPECT_EQ(out[10], 15);  // bytes 10..14 gone
}

TEST(Inject, DuplicateGrowsBuffer) {
  const auto base = rampBuffer(50);
  InjectionPlan plan;
  plan.mutations.push_back({MutationKind::kDuplicate, 0, 10, 50, 0});
  const auto out = applyPlan(base, plan);
  ASSERT_EQ(out.size(), 60u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[50 + i], base[i]);  // copy of the first 10 bytes at the end
  }
}

TEST(Inject, ReorderPreservesByteMultiset) {
  const auto base = rampBuffer(80);
  InjectionPlan plan;
  plan.mutations.push_back({MutationKind::kReorder, 5, 16, 60, 0});
  const auto out = applyPlan(base, plan);
  ASSERT_EQ(out.size(), base.size());
  auto a = base;
  auto b = out;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_NE(out, base);
}

TEST(Inject, ClampsOutOfRangeOffsets) {
  // A plan generated for one buffer size applies safely to any other.
  const auto base = rampBuffer(10);
  InjectionPlan plan;
  plan.mutations.push_back({MutationKind::kBitFlip, 5000, 0, 0, 1});
  plan.mutations.push_back({MutationKind::kChunkDrop, 9999, 500, 0, 0});
  plan.mutations.push_back({MutationKind::kDuplicate, 8888, 500, 7777, 0});
  EXPECT_NO_THROW((void)applyPlan(base, plan));
}

TEST(Inject, EmptyBufferIsSafe) {
  const std::vector<std::uint8_t> empty;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    InjectionReport report;
    const auto out = injectFaults(empty, seed, {}, &report);
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(report.identity());
  }
}

TEST(Inject, ReportEnumeratesAppliedMutations) {
  const auto base = rampBuffer(200);
  InjectionReport report;
  const auto out = injectFaults(base, 7, {}, &report);
  EXPECT_EQ(report.inputBytes, base.size());
  EXPECT_EQ(report.outputBytes, out.size());
  EXPECT_EQ(report.applied.size(), report.mutationsApplied);
  // Replaying only the as-applied mutations reproduces the output.
  InjectionPlan replay;
  replay.mutations = report.applied;
  EXPECT_EQ(applyPlan(base, replay), out);
}

TEST(Inject, ConfigRestrictsKinds) {
  InjectorConfig cfg;
  cfg.bitFlips = true;
  cfg.byteSets = cfg.truncations = cfg.duplications = cfg.chunkDrops =
      cfg.reorders = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const InjectionPlan plan = planInjections(seed, 100, cfg);
    for (const Mutation& m : plan.mutations) {
      EXPECT_EQ(m.kind, MutationKind::kBitFlip);
    }
  }
  InjectorConfig none = cfg;
  none.bitFlips = false;
  EXPECT_THROW((void)planInjections(1, 100, none), std::invalid_argument);
  InjectorConfig zero;
  zero.maxMutations = 0;
  EXPECT_THROW((void)planInjections(1, 100, zero), std::invalid_argument);
}

TEST(Inject, CorpusIsDeterministicAndMostlyMutating) {
  const auto base = rampBuffer(300);
  std::vector<std::vector<std::uint8_t>> first;
  const std::size_t mutatedA = runCorpus(
      base, 99, 200, {},
      [&](std::span<const std::uint8_t> m, const InjectionPlan&,
          const InjectionReport&) {
        first.emplace_back(m.begin(), m.end());
      });
  std::size_t i = 0;
  const std::size_t mutatedB = runCorpus(
      base, 99, 200, {},
      [&](std::span<const std::uint8_t> m, const InjectionPlan&,
          const InjectionReport&) {
        ASSERT_LT(i, first.size());
        EXPECT_TRUE(std::equal(m.begin(), m.end(), first[i].begin(),
                               first[i].end()));
        ++i;
      });
  EXPECT_EQ(mutatedA, mutatedB);
  EXPECT_GT(mutatedA, 190u);  // byte-set may rarely no-op; the rest mutate
}

TEST(Inject, KindNamesAreStable) {
  EXPECT_STREQ(mutationKindName(MutationKind::kBitFlip), "bit-flip");
  EXPECT_STREQ(mutationKindName(MutationKind::kTruncate), "truncate");
  EXPECT_STREQ(mutationKindName(MutationKind::kChunkDrop), "chunk-drop");
}

}  // namespace
}  // namespace anno::fault
