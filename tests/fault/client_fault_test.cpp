// The client-side half of the robustness contract: ClientSession::receive
// must survive ANY stream bytes -- mutated, truncated, or pure noise --
// without throwing, and damaged annotations must degrade toward full
// backlight (never dimmer than the intact plan) with bounded flicker.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "fault/inject.h"
#include "media/clipgen.h"
#include "media/rng.h"
#include "stream/client.h"
#include "stream/server.h"

namespace anno::stream {
namespace {

struct Rig {
  media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kShrek2, 0.03, 32, 24);
  MediaServer server;
  ClientConfig cfg{display::makeDevice(display::KnownDevice::kIpaq5555), 2,
                   10};
  Rig() { server.addClip(clip); }

  [[nodiscard]] ClientSession client() const {
    return ClientSession(cfg, makeReferencePath());
  }

  [[nodiscard]] std::vector<std::uint8_t> servedBytes() const {
    return server.serve(clip.name, client().capabilities());
  }
};

/// receive() wrapped so a throw becomes a test failure with context.
ReceivedStream mustNotThrow(const ClientSession& client,
                            std::span<const std::uint8_t> bytes,
                            const char* what) {
  try {
    return client.receive(bytes);
  } catch (const std::exception& e) {
    ADD_FAILURE() << what << ": receive threw: " << e.what();
  } catch (...) {
    ADD_FAILURE() << what << ": receive threw a non-std exception";
  }
  return {};
}

TEST(ClientFault, MutatedStreamsNeverThrow) {
  Rig rig;
  const ClientSession client = rig.client();
  const auto base = rig.servedBytes();
  std::size_t okCount = 0;
  std::size_t intactCount = 0;
  fault::runCorpus(
      base, 0xC11E47, 1500, {},
      [&](std::span<const std::uint8_t> mutated, const fault::InjectionPlan&,
          const fault::InjectionReport& report) {
        const ReceivedStream rx = mustNotThrow(client, mutated, "mutant");
        if (rx.ok) {
          ++okCount;
          // Whatever played got a complete schedule for its frames.
          ASSERT_EQ(rx.schedule.frameCount, rx.video.frames.size());
        }
        if (report.identity()) {
          ASSERT_TRUE(rx.ok) << "unmutated stream must play";
          ASSERT_FALSE(rx.annotationFallback);
          ++intactCount;
        }
      });
  // The corpus must exercise both arms: some mutants still play (possibly
  // degraded), many are rejected as unplayable.
  EXPECT_GT(okCount, intactCount);
}

TEST(ClientFault, AnnotationSectionCorruptionDegradesGracefully) {
  Rig rig;
  const ClientSession client = rig.client();
  const auto base = rig.servedBytes();
  const ReceivedStream clean = client.receive(base);
  ASSERT_TRUE(clean.ok);
  ASSERT_FALSE(clean.annotationFallback);

  // The muxed stream embeds the ANN1 track verbatim: locate its magic.
  const std::uint8_t magic[] = {0x31, 0x4E, 0x4E, 0x41};  // "ANN1", LE
  const auto it =
      std::search(base.begin(), base.end(), std::begin(magic), std::end(magic));
  ASSERT_NE(it, base.end()) << "served stream must contain an ANN1 track";
  const auto annoOffset = static_cast<std::size_t>(it - base.begin());

  media::SplitMix64 rng(0xA110);
  for (int trial = 0; trial < 64; ++trial) {
    auto bad = base;
    // Corrupt 1..3 bytes inside the annotation track (past magic+version).
    const int hits = 1 + static_cast<int>(rng.below(3));
    for (int h = 0; h < hits; ++h) {
      const std::size_t pos =
          annoOffset + 5 + rng.below(std::min<std::size_t>(
                               bad.size() - annoOffset - 5, 200));
      bad[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    const ReceivedStream rx = mustNotThrow(client, bad, "annotation corrupt");
    if (!rx.ok) continue;  // corruption bled into the container framing
    ASSERT_EQ(rx.schedule.frameCount, clean.schedule.frameCount);
    if (!rx.annotationFallback) continue;  // e.g. only trailing slack hit

    for (std::uint32_t f = 0; f < rx.schedule.frameCount; ++f) {
      // Degradation is toward FULL backlight: never dimmer than the intact
      // plan (dimmer could clip compensated pixels), never brighter than
      // the non-annotated baseline (so power stays bounded by it).
      EXPECT_GE(rx.schedule.levelAt(f), clean.schedule.levelAt(f))
          << "trial " << trial << " frame " << f;
      EXPECT_LE(
          rig.cfg.device.backlightPowerWatts(rx.schedule.levelAt(f)),
          rig.cfg.device.backlightPowerWatts(255) + 1e-12);
      if (f > 0 && rig.cfg.maxBacklightDeltaPerFrame > 0) {
        const int delta = std::abs(static_cast<int>(rx.schedule.levelAt(f)) -
                                   static_cast<int>(rx.schedule.levelAt(f - 1)));
        EXPECT_LE(delta, static_cast<int>(rig.cfg.maxBacklightDeltaPerFrame))
            << "trial " << trial << " frame " << f;
      }
    }
  }
}

TEST(ClientFault, TruncatedStreamsNeverThrow) {
  Rig rig;
  const ClientSession client = rig.client();
  const auto base = rig.servedBytes();
  for (std::size_t k = 0; k < base.size(); k += 17) {
    const std::span<const std::uint8_t> prefix(base.data(), k);
    (void)mustNotThrow(client, prefix, "truncated");
  }
}

TEST(ClientFault, PureNoiseIsRejectedNotThrown) {
  Rig rig;
  const ClientSession client = rig.client();
  media::SplitMix64 rng(0x70153);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> noise(rng.below(4096));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.below(256));
    const ReceivedStream rx = mustNotThrow(client, noise, "noise");
    EXPECT_FALSE(rx.ok);
    EXPECT_FALSE(rx.error.empty() && !noise.empty());
  }
}

}  // namespace
}  // namespace anno::stream
