// Seeded mutation corpus over the annotation codec: no injector output may
// crash or hang either decoder.  The corpus seed and size are fixed in
// CMake (ANNO_FAULT_CORPUS_SEED / ANNO_FAULT_CORPUS_SIZE) so every run --
// including sanitizer configs -- exercises the exact same byte streams.
#include <gtest/gtest.h>

#include <exception>

#include "core/anno_codec.h"
#include "fault/inject.h"

#ifndef ANNO_FAULT_CORPUS_SEED
#define ANNO_FAULT_CORPUS_SEED 0xF4017ULL
#endif
#ifndef ANNO_FAULT_CORPUS_SIZE
#define ANNO_FAULT_CORPUS_SIZE 10000
#endif

namespace anno::core {
namespace {

AnnotationTrack corpusBaseTrack() {
  AnnotationTrack t;
  t.clipName = "corpus_base";
  t.fps = 14.98;
  t.granularity = Granularity::kPerScene;
  t.qualityLevels = {0.0, 0.05, 0.10, 0.20};
  std::uint32_t start = 0;
  for (int i = 0; i < 24; ++i) {
    SceneAnnotation s;
    s.span.firstFrame = start;
    s.span.frameCount = 30 + static_cast<std::uint32_t>((i * 37) % 90);
    start += s.span.frameCount;
    const auto base = static_cast<std::uint8_t>(230 - (i * 11) % 160);
    s.safeLuma = {base,
                  static_cast<std::uint8_t>(base - base / 8),
                  static_cast<std::uint8_t>(base - base / 5),
                  static_cast<std::uint8_t>(base - base / 3)};
    t.scenes.push_back(std::move(s));
  }
  t.frameCount = start;
  return t;
}

struct CorpusStats {
  std::size_t total = 0;
  std::size_t strictAccepted = 0;
  std::size_t strictRejected = 0;
  std::size_t lenientUsable = 0;
};

void runCodecCorpus(const std::vector<std::uint8_t>& base,
                    std::uint64_t masterSeed, CorpusStats* stats) {
  fault::runCorpus(
      base, masterSeed, ANNO_FAULT_CORPUS_SIZE, {},
      [&](std::span<const std::uint8_t> mutated, const fault::InjectionPlan&,
          const fault::InjectionReport& report) {
        ++stats->total;
        // Strict decode: may throw std::exception, nothing else, and on an
        // untouched buffer must succeed.
        try {
          const AnnotationTrack t = decodeTrack(mutated);
          ++stats->strictAccepted;
          ASSERT_NO_THROW(validateTrack(t));
        } catch (const std::exception&) {
          ++stats->strictRejected;
          ASSERT_FALSE(report.identity())
              << "strict decode rejected an unmutated buffer";
        }
        // Lenient decode: NEVER throws; usable implies valid.
        const LenientDecodeResult lenient = decodeTrackLenient(mutated);
        if (lenient.usable) {
          ++stats->lenientUsable;
          ASSERT_NO_THROW(validateTrack(lenient.track));
        }
        // Strict/lenient agreement on intact input.
        if (report.identity()) {
          ASSERT_TRUE(lenient.usable);
          ASSERT_TRUE(lenient.damage.intact());
          ASSERT_EQ(lenient.track, decodeTrack(mutated));
        }
      });
}

TEST(FaultCorpus, ResilientDecoderSurvivesTenThousandMutations) {
  const auto base = encodeTrack(corpusBaseTrack());
  CorpusStats stats;
  runCodecCorpus(base, ANNO_FAULT_CORPUS_SEED, &stats);
  EXPECT_EQ(stats.total, static_cast<std::size_t>(ANNO_FAULT_CORPUS_SIZE));
  // The corpus must actually stress the decoder: most mutants are rejected
  // strictly, yet a meaningful share still decodes leniently (per-chunk CRC
  // localizes the damage instead of condemning the whole track).
  EXPECT_GT(stats.strictRejected, stats.total / 2);
  EXPECT_GT(stats.lenientUsable, stats.total / 20);
  EXPECT_GE(stats.lenientUsable, stats.strictAccepted);
}

TEST(FaultCorpus, LegacyDecoderSurvivesTenThousandMutations) {
  const auto base = encodeTrackLegacy(corpusBaseTrack());
  CorpusStats stats;
  runCodecCorpus(base, ANNO_FAULT_CORPUS_SEED ^ 0x5EEDULL, &stats);
  EXPECT_EQ(stats.total, static_cast<std::size_t>(ANNO_FAULT_CORPUS_SIZE));
  // ANN0 has no per-chunk protection: lenient decode is all-or-nothing, so
  // it can never salvage more than strict accepts plus intact replays.
  EXPECT_GT(stats.strictRejected, 0u);
}

TEST(FaultCorpus, PathologicalHeadersCannotBalloonAllocation) {
  // Hand-built nasties that historically trigger huge allocations or spins
  // in naive varint/RLE decoders.  All must return quickly and safely.
  const std::vector<std::vector<std::uint8_t>> nasties = {
      {},                                            // empty
      {0x30, 0x4E, 0x4E, 0x41},                      // bare ANN0 magic
      {0x31, 0x4E, 0x4E, 0x41},                      // bare ANN1 magic
      {0x31, 0x4E, 0x4E, 0x41, 0x01},                // magic + version only
      // ANN0 magic + maximal varints (name length ~2^35, frame count, ...).
      {0x30, 0x4E, 0x4E, 0x41, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
      // ANN1 chunk claiming a payload of ~2^35 bytes.
      {0x31, 0x4E, 0x4E, 0x41, 0x01, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
      // ANN0 with zero scenes but huge RLE run request.
      {0x30, 0x4E, 0x4E, 0x41, 0x00, 0x00, 0x00, 0x0A, 0x01, 0x00, 0xFF,
       0xFF, 0xFF, 0xFF, 0x0F},
  };
  for (const auto& bytes : nasties) {
    EXPECT_ANY_THROW((void)decodeTrack(bytes));
    const LenientDecodeResult lenient = decodeTrackLenient(bytes);
    EXPECT_FALSE(lenient.usable && lenient.damage.intact() &&
                 !lenient.track.scenes.empty())
        << "garbage must not decode to a populated intact track";
  }
}

}  // namespace
}  // namespace anno::core
