// Round-trip and truncation properties of the resilient ANN1 annotation
// framing, plus ANN0 back-compat.
#include <gtest/gtest.h>

#include "core/anno_codec.h"
#include "fault/inject.h"
#include "media/rng.h"

namespace anno::core {
namespace {

AnnotationTrack randomTrack(std::uint64_t seed, int maxScenes = 60) {
  media::SplitMix64 rng(seed);
  AnnotationTrack t;
  t.clipName = "clip_" + std::to_string(seed);
  t.fps = 12.0;
  t.granularity =
      rng.uniform() < 0.5 ? Granularity::kPerScene : Granularity::kPerFrame;
  t.qualityLevels = {0.0, 0.05, 0.10, 0.15, 0.20};
  const int nscenes = 1 + static_cast<int>(rng.below(maxScenes));
  std::uint32_t start = 0;
  for (int i = 0; i < nscenes; ++i) {
    SceneAnnotation s;
    s.span.firstFrame = start;
    s.span.frameCount = 1 + static_cast<std::uint32_t>(rng.below(100));
    start += s.span.frameCount;
    std::uint8_t level = static_cast<std::uint8_t>(rng.between(50, 255));
    for (std::size_t q = 0; q < t.qualityLevels.size(); ++q) {
      s.safeLuma.push_back(level);
      level = static_cast<std::uint8_t>(
          std::max<std::int64_t>(0, level - rng.below(20)));
    }
    t.scenes.push_back(std::move(s));
  }
  t.frameCount = start;
  return t;
}

class FramingProperty : public ::testing::TestWithParam<int> {};

TEST_P(FramingProperty, EncodeInjectIdentityDecodeIsBitIdentical) {
  const AnnotationTrack track = randomTrack(GetParam());
  const auto bytes = encodeTrack(track);
  // Identity injection: an empty plan must leave the buffer bit-identical,
  // and decode must reproduce the track exactly (strict AND lenient).
  const auto untouched = fault::applyPlan(bytes, fault::InjectionPlan{});
  ASSERT_EQ(untouched, bytes);
  EXPECT_EQ(decodeTrack(untouched), track);
  const LenientDecodeResult lenient = decodeTrackLenient(untouched);
  ASSERT_TRUE(lenient.usable);
  EXPECT_TRUE(lenient.damage.intact());
  EXPECT_EQ(lenient.track, track);
  // Re-encoding the decoded track is also bit-identical (canonical form).
  EXPECT_EQ(encodeTrack(lenient.track), bytes);
}

TEST_P(FramingProperty, EveryTruncationDecodesLenientlyWithoutThrowing) {
  const AnnotationTrack track = randomTrack(GetParam());
  const auto bytes = encodeTrack(track);
  for (std::size_t k = 0; k < bytes.size(); ++k) {
    fault::InjectionPlan plan;
    plan.mutations.push_back({fault::MutationKind::kTruncate, k, 0, 0, 0});
    const auto trunc = fault::applyPlan(bytes, plan);
    ASSERT_EQ(trunc.size(), k);
    const LenientDecodeResult lenient = decodeTrackLenient(trunc);
    if (lenient.usable) {
      // Whatever survives must be structurally valid and frame-complete.
      EXPECT_NO_THROW(validateTrack(lenient.track)) << "cut=" << k;
      EXPECT_EQ(lenient.track.frameCount, track.frameCount) << "cut=" << k;
    } else {
      EXPECT_FALSE(lenient.damage.headerIntact) << "cut=" << k;
    }
    // Strict decode must refuse every proper prefix.
    EXPECT_ANY_THROW((void)decodeTrack(trunc)) << "cut=" << k;
  }
}

TEST_P(FramingProperty, LegacyFramingRoundTripsThroughBothDecoders) {
  const AnnotationTrack track = randomTrack(GetParam());
  const auto legacy = encodeTrackLegacy(track);
  EXPECT_EQ(decodeTrack(legacy), track);
  const LenientDecodeResult lenient = decodeTrackLenient(legacy);
  ASSERT_TRUE(lenient.usable);
  EXPECT_TRUE(lenient.damage.legacyFormat);
  EXPECT_EQ(lenient.track, track);
}

INSTANTIATE_TEST_SUITE_P(RandomTracks, FramingProperty,
                         ::testing::Range(1, 13));

AnnotationTrack deterministicTrack(int nscenes) {
  AnnotationTrack t;
  t.clipName = "deterministic";
  t.fps = 12.5;
  t.granularity = Granularity::kPerScene;
  t.qualityLevels = {0.0, 0.10, 0.20};
  std::uint32_t start = 0;
  for (int i = 0; i < nscenes; ++i) {
    SceneAnnotation s;
    s.span.firstFrame = start;
    s.span.frameCount = 20 + static_cast<std::uint32_t>((i * 13) % 50);
    start += s.span.frameCount;
    const auto base = static_cast<std::uint8_t>(240 - (i * 17) % 180);
    s.safeLuma = {base, static_cast<std::uint8_t>(base - base / 6),
                  static_cast<std::uint8_t>(base - base / 4)};
    t.scenes.push_back(std::move(s));
  }
  t.frameCount = start;
  return t;
}

TEST(Framing, DamagedSceneGroupIsRepairedPerSpan) {
  // 48 scenes -> header chunk + 3 scene-group chunks of 16.  Corrupt one
  // byte in the back third of the buffer (inside group 2 or 3): only that
  // neighbourhood's scene-spans may be replaced by full-backlight repair
  // scenes; everything else survives byte-exact.
  const AnnotationTrack track = deterministicTrack(48);
  auto bytes = encodeTrack(track);
  bytes[(bytes.size() * 2) / 3] ^= 0x5A;
  EXPECT_THROW((void)decodeTrack(bytes), std::runtime_error);

  const LenientDecodeResult lenient = decodeTrackLenient(bytes);
  ASSERT_TRUE(lenient.usable);
  ASSERT_TRUE(lenient.damage.headerIntact);
  EXPECT_GE(lenient.damage.damagedChunks, 1u);
  ASSERT_GE(lenient.damage.repairedSpans.size(), 1u);
  EXPECT_NO_THROW(validateTrack(lenient.track));
  EXPECT_EQ(lenient.track.frameCount, track.frameCount);
  EXPECT_GT(lenient.damage.damagedFrames, 0u);
  EXPECT_LT(lenient.damage.damagedFrames, track.frameCount)
      << "damage must stay local: most of the track survives";

  std::uint32_t repairedFrames = 0;
  for (const SceneSpan& span : lenient.damage.repairedSpans) {
    repairedFrames += span.frameCount;
  }
  EXPECT_EQ(lenient.damage.damagedFrames, repairedFrames);

  std::size_t survivors = 0;
  for (const SceneAnnotation& s : lenient.track.scenes) {
    bool isRepair = false;
    for (const SceneSpan& span : lenient.damage.repairedSpans) {
      if (s.span.firstFrame == span.firstFrame &&
          s.span.frameCount == span.frameCount) {
        isRepair = true;
        break;
      }
    }
    if (isRepair) {
      for (const std::uint8_t luma : s.safeLuma) {
        EXPECT_EQ(luma, 255) << "repair scenes must be full backlight";
      }
      continue;
    }
    // Every surviving scene decodes byte-exact from the original track.
    bool found = false;
    for (const SceneAnnotation& orig : track.scenes) {
      if (orig == s) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "scene at frame " << s.span.firstFrame;
    ++survivors;
  }
  // The first group (16 scenes) is ahead of the corruption and must be
  // entirely intact.
  EXPECT_GE(survivors, 16u);
}

TEST(Framing, HeaderDamageIsUnusableButSafe) {
  const AnnotationTrack track = randomTrack(3);
  auto bytes = encodeTrack(track);
  bytes[12] ^= 0xFF;  // inside the header chunk payload
  EXPECT_THROW((void)decodeTrack(bytes), std::runtime_error);
  const LenientDecodeResult lenient = decodeTrackLenient(bytes);
  EXPECT_FALSE(lenient.usable);
  EXPECT_FALSE(lenient.damage.headerIntact);
  EXPECT_GE(lenient.damage.damagedChunks, 1u);
}

TEST(Framing, StrictDecodeRejectsEverySingleByteCorruption) {
  // CRC32 catches any single-byte payload error; framing bytes (magic,
  // version, type, length, stored CRC) are covered too, because corrupting
  // them desyncs or orphans a chunk, which surfaces as damage.  So strict
  // decode must reject EVERY possible 1-byte corruption, exhaustively.
  const AnnotationTrack track = deterministicTrack(20);
  const auto bytes = encodeTrack(track);
  media::SplitMix64 rng(0xC0FFEE);
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    auto bad = bytes;
    bad[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    EXPECT_ANY_THROW((void)decodeTrack(bad)) << "byte " << pos;
    // And the lenient decoder, if it salvages anything, salvages something
    // valid and frame-complete.
    const LenientDecodeResult lenient = decodeTrackLenient(bad);
    if (lenient.usable) {
      EXPECT_NO_THROW(validateTrack(lenient.track)) << "byte " << pos;
      EXPECT_EQ(lenient.track.frameCount, track.frameCount) << "byte " << pos;
      EXPECT_FALSE(lenient.damage.intact()) << "byte " << pos;
    }
  }
}

}  // namespace
}  // namespace anno::core
