#!/usr/bin/env python3
"""Plot the CSV outputs of examples/full_evaluation (or any bench [csv:...]
block saved to a file), and render session-timeline JSON from
tools/trace_report in the paper's Fig. 7/8 style.

Usage:
    ./build/examples/full_evaluation results/
    tools/plot_results.py results/            # writes results/*.png

    ./build/tools/trace_report --outdir out/
    tools/plot_results.py --timeline out/trace_report.timeline.json
        # writes out/trace_report.timeline.png: backlight level and
        # display power vs time, with scene cuts and stalls marked

    ./build/tools/fleet_soak --out FLEET_SOAK.json
    tools/plot_results.py --soak FLEET_SOAK.json
        # writes FLEET_SOAK.png: diurnal load vs annotation-cache hit
        # rate vs backlight watts saved per hour of the virtual day

Requires matplotlib; degrades to printing a text summary without it.
"""
import csv
import json
import sys
from collections import defaultdict
from pathlib import Path


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def plot_quality_sweep(path, value_key, title, out, plt):
    series = defaultdict(list)
    for row in read_csv(path):
        series[row["clip"]].append(
            (float(row["quality"]), float(row[value_key])))
    fig, ax = plt.subplots(figsize=(8, 5))
    for clip, points in sorted(series.items()):
        points.sort()
        ax.plot([q * 100 for q, _ in points],
                [v * 100 for _, v in points], marker="o", label=clip)
    ax.set_xlabel("quality level (% pixels clipped)")
    ax.set_ylabel("savings (%)")
    ax.set_title(title)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")


def text_summary(path, value_key):
    best = defaultdict(float)
    for row in read_csv(path):
        best[row["clip"]] = max(best[row["clip"]], float(row[value_key]))
    print(f"\n{path.name} (best {value_key} per clip):")
    for clip, value in sorted(best.items(), key=lambda kv: -kv[1]):
        print(f"  {clip:24s} {100.0 * value:5.1f}%")


def timeline_text_summary(tl):
    totals = tl["totals"]
    print(f"{tl['clip']} on {tl['device']}: {tl['frames']} frames "
          f"@ {tl['fps']:g} fps, {len(tl['scenes'])} scenes")
    print(f"  backlight savings {100 * totals['backlight_savings_fraction']:.1f}%,"
          f" device savings {100 * totals['device_savings_fraction']:.1f}%,"
          f" {totals['stall_events']} stalls"
          f" ({totals['stall_seconds']:.2f}s)")
    for s in tl["scenes"]:
        print(f"  scene @{s['first_frame']:5d} x{s['frames']:4d}  "
              f"level {s['backlight_level']:3d}  k={s['gain_k']:.2f}  "
              f"cut={s['cut_reason']}")


def plot_timeline(path):
    """Backlight level + display power vs time (paper Fig. 7/8 style)."""
    with open(path) as f:
        tl = json.load(f)
    timeline_text_summary(tl)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; text summary only")
        return
    points = tl["points"]
    t = [p["seconds"] for p in points]
    level = [p["backlight_level"] for p in points]
    watts = [p["backlight_watts"] for p in points]
    device = [p["device_watts"] for p in points]

    fig, (ax1, ax2) = plt.subplots(2, 1, figsize=(9, 6), sharex=True)
    ax1.step(t, level, where="post", color="tab:blue")
    ax1.set_ylabel("backlight level (0-255)")
    ax1.set_ylim(0, 265)
    ax1.set_title(
        f"{tl['clip']} on {tl['device']}: annotated backlight schedule "
        f"(quality {100 * tl['quality_level']:g}%)")
    for scene in tl["scenes"]:
        ax1.axvline(scene["first_frame"] / tl["fps"], color="gray",
                    alpha=0.4, linewidth=0.7)
    ax2.step(t, watts, where="post", color="tab:orange",
             label="backlight power")
    ax2.step(t, device, where="post", color="tab:red", alpha=0.6,
             label="device power")
    stall_t = [p["seconds"] for p in points if p["stalled"]]
    if stall_t:
        ax2.scatter(stall_t, [0.0] * len(stall_t), marker="x",
                    color="black", label="rebuffer stall", zorder=3)
    ax2.set_xlabel("media time (s)")
    ax2.set_ylabel("power (W)")
    ax2.legend(fontsize=8)
    for ax in (ax1, ax2):
        ax.grid(True, alpha=0.3)
    fig.tight_layout()
    out = path.with_suffix(".png")
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")


def soak_text_summary(report):
    hours = report["hours"]
    print(f"fleet soak seed {report['seed']}: "
          f"{report['sessions_joined']} sessions, "
          f"{report['served_hours']:.1f} served-hours, "
          f"hit rate {report['cache_hit_rate']:.4f}, "
          f"{report['watts_saved_per_million_sessions']:.3g} W saved per "
          f"million sessions")
    print(f"  startup p50/p99 {report['startup_p50_seconds']:.3f}/"
          f"{report['startup_p99_seconds']:.3f}s, rebuffer p50/p99 "
          f"{report['rebuffer_p50_seconds']:.3f}/"
          f"{report['rebuffer_p99_seconds']:.3f}s")
    peak = max(hours, key=lambda h: h["arrivals"])
    trough = min(hours, key=lambda h: h["arrivals"])
    print(f"  diurnal arrivals: peak {peak['arrivals']} @ hour "
          f"{peak['hour']}, trough {trough['arrivals']} @ hour "
          f"{trough['hour']}")
    checks = report.get("self_checks", [])
    if checks:
        failed = [c["name"] for c in checks if not c["pass"]]
        print(f"  self-checks: {len(checks) - len(failed)}/{len(checks)} "
              f"passed" + (f" (FAILED: {', '.join(failed)})" if failed
                           else ""))


def plot_soak(path):
    """Fleet-report figure: diurnal load vs cache hit rate vs watts saved
    per hour of the virtual day (FLEET_SOAK.json from tools/fleet_soak)."""
    with open(path) as f:
        report = json.load(f)
    soak_text_summary(report)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; text summary only")
        return
    hours = report["hours"]
    h = [b["hour"] for b in hours]
    arrivals = [b["arrivals"] for b in hours]
    active = [b["active_at_end"] for b in hours]
    hit_rate = [100.0 * b["hit_rate"] for b in hours]
    # Mean saved watts across the sessions arriving that hour.
    watts = [b["joules_saved"] / b["served_seconds"]
             if b["served_seconds"] > 0 else 0.0 for b in hours]

    fig, (ax1, ax2, ax3) = plt.subplots(3, 1, figsize=(9, 8), sharex=True)
    ax1.bar(h, arrivals, color="tab:blue", alpha=0.7, label="arrivals")
    ax1.step(h, active, where="mid", color="tab:red",
             label="active at hour end")
    ax1.set_ylabel("sessions")
    ax1.set_title(
        f"fleet soak: {report['sessions_joined']} sessions, "
        f"{report['served_hours']:.1f} served-hours, "
        f"{report['watts_saved_per_million_sessions']:.3g} W saved per "
        f"million sessions")
    ax1.legend(fontsize=8)
    ax2.plot(h, hit_rate, marker="o", color="tab:green")
    ax2.set_ylabel("annotation-cache hit rate (%)")
    ax2.set_ylim(min(hit_rate) - 1 if hit_rate else 0, 100.5)
    ax3.plot(h, watts, marker="s", color="tab:orange")
    ax3.set_ylabel("mean backlight W saved / session")
    ax3.set_xlabel("virtual hour of day")
    ax3.set_xticks(range(0, 24, 2))
    for ax in (ax1, ax2, ax3):
        ax.grid(True, alpha=0.3)
    fig.tight_layout()
    out = path.with_suffix(".png")
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")


def health_text_summary(doc):
    deg = doc["degraded"]
    events = deg.get("health_events", [])
    rules = deg.get("health_rules", [])
    print(f"fleet health: {deg['sessions_joined']} sessions, "
          f"{deg['ticks']} ticks, {len(events)} SLO transitions, "
          f"{deg.get('flight_capture_count', 0)} flight captures "
          f"({doc.get('clean_events', 0)} events on the clean run)")
    for rule in rules:
        print(f"  {rule['name']:36s} {rule['state']:7s} "
              f"fired x{rule['fire_count']}  margin {rule['margin']:+.4g}")
    for e in events:
        kind = "FIRED  " if e["fired"] else "cleared"
        print(f"  tick {e['tick']:6d} hour {e['hour']:2d}  {kind} "
              f"{e['rule']} (fast {e['fast']:g} vs limit {e['limit']:g})")
    checks = doc.get("self_checks", [])
    if checks:
        failed = [c["name"] for c in checks if not c["pass"]]
        print(f"  self-checks: {len(checks) - len(failed)}/{len(checks)} "
              f"passed" + (f" (FAILED: {', '.join(failed)})" if failed
                           else ""))


def plot_health(path):
    """Live-health figure: per-rule SLO margin over the virtual day with
    firing/clearing transitions marked (HEALTH_events.json from
    tools/fleet_health)."""
    with open(path) as f:
        doc = json.load(f)
    health_text_summary(doc)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; text summary only")
        return
    deg = doc["degraded"]
    samples = deg.get("health_samples", [])
    events = deg.get("health_events", [])
    if not samples:
        print("no health samples in report; nothing to plot")
        return
    by_rule = defaultdict(list)
    for s in samples:
        by_rule[s["rule"]].append((s["tick"], s["margin"], s["state"]))

    fig, (ax1, ax2) = plt.subplots(2, 1, figsize=(9, 7), sharex=True)
    for rule, points in sorted(by_rule.items()):
        points.sort()
        ax1.plot([t for t, _, _ in points], [m for _, m, _ in points],
                 marker=".", label=rule)
    ax1.axhline(0.0, color="black", linewidth=0.8)
    ax1.set_ylabel("SLO margin (+ = healthy headroom)")
    ax1.set_title(
        f"fleet health: {len(events)} SLO transitions over "
        f"{deg['ticks']} ticks "
        f"({deg.get('flight_capture_count', 0)} flight captures)")
    ax1.legend(fontsize=7)
    rules = sorted({e["rule"] for e in events})
    lanes = {r: i for i, r in enumerate(rules)}
    for e in events:
        color = "tab:red" if e["fired"] else "tab:green"
        marker = "v" if e["fired"] else "^"
        ax2.scatter(e["tick"], lanes[e["rule"]], color=color, marker=marker,
                    zorder=3)
        ax1.axvline(e["tick"], color=color, alpha=0.25, linewidth=0.8)
    ax2.set_yticks(range(len(rules)))
    ax2.set_yticklabels(rules, fontsize=7)
    ax2.set_ylim(-0.5, max(len(rules) - 0.5, 0.5))
    ax2.set_xlabel("scheduler tick")
    ax2.set_ylabel("transitions (v fired, ^ cleared)")
    for ax in (ax1, ax2):
        ax.grid(True, alpha=0.3)
    fig.tight_layout()
    out = path.with_suffix(".png")
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--health":
        if len(sys.argv) != 3:
            sys.exit("usage: plot_results.py --health HEALTH_events.json")
        plot_health(Path(sys.argv[2]))
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--soak":
        if len(sys.argv) != 3:
            sys.exit("usage: plot_results.py --soak FLEET_SOAK.json")
        plot_soak(Path(sys.argv[2]))
        return
    if len(sys.argv) >= 2 and sys.argv[1] == "--timeline":
        if len(sys.argv) != 3:
            sys.exit("usage: plot_results.py --timeline TIMELINE_JSON")
        plot_timeline(Path(sys.argv[2]))
        return
    results = Path(sys.argv[1] if len(sys.argv) > 1 else "evaluation_results")
    fig9 = results / "fig9_backlight_savings.csv"
    fig10 = results / "fig10_total_savings.csv"
    if not fig9.exists():
        sys.exit(f"no {fig9}; run ./build/examples/full_evaluation {results}")
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; text summary only")
        text_summary(fig9, "backlight_savings")
        if fig10.exists():
            text_summary(fig10, "total_savings_daq")
        return
    plot_quality_sweep(fig9, "backlight_savings",
                       "Fig. 9: LCD backlight power savings (simulated)",
                       results / "fig9.png", plt)
    if fig10.exists():
        plot_quality_sweep(fig10, "total_savings_daq",
                           "Fig. 10: total device power savings (measured)",
                           results / "fig10.png", plt)


if __name__ == "__main__":
    main()
