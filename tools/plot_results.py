#!/usr/bin/env python3
"""Plot the CSV outputs of examples/full_evaluation (or any bench [csv:...]
block saved to a file), and render session-timeline JSON from
tools/trace_report in the paper's Fig. 7/8 style.

Usage:
    ./build/examples/full_evaluation results/
    tools/plot_results.py results/            # writes results/*.png

    ./build/tools/trace_report --outdir out/
    tools/plot_results.py --timeline out/trace_report.timeline.json
        # writes out/trace_report.timeline.png: backlight level and
        # display power vs time, with scene cuts and stalls marked

Requires matplotlib; degrades to printing a text summary without it.
"""
import csv
import json
import sys
from collections import defaultdict
from pathlib import Path


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def plot_quality_sweep(path, value_key, title, out, plt):
    series = defaultdict(list)
    for row in read_csv(path):
        series[row["clip"]].append(
            (float(row["quality"]), float(row[value_key])))
    fig, ax = plt.subplots(figsize=(8, 5))
    for clip, points in sorted(series.items()):
        points.sort()
        ax.plot([q * 100 for q, _ in points],
                [v * 100 for _, v in points], marker="o", label=clip)
    ax.set_xlabel("quality level (% pixels clipped)")
    ax.set_ylabel("savings (%)")
    ax.set_title(title)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")


def text_summary(path, value_key):
    best = defaultdict(float)
    for row in read_csv(path):
        best[row["clip"]] = max(best[row["clip"]], float(row[value_key]))
    print(f"\n{path.name} (best {value_key} per clip):")
    for clip, value in sorted(best.items(), key=lambda kv: -kv[1]):
        print(f"  {clip:24s} {100.0 * value:5.1f}%")


def timeline_text_summary(tl):
    totals = tl["totals"]
    print(f"{tl['clip']} on {tl['device']}: {tl['frames']} frames "
          f"@ {tl['fps']:g} fps, {len(tl['scenes'])} scenes")
    print(f"  backlight savings {100 * totals['backlight_savings_fraction']:.1f}%,"
          f" device savings {100 * totals['device_savings_fraction']:.1f}%,"
          f" {totals['stall_events']} stalls"
          f" ({totals['stall_seconds']:.2f}s)")
    for s in tl["scenes"]:
        print(f"  scene @{s['first_frame']:5d} x{s['frames']:4d}  "
              f"level {s['backlight_level']:3d}  k={s['gain_k']:.2f}  "
              f"cut={s['cut_reason']}")


def plot_timeline(path):
    """Backlight level + display power vs time (paper Fig. 7/8 style)."""
    with open(path) as f:
        tl = json.load(f)
    timeline_text_summary(tl)
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; text summary only")
        return
    points = tl["points"]
    t = [p["seconds"] for p in points]
    level = [p["backlight_level"] for p in points]
    watts = [p["backlight_watts"] for p in points]
    device = [p["device_watts"] for p in points]

    fig, (ax1, ax2) = plt.subplots(2, 1, figsize=(9, 6), sharex=True)
    ax1.step(t, level, where="post", color="tab:blue")
    ax1.set_ylabel("backlight level (0-255)")
    ax1.set_ylim(0, 265)
    ax1.set_title(
        f"{tl['clip']} on {tl['device']}: annotated backlight schedule "
        f"(quality {100 * tl['quality_level']:g}%)")
    for scene in tl["scenes"]:
        ax1.axvline(scene["first_frame"] / tl["fps"], color="gray",
                    alpha=0.4, linewidth=0.7)
    ax2.step(t, watts, where="post", color="tab:orange",
             label="backlight power")
    ax2.step(t, device, where="post", color="tab:red", alpha=0.6,
             label="device power")
    stall_t = [p["seconds"] for p in points if p["stalled"]]
    if stall_t:
        ax2.scatter(stall_t, [0.0] * len(stall_t), marker="x",
                    color="black", label="rebuffer stall", zorder=3)
    ax2.set_xlabel("media time (s)")
    ax2.set_ylabel("power (W)")
    ax2.legend(fontsize=8)
    for ax in (ax1, ax2):
        ax.grid(True, alpha=0.3)
    fig.tight_layout()
    out = path.with_suffix(".png")
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--timeline":
        if len(sys.argv) != 3:
            sys.exit("usage: plot_results.py --timeline TIMELINE_JSON")
        plot_timeline(Path(sys.argv[2]))
        return
    results = Path(sys.argv[1] if len(sys.argv) > 1 else "evaluation_results")
    fig9 = results / "fig9_backlight_savings.csv"
    fig10 = results / "fig10_total_savings.csv"
    if not fig9.exists():
        sys.exit(f"no {fig9}; run ./build/examples/full_evaluation {results}")
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; text summary only")
        text_summary(fig9, "backlight_savings")
        if fig10.exists():
            text_summary(fig10, "total_savings_daq")
        return
    plot_quality_sweep(fig9, "backlight_savings",
                       "Fig. 9: LCD backlight power savings (simulated)",
                       results / "fig9.png", plt)
    if fig10.exists():
        plot_quality_sweep(fig10, "total_savings_daq",
                           "Fig. 10: total device power savings (measured)",
                           results / "fig10.png", plt)


if __name__ == "__main__":
    main()
