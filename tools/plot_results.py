#!/usr/bin/env python3
"""Plot the CSV outputs of examples/full_evaluation (or any bench [csv:...]
block saved to a file).

Usage:
    ./build/examples/full_evaluation results/
    tools/plot_results.py results/            # writes results/*.png

Requires matplotlib; degrades to printing a text summary without it.
"""
import csv
import sys
from collections import defaultdict
from pathlib import Path


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def plot_quality_sweep(path, value_key, title, out, plt):
    series = defaultdict(list)
    for row in read_csv(path):
        series[row["clip"]].append(
            (float(row["quality"]), float(row[value_key])))
    fig, ax = plt.subplots(figsize=(8, 5))
    for clip, points in sorted(series.items()):
        points.sort()
        ax.plot([q * 100 for q, _ in points],
                [v * 100 for _, v in points], marker="o", label=clip)
    ax.set_xlabel("quality level (% pixels clipped)")
    ax.set_ylabel("savings (%)")
    ax.set_title(title)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=140)
    print(f"wrote {out}")


def text_summary(path, value_key):
    best = defaultdict(float)
    for row in read_csv(path):
        best[row["clip"]] = max(best[row["clip"]], float(row[value_key]))
    print(f"\n{path.name} (best {value_key} per clip):")
    for clip, value in sorted(best.items(), key=lambda kv: -kv[1]):
        print(f"  {clip:24s} {100.0 * value:5.1f}%")


def main():
    results = Path(sys.argv[1] if len(sys.argv) > 1 else "evaluation_results")
    fig9 = results / "fig9_backlight_savings.csv"
    fig10 = results / "fig10_total_savings.csv"
    if not fig9.exists():
        sys.exit(f"no {fig9}; run ./build/examples/full_evaluation {results}")
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; text summary only")
        text_summary(fig9, "backlight_savings")
        if fig10.exists():
            text_summary(fig10, "total_savings_daq")
        return
    plot_quality_sweep(fig9, "backlight_savings",
                       "Fig. 9: LCD backlight power savings (simulated)",
                       results / "fig9.png", plt)
    if fig10.exists():
        plot_quality_sweep(fig10, "total_savings_daq",
                           "Fig. 10: total device power savings (measured)",
                           results / "fig10.png", plt)


if __name__ == "__main__":
    main()
