// metrics_dump: runs a representative end-to-end workload with every
// telemetry hook attached and prints the resulting registry in both
// exposition formats (Prometheus text, then JSON).
//
// Doubles as the determinism check the telemetry contract promises: the
// same workload runs at 1, 2 and 8 annotator threads into fresh registries,
// and every semantic counter must be bit-identical across thread counts.
// Scheduling-dependent instruments (anno_pool_*, which depend on how work
// races onto the queue) and wall-time histograms (*_seconds) are exempt --
// everything else differing is a bug and exits nonzero.
//
// Run: ./build/tools/metrics_dump [--format prom|json] [--out FILE]
//   --format prom|json   emit only that exposition format (default: both)
//   --out FILE           write the exposition to FILE instead of stdout
//                        (the determinism verdict stays on stdout)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "concurrency/thread_pool.h"
#include "core/anno_codec.h"
#include "core/engine_metrics.h"
#include "fault/inject.h"
#include "media/clipgen.h"
#include "media/codec.h"
#include "power/power.h"
#include "stream/client.h"
#include "stream/loss.h"
#include "stream/proxy.h"
#include "stream/server.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

using namespace anno;

namespace {

/// One full system pass: server ingest + serve (twice, for a cache hit),
/// proxy transcode, intact + fault-damaged client receptions, lossy video
/// and annotation delivery with and without NACK, and a fault corpus over
/// the encoded annotation track.  Everything records into `registry`.
void runWorkload(telemetry::Registry& registry, unsigned threads) {
  core::attachCodecTelemetry(registry);
  concurrency::attachPoolTelemetry(registry);
  stream::attachLossTelemetry(registry);
  fault::attachFaultTelemetry(registry);

  core::EngineTelemetry engineObserver(registry);
  core::AnnotatorConfig annotatorCfg;
  annotatorCfg.threads = threads;
  annotatorCfg.observer = &engineObserver;

  stream::MediaServer server(annotatorCfg);
  server.attachTelemetry(registry);
  media::VideoClip movie =
      media::generatePaperClip(media::PaperClip::kTheMovie, 0.06, 64, 48);
  media::VideoClip cartoon =
      media::generatePaperClip(media::PaperClip::kShrek2, 0.06, 64, 48);
  const std::string movieName = movie.name;
  const std::string cartoonName = cartoon.name;
  server.addClips({std::move(movie), std::move(cartoon)});

  const power::MobileDevicePower pda = power::makeIpaq5555Power();
  stream::ClientConfig clientCfg{pda.displayDevice(), /*qualityIndex=*/1,
                                 /*minBacklightLevel=*/10};
  stream::ClientSession client(clientCfg, stream::makeReferencePath());
  client.attachTelemetry(registry);

  // Server path, twice with identical negotiation: miss then cache hit.
  const auto served = server.serve(movieName, client.capabilities());
  (void)server.serve(movieName, client.capabilities());
  (void)client.receive(served);

  // Proxy path: legacy raw stream re-annotated on the fly.
  stream::ProxyNode proxy(annotatorCfg);
  proxy.attachTelemetry(registry);
  const auto raw = server.serveRaw(cartoonName);
  (void)client.receive(proxy.transcode(raw, client.capabilities()));

  // Damaged streams: a deterministic fault corpus over the served bytes,
  // every buffer handed to the client, which must degrade (fallback,
  // repaired spans, slew clamps, or ok == false) -- never throw.
  fault::InjectorConfig faultCfg;
  faultCfg.maxMutations = 6;
  fault::runCorpus(served, /*masterSeed=*/0x51, /*count=*/8, faultCfg,
                   [&client](std::span<const std::uint8_t> mutated,
                             const fault::InjectionPlan&,
                             const fault::InjectionReport&) {
                     (void)client.receive(mutated);
                   });

  // Annotation-targeted damage: a per-frame-granularity track spans several
  // scene-group chunks (16 scenes per chunk), so flipping bits in its back
  // half damages SOME chunks while the header and earlier groups survive.
  // Unlike the random corpus (which mostly lands in the much larger video
  // section), this reliably exercises the client's partial-repair path:
  // lenient decode synthesizes full-backlight spans next to real scenes,
  // and the slew-rate limiter clamps the level jumps at repair boundaries.
  const media::VideoClip damageClip =
      media::generatePaperClip(media::PaperClip::kTheMovie, 0.06, 64, 48);
  core::AnnotatorConfig perFrameCfg = annotatorCfg;
  perFrameCfg.granularity = core::Granularity::kPerFrame;
  const core::AnnotationTrack perFrameTrack =
      core::annotateClip(damageClip, perFrameCfg);
  const std::vector<std::uint8_t> perFrameBytes =
      core::encodeTrack(perFrameTrack);
  const std::vector<std::uint8_t> damaged = [&] {
    std::vector<std::uint8_t> bytes =
        stream::mux(media::encodeClip(damageClip), &perFrameTrack);
    const auto trackPos = std::search(bytes.begin(), bytes.end(),
                                      perFrameBytes.begin(),
                                      perFrameBytes.end());
    if (trackPos == bytes.end()) return bytes;
    const auto base = static_cast<std::size_t>(trackPos - bytes.begin());
    fault::InjectionPlan annoPlan;
    annoPlan.seed = 0xA110;
    for (std::size_t i = 5; i <= 7; ++i) {
      fault::Mutation m;
      m.kind = fault::MutationKind::kBitFlip;
      m.offset = base + (i * perFrameBytes.size()) / 8;
      m.value = 2;
      annoPlan.mutations.push_back(m);
    }
    return fault::applyPlan(bytes, annoPlan);
  }();
  (void)client.receive(damaged);

  // Negotiation mismatch: a client asking for a quality level the track does
  // not carry must fall back (annotations present but unusable).
  stream::ClientConfig mismatchCfg = clientCfg;
  mismatchCfg.qualityIndex = 9;
  stream::ClientSession mismatchClient(mismatchCfg,
                                       stream::makeReferencePath());
  mismatchClient.attachTelemetry(registry);
  (void)mismatchClient.receive(served);

  // Lossy video hop: packetized delivery + concealment.
  const media::EncodedClip encoded = media::encodeClip(
      media::generatePaperClip(media::PaperClip::kTheMovie, 0.06, 64, 48));
  const stream::Link wireless{"802.11b", 11e6, 0.002, 1500};
  const stream::LossyChannel channel{/*packetLossProbability=*/0.08,
                                     /*seed=*/0x7};
  const auto deliveries = stream::deliverFrames(encoded, wireless, channel);
  (void)stream::decodeWithConcealment(encoded, deliveries);

  // Annotation track over a tiny-MTU hop (the per-frame track spans dozens
  // of packets): erasures without NACK, recovery with; the erased bytes
  // then exercise the lenient decoder's repairs.
  const stream::Link tinyMtu{"802.11b-frag", 11e6, 0.002,
                             /*mtuBytes=*/stream::kPacketHeaderBytes + 24};
  stream::AnnotationDeliveryConfig lossyCfg;
  lossyCfg.channel = {/*packetLossProbability=*/0.30, /*seed=*/0x11};
  const auto erased =
      stream::deliverAnnotationTrack(perFrameBytes, tinyMtu, lossyCfg);
  (void)core::decodeTrackLenient(erased.bytes);
  lossyCfg.nackEnabled = true;
  (void)stream::deliverAnnotationTrack(perFrameBytes, tinyMtu, lossyCfg);

  // Fault corpus over the encoded track: every mutated buffer must decode
  // leniently (the fault suite's contract), counting plans and mutations.
  fault::runCorpus(perFrameBytes, /*masterSeed=*/0xC0FFEE, /*count=*/8,
                   faultCfg,
                   [](std::span<const std::uint8_t> mutated,
                      const fault::InjectionPlan&,
                      const fault::InjectionReport&) {
                     (void)core::decodeTrackLenient(mutated);
                   });

  core::detachCodecTelemetry();
  concurrency::detachPoolTelemetry();
  stream::detachLossTelemetry();
  fault::detachFaultTelemetry();
}

/// Scheduling-dependent instruments excluded from the cross-thread-count
/// comparison: pool counters (how work lands on the queue is a race) and
/// wall-time histograms (durations are not deterministic; their event
/// *counts* still are, but the bucket spread is not).
bool exemptFromDeterminism(const std::string& name) {
  if (name.rfind("anno_pool_", 0) == 0) return true;
  const std::string suffix = "_seconds";
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Compares two snapshots over the non-exempt instruments; prints every
/// mismatch and returns whether they agreed.
bool semanticallyEqual(const telemetry::Snapshot& a,
                       const telemetry::Snapshot& b, unsigned threadsA,
                       unsigned threadsB) {
  bool equal = true;
  auto describe = [](const telemetry::InstrumentSnapshot& s) {
    std::string id = s.name;
    for (const auto& [k, v] : s.labels) id += "{" + k + "=" + v + "}";
    return id;
  };
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.instruments.size() || ib < b.instruments.size()) {
    // Snapshots are sorted by (name, labels); walk them in lockstep.
    const auto* sa = ia < a.instruments.size() ? &a.instruments[ia] : nullptr;
    const auto* sb = ib < b.instruments.size() ? &b.instruments[ib] : nullptr;
    if (sa != nullptr && exemptFromDeterminism(sa->name)) { ++ia; continue; }
    if (sb != nullptr && exemptFromDeterminism(sb->name)) { ++ib; continue; }
    if (sa == nullptr || sb == nullptr ||
        describe(*sa) != describe(*sb)) {
      std::printf("DETERMINISM MISMATCH: instrument sets differ (%s vs %s)\n",
                  sa != nullptr ? describe(*sa).c_str() : "<end>",
                  sb != nullptr ? describe(*sb).c_str() : "<end>");
      return false;
    }
    bool same = sa->kind == sb->kind;
    if (same) {
      switch (sa->kind) {
        case telemetry::InstrumentKind::kCounter:
          same = sa->counterValue == sb->counterValue;
          break;
        case telemetry::InstrumentKind::kGauge:
          same = sa->gaugeValue == sb->gaugeValue;
          break;
        case telemetry::InstrumentKind::kHistogram:
          same = sa->histogram.counts == sb->histogram.counts &&
                 sa->histogram.count == sb->histogram.count &&
                 sa->histogram.sum == sb->histogram.sum;
          break;
      }
    }
    if (!same) {
      std::printf("DETERMINISM MISMATCH: %s differs between threads=%u "
                  "and threads=%u\n",
                  describe(*sa).c_str(), threadsA, threadsB);
      equal = false;
    }
    ++ia;
    ++ib;
  }
  return equal;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Format { kBoth, kProm, kJson };
  Format format = Format::kBoth;
  std::string outPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "prom") {
        format = Format::kProm;
      } else if (value == "json") {
        format = Format::kJson;
      } else {
        std::fprintf(stderr, "metrics_dump: unknown format '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: metrics_dump [--format prom|json] [--out FILE]\n");
      return 2;
    }
  }

  // Determinism sweep: fresh registry per thread count, semantic counters
  // must agree bit-for-bit.
  const unsigned sweep[] = {1, 2, 8};
  std::vector<telemetry::Snapshot> snapshots;
  for (unsigned threads : sweep) {
    telemetry::Registry registry;
    runWorkload(registry, threads);
    snapshots.push_back(telemetry::scrape(registry));
  }
  bool deterministic = true;
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    deterministic &= semanticallyEqual(snapshots[0], snapshots[i], sweep[0],
                                       sweep[i]);
  }

  // Exposition formats from the threads=2 run (pool metrics non-zero there:
  // threads=1 is the serial fast path and never builds a pool).
  std::string exposition;
  if (format == Format::kBoth || format == Format::kProm) {
    exposition += telemetry::toPrometheusText(snapshots[1]) + "\n";
  }
  if (format == Format::kBoth || format == Format::kJson) {
    exposition += telemetry::toJson(snapshots[1]) + "\n";
  }
  if (outPath.empty()) {
    std::printf("%s", exposition.c_str());
  } else {
    std::ofstream out(outPath, std::ios::binary);
    out << exposition;
    out.close();
    if (!out) {
      std::fprintf(stderr, "metrics_dump: cannot write %s\n", outPath.c_str());
      return 2;
    }
    std::printf("# wrote %zu bytes to %s\n", exposition.size(),
                outPath.c_str());
  }
  std::printf("# determinism across threads {1,2,8}: %s\n",
              deterministic ? "ok" : "FAILED");
  return deterministic ? 0 : 1;
}
