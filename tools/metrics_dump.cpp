// metrics_dump: runs a representative end-to-end workload with every
// telemetry hook attached and prints the resulting registry in both
// exposition formats (Prometheus text, then JSON).
//
// Doubles as the determinism check the telemetry contract promises: the
// same workload runs at 1, 2 and 8 annotator threads into fresh registries,
// and every semantic counter must be bit-identical across thread counts.
// Scheduling-dependent instruments (anno_pool_*, which depend on how work
// races onto the queue) and wall-time histograms (*_seconds) are exempt --
// everything else differing is a bug and exits nonzero.
//
// Run: ./build/tools/metrics_dump [--format prom|json] [--out FILE]
//   --format prom|json   emit only that exposition format (default: both)
//   --out FILE           write the exposition to FILE instead of stdout
//                        (the determinism verdict stays on stdout)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "soak/harness.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

using namespace anno;

namespace {

/// One full system pass: server ingest + serve (twice, for a cache hit),
/// proxy transcode, intact + fault-damaged client receptions, lossy video
/// and annotation delivery with and without NACK, and a fault corpus over
/// the encoded annotation track.  Everything records into `registry`.
/// The workload itself is the shared canned harness (soak/harness.h) with
/// every metrics-relevant arm enabled -- the same pass tools/trace_report
/// traces and tools/fleet_soak smoke-tests.
void runWorkload(telemetry::Registry& registry, unsigned threads) {
  soak::HarnessOptions opts;
  opts.threads = threads;
  opts.registry = &registry;
  soak::runCannedWorkload(opts);
}

/// Scheduling-dependent instruments excluded from the cross-thread-count
/// comparison: pool counters (how work lands on the queue is a race) and
/// wall-time histograms (durations are not deterministic; their event
/// *counts* still are, but the bucket spread is not).
bool exemptFromDeterminism(const std::string& name) {
  if (name.rfind("anno_pool_", 0) == 0) return true;
  const std::string suffix = "_seconds";
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Compares two snapshots over the non-exempt instruments; prints every
/// mismatch and returns whether they agreed.
bool semanticallyEqual(const telemetry::Snapshot& a,
                       const telemetry::Snapshot& b, unsigned threadsA,
                       unsigned threadsB) {
  bool equal = true;
  auto describe = [](const telemetry::InstrumentSnapshot& s) {
    std::string id = s.name;
    for (const auto& [k, v] : s.labels) id += "{" + k + "=" + v + "}";
    return id;
  };
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.instruments.size() || ib < b.instruments.size()) {
    // Snapshots are sorted by (name, labels); walk them in lockstep.
    const auto* sa = ia < a.instruments.size() ? &a.instruments[ia] : nullptr;
    const auto* sb = ib < b.instruments.size() ? &b.instruments[ib] : nullptr;
    if (sa != nullptr && exemptFromDeterminism(sa->name)) { ++ia; continue; }
    if (sb != nullptr && exemptFromDeterminism(sb->name)) { ++ib; continue; }
    if (sa == nullptr || sb == nullptr ||
        describe(*sa) != describe(*sb)) {
      std::printf("DETERMINISM MISMATCH: instrument sets differ (%s vs %s)\n",
                  sa != nullptr ? describe(*sa).c_str() : "<end>",
                  sb != nullptr ? describe(*sb).c_str() : "<end>");
      return false;
    }
    bool same = sa->kind == sb->kind;
    if (same) {
      switch (sa->kind) {
        case telemetry::InstrumentKind::kCounter:
          same = sa->counterValue == sb->counterValue;
          break;
        case telemetry::InstrumentKind::kGauge:
          same = sa->gaugeValue == sb->gaugeValue;
          break;
        case telemetry::InstrumentKind::kHistogram:
          same = sa->histogram.counts == sb->histogram.counts &&
                 sa->histogram.count == sb->histogram.count &&
                 sa->histogram.sum == sb->histogram.sum;
          break;
      }
    }
    if (!same) {
      std::printf("DETERMINISM MISMATCH: %s differs between threads=%u "
                  "and threads=%u\n",
                  describe(*sa).c_str(), threadsA, threadsB);
      equal = false;
    }
    ++ia;
    ++ib;
  }
  return equal;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Format { kBoth, kProm, kJson };
  Format format = Format::kBoth;
  std::string outPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "prom") {
        format = Format::kProm;
      } else if (value == "json") {
        format = Format::kJson;
      } else {
        std::fprintf(stderr, "metrics_dump: unknown format '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: metrics_dump [--format prom|json] [--out FILE]\n");
      return 2;
    }
  }

  // Determinism sweep: fresh registry per thread count, semantic counters
  // must agree bit-for-bit.
  const unsigned sweep[] = {1, 2, 8};
  std::vector<telemetry::Snapshot> snapshots;
  for (unsigned threads : sweep) {
    telemetry::Registry registry;
    runWorkload(registry, threads);
    snapshots.push_back(telemetry::scrape(registry));
  }
  bool deterministic = true;
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    deterministic &= semanticallyEqual(snapshots[0], snapshots[i], sweep[0],
                                       sweep[i]);
  }

  // Exposition formats from the threads=2 run (pool metrics non-zero there:
  // threads=1 is the serial fast path and never builds a pool).
  std::string exposition;
  if (format == Format::kBoth || format == Format::kProm) {
    exposition += telemetry::toPrometheusText(snapshots[1]) + "\n";
  }
  if (format == Format::kBoth || format == Format::kJson) {
    exposition += telemetry::toJson(snapshots[1]) + "\n";
  }
  if (outPath.empty()) {
    std::printf("%s", exposition.c_str());
  } else {
    std::ofstream out(outPath, std::ios::binary);
    out << exposition;
    out.close();
    if (!out) {
      std::fprintf(stderr, "metrics_dump: cannot write %s\n", outPath.c_str());
      return 2;
    }
    std::printf("# wrote %zu bytes to %s\n", exposition.size(),
                outPath.c_str());
  }
  std::printf("# determinism across threads {1,2,8}: %s\n",
              deterministic ? "ok" : "FAILED");
  return deterministic ? 0 : 1;
}
