// fleet_soak: trace-driven fleet soak harness + capacity-model validation.
//
// Composes everything PRs 1-8 built -- engine, TrackCache, MediaServer,
// SessionScheduler, fault injectors, power models -- into one sustained
// diurnal load and gates on the fleet-level questions:
//
//   1. Smoke: the canned Fig. 1 workload (server -> proxy -> client -> loss,
//      fault corpora live) runs end to end.
//   2. Soak: a deterministic traffic mix (device classes x content profiles
//      x tenant configs on a diurnal arrival curve, >= 50k sessions and
//      >= 8 tenants by default, ~2% of sessions fault-injected and decoded
//      through a real client) replays against the real serving stack.
//   3. Determinism: the identical config runs AGAIN and the deterministic
//      core of both reports must be byte-identical.
//   4. Capacity: a CapacityModel fit from the soak predicts a held-out mix
//      (different seed); a fresh measured run must agree within tolerance
//      on every deterministic metric.
//
// Writes FLEET_SOAK.json (fleet report + capacity-validation block) and
// exits nonzero if any self-check fails.
//
// Run: ./build/tools/fleet_soak [--sessions N] [--tenants N] [--seed X]
//        [--day-seconds S] [--policy rr|deadline] [--budget N]
//        [--delivery-threads N] [--holdout-sessions N] [--tolerance F]
//        [--out FILE] [--allow-small] [--skip-smoke]
#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "soak/capacity.h"
#include "soak/driver.h"
#include "soak/harness.h"
#include "soak/traffic_mix.h"

using namespace anno;

namespace {

struct Check {
  std::string name;
  bool pass = false;
  std::string detail;
};

void add(std::vector<Check>& checks, std::string name, bool pass,
         std::string detail) {
  std::printf("[%s] %-28s %s\n", pass ? "ok" : "FAIL", name.c_str(),
              detail.c_str());
  checks.push_back({std::move(name), pass, std::move(detail)});
}

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  soak::SoakConfig cfg;
  std::size_t holdoutSessions = 0;  // 0 = sessions / 4
  double tolerance = 0.10;
  std::string outPath = "FLEET_SOAK.json";
  bool allowSmall = false;
  bool skipSmoke = false;
  for (int i = 1; i < argc; ++i) {
    const auto intArg = [&](const char* name, auto& slot) {
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        slot = static_cast<std::decay_t<decltype(slot)>>(
            std::strtoull(argv[++i], nullptr, 0));
        return true;
      }
      return false;
    };
    if (intArg("--sessions", cfg.mix.sessions)) continue;
    if (intArg("--tenants", cfg.mix.tenantCount)) continue;
    if (intArg("--seed", cfg.mix.seed)) continue;
    if (intArg("--budget", cfg.serviceBudgetPerTick)) continue;
    if (intArg("--delivery-threads", cfg.deliveryThreads)) continue;
    if (intArg("--holdout-sessions", holdoutSessions)) continue;
    if (std::strcmp(argv[i], "--day-seconds") == 0 && i + 1 < argc) {
      cfg.mix.daySeconds = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "rr") {
        cfg.policy = stream::SchedulePolicy::kRoundRobin;
      } else if (value == "deadline") {
        cfg.policy = stream::SchedulePolicy::kDeadline;
      } else {
        std::fprintf(stderr, "fleet_soak: unknown policy '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      outPath = argv[++i];
    } else if (std::strcmp(argv[i], "--allow-small") == 0) {
      allowSmall = true;
    } else if (std::strcmp(argv[i], "--skip-smoke") == 0) {
      skipSmoke = true;
    } else {
      std::fprintf(
          stderr,
          "usage: fleet_soak [--sessions N] [--tenants N] [--seed X]\n"
          "         [--day-seconds S] [--policy rr|deadline] [--budget N]\n"
          "         [--delivery-threads N] [--holdout-sessions N]\n"
          "         [--tolerance F] [--out FILE] [--allow-small]"
          " [--skip-smoke]\n");
      return 2;
    }
  }

  std::vector<Check> checks;

  // 1. Smoke: the full canned workload, every arm on.  A throw here means
  // the serving stack is broken before we even reach scale.
  if (!skipSmoke) {
    bool smokeOk = true;
    std::string detail = "server->proxy->client->loss, fault corpora live";
    try {
      soak::HarnessOptions smoke;
      smoke.sessionSim = true;
      soak::runCannedWorkload(smoke);
    } catch (const std::exception& e) {
      smokeOk = false;
      detail = fmt("threw: %s", e.what());
    }
    add(checks, "smoke_workload", smokeOk, detail);
  }

  // 2. The soak itself.
  std::printf("soak: %zu sessions, %zu tenants, seed 0x%" PRIx64
              ", day %.0fs...\n",
              cfg.mix.sessions, cfg.mix.tenantCount, cfg.mix.seed,
              cfg.mix.daySeconds);
  soak::FleetSoakReport report;
  try {
    report = soak::runSoak(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet_soak: soak crashed: %s\n", e.what());
    return 1;
  }
  std::printf(
      "soak: %zu joined, %zu completed, %zu left, peak %zu concurrent, "
      "%" PRIu64 " ticks, %.1fs wall\n",
      report.sessionsJoined, report.sessionsCompleted, report.sessionsLeft,
      report.peakConcurrentSessions, report.ticks, report.soakWallSeconds);
  std::printf(
      "soak: hit rate %.4f, %.1f served-hours, %.3g W saved/M-sessions, "
      "startup p50/p99 %.3f/%.3f s, rebuffer p50/p99 %.3f/%.3f s\n",
      report.cacheHitRate, report.servedHours,
      report.wattsSavedPerMillionSessions, report.startupP50Seconds,
      report.startupP99Seconds, report.rebufferP50Seconds,
      report.rebufferP99Seconds);

  add(checks, "scale",
      allowSmall ||
          (cfg.mix.sessions >= 50'000 && cfg.mix.tenantCount >= 8),
      fmt("%zu sessions, %zu tenants (floors: 50000, 8)", cfg.mix.sessions,
          cfg.mix.tenantCount));
  add(checks, "all_sessions_joined",
      report.sessionsJoined == report.sessionsPlanned,
      fmt("%zu of %zu", report.sessionsJoined, report.sessionsPlanned));
  add(checks, "all_sessions_terminal",
      report.sessionsCompleted + report.sessionsLeft == report.sessionsJoined,
      fmt("%zu completed + %zu left == %zu joined", report.sessionsCompleted,
          report.sessionsLeft, report.sessionsJoined));
  add(checks, "fault_injection_live",
      !cfg.faultInjection ||
          (report.faultSessions > 0 && report.faultMutationsApplied > 0),
      fmt("%zu sessions fault-injected, %zu mutations, %zu undecodable",
          report.faultSessions, report.faultMutationsApplied,
          report.faultUndecodable));
  add(checks, "client_never_throws", report.faultThrows == 0,
      fmt("%zu receive() throws on damaged streams", report.faultThrows));
  add(checks, "report_metrics_sane",
      report.servedHours > 0.0 && report.wattsSavedPerMillionSessions > 0.0 &&
          report.cacheHitRate > 0.0 && report.cacheHitRate <= 1.0 &&
          report.startupP99Seconds >= report.startupP50Seconds &&
          report.rebufferP99Seconds >= report.rebufferP50Seconds &&
          report.cacheFills > 0,
      fmt("%.1f served-hours, %.3g W/M-sessions, hit rate %.4f, %" PRIu64
          " engine passes",
          report.servedHours, report.wattsSavedPerMillionSessions,
          report.cacheHitRate, report.cacheFills));

  // 3. Determinism: identical config, fresh stack, byte-identical core.
  {
    std::printf("determinism: re-running the identical config...\n");
    const soak::FleetSoakReport twin = soak::runSoak(cfg);
    const std::string a = soak::deterministicJson(report);
    const std::string b = soak::deterministicJson(twin);
    add(checks, "deterministic_report", a == b,
        a == b ? fmt("deterministic core identical (%zu bytes)", a.size())
               : "same seed produced a different report");
  }

  // 4. Capacity model: fit on the soak, predict a held-out mix, measure it.
  soak::CapacityValidation validation;
  try {
    const soak::CapacityModel model = soak::CapacityModel::fit(report);
    soak::SoakConfig holdout = cfg;
    holdout.mix.seed = cfg.mix.seed ^ 0x9E3779B97F4A7C15ULL;
    holdout.mix.sessions =
        holdoutSessions != 0 ? holdoutSessions
                             : std::max<std::size_t>(1, cfg.mix.sessions / 4);
    const soak::TrafficMix holdoutMix = soak::generateTrafficMix(holdout.mix);
    const soak::CapacityPrediction prediction = model.predict(holdoutMix);
    std::printf(
        "capacity: predicting held-out mix (%zu sessions, seed 0x%" PRIx64
        ", %zu uncovered)...\n",
        prediction.sessions, holdout.mix.seed, prediction.uncoveredSessions);
    const soak::FleetSoakReport measured = soak::runSoak(holdout);
    validation =
        soak::CapacityModel::validate(prediction, measured, tolerance);
    for (const soak::MetricCheck& c : validation.checks) {
      std::printf("  %-32s predicted %.6g measured %.6g (%.2f%% err)%s\n",
                  c.name.c_str(), c.predicted, c.measured,
                  100.0 * c.relativeError, c.within ? "" : "  <-- OUT");
    }
    add(checks, "capacity_model_within_tol", validation.pass,
        fmt("%zu metrics vs held-out run, tolerance %.0f%%",
            validation.checks.size(), 100.0 * tolerance));
    std::printf(
        "capacity queries: tenant 0 saves %.3g J/served-hour; one engine "
        "core sustains %.3g sessions/hour at the observed %.4f hit rate\n",
        model.joulesSavedPerServedHour(0),
        model.sessionsPerEngineCoreHour(report.cacheHitRate),
        report.cacheHitRate);
  } catch (const std::exception& e) {
    add(checks, "capacity_model_within_tol", false,
        fmt("threw: %s", e.what()));
  }

  // FLEET_SOAK.json: the full report + the capacity block + the verdicts.
  bool allPass = true;
  for (const Check& c : checks) allPass = allPass && c.pass;
  std::string extra = soak::toJson(validation);
  extra += "  ,\"self_checks\": [\n";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    extra += "    {\"name\": \"" + checks[i].name + "\", \"pass\": " +
             (checks[i].pass ? "true" : "false") + "}";
    extra += i + 1 < checks.size() ? ",\n" : "\n";
  }
  extra += "  ],\n";
  extra += std::string("  \"pass\": ") + (allPass ? "true" : "false") + "\n";
  {
    std::ofstream out(outPath, std::ios::binary);
    out << soak::toJson(report, extra);
    out.close();
    if (!out) {
      std::fprintf(stderr, "fleet_soak: cannot write %s\n", outPath.c_str());
      return 2;
    }
  }
  std::printf("wrote %s\n", outPath.c_str());
  std::printf("fleet_soak: %s\n", allPass ? "ALL CHECKS PASSED" : "FAILED");
  return allPass ? 0 : 1;
}
