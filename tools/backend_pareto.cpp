// Head-to-head judgement of the compensation backends through the
// camera-in-the-loop quality stack (quality/camera.h): every golden clip is
// annotated once per backend, every frame is rendered exactly as a client
// would see it (pixel transform + dimmed backlight), photographed by the
// simulated camera next to a full-backlight reference shot, and scored with
// the paper's histogram verdict (average point shift + dynamic range +
// perceived EMD).  The three Pareto axes per backend:
//
//   power saved      -- mean device watts vs the full-backlight baseline
//   quality retained -- camera-capture histogram distance to the reference
//   compute cost     -- measured client apply ns/frame + pixels shipped
//
// Emits PARETO_backends.json (repo root, override $ANNO_BENCH_JSON_DIR) and
// exits non-zero unless every non-default backend beats LinearGain on at
// least one axis -- the PR's acceptance gate, enforced where CI can see it.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "compensate/backend.h"
#include "core/annotate.h"
#include "core/engine.h"
#include "core/runtime.h"
#include "display/device.h"
#include "golden_clips.h"
#include "media/histogram.h"
#include "media/image.h"
#include "power/power.h"
#include "quality/camera.h"
#include "quality/metrics.h"

namespace {

using namespace anno;
using Clock = std::chrono::steady_clock;

std::string jsonPath(const std::string& filename) {
  const char* dir = std::getenv("ANNO_BENCH_JSON_DIR");
#ifdef ANNO_BENCH_JSON_DEFAULT_DIR
  if (dir == nullptr || *dir == '\0') dir = ANNO_BENCH_JSON_DEFAULT_DIR;
#endif
  if (dir == nullptr || *dir == '\0') return filename;
  std::string path = dir;
  if (path.back() != '/') path += '/';
  return path + filename;
}

/// Per-(clip, backend) scores, meaned over frames x quality levels.
struct Score {
  std::string clip;
  double powerSavedPct = 0.0;    ///< vs full-backlight baseline watts
  double avgPointShift = 0.0;    ///< camera captures, code values
  double dynamicRangeChange = 0.0;
  double perceivedEmd = 0.0;     ///< camera captures, code values
  double intersection = 0.0;     ///< [0,1], 1 = identical shape
  double applyNsPerFrame = 0.0;  ///< measured client pixel-transform cost
  double kpixPerFrame = 0.0;     ///< pixels shipped to the panel
};

/// Score meaned across clips -- the row the Pareto verdict reads.
struct Aggregate {
  compensate::BackendKind kind = compensate::BackendKind::kLinearGain;
  Score mean;
  std::vector<Score> perClip;
};

constexpr std::size_t kQualityIndices[] = {1, 2, 3, 4};  // q=0 is lossless

Score scoreBackend(const media::VideoClip& clip,
                   const compensate::BackendConfig& backendCfg,
                   const display::DeviceModel& device) {
  core::AnnotatorConfig cfg;
  cfg.backend = backendCfg;
  const core::AnnotationTrack track = core::annotateClip(clip, cfg);
  const std::unique_ptr<const compensate::Backend> backend =
      core::backendForTrack(track);
  const power::MobileDevicePower power(device);

  power::OperatingPoint baselineOp;
  baselineOp.backlightLevel = 255;
  const double baselineWatts = power.totalWatts(baselineOp);

  // Noise-free camera: the report must be bit-reproducible, and sensor
  // noise at 0.8 codes RMS only blurs differences well above it anyway.
  quality::CameraConfig camCfg;
  camCfg.noiseRms = 0.0;

  Score s;
  s.clip = clip.name;
  std::size_t samples = 0;
  for (std::size_t q : kQualityIndices) {
    // One decision per scene, exactly like the runtime schedule.
    std::vector<compensate::CompensationDecision> decisions;
    decisions.reserve(track.scenes.size());
    for (std::size_t i = 0; i < track.scenes.size(); ++i) {
      decisions.push_back(
          core::decideForScene(*backend, track, i, q, device));
    }
    for (std::size_t f = 0; f < clip.frames.size(); ++f) {
      const compensate::CompensationDecision& d =
          decisions[core::sceneIndexForFrame(
              track, static_cast<std::uint32_t>(f))];
      const Clock::time_point t0 = Clock::now();
      const media::Image shown = backend->apply(clip.frames[f], d);
      s.applyNsPerFrame +=
          1e9 *
          std::chrono::duration<double>(Clock::now() - t0).count();
      s.kpixPerFrame +=
          static_cast<double>(shown.pixels().size()) / 1000.0;

      power::OperatingPoint op;
      op.cpu = (d.pixelCurve != nullptr || d.plan.gainK > 1.0)
                   ? power::CpuState::kDecodeCompensate
                   : power::CpuState::kDecode;
      op.backlightLevel = d.plan.backlightLevel;
      s.powerSavedPct +=
          100.0 * (1.0 - power.totalWatts(op) / baselineWatts);

      // Photograph reference and compensated presentations; fresh camera
      // instances keep the two shots on identical optics.
      quality::CameraModel refCam(camCfg);
      quality::CameraModel testCam(camCfg);
      const media::GrayImage ref =
          refCam.snapshot(device, clip.frames[f], 255);
      const media::GrayImage got =
          testCam.snapshot(device, shown, d.plan.backlightLevel);
      const quality::HistogramComparison c = quality::compareHistograms(
          media::Histogram::ofGray(ref), media::Histogram::ofGray(got));
      s.avgPointShift += c.averagePointShift;
      s.dynamicRangeChange += c.dynamicRangeChange;
      s.perceivedEmd += c.earthMovers;
      s.intersection += c.intersection;
      ++samples;
    }
  }
  const double n = static_cast<double>(samples);
  s.powerSavedPct /= n;
  s.avgPointShift /= n;
  s.dynamicRangeChange /= n;
  s.perceivedEmd /= n;
  s.intersection /= n;
  s.applyNsPerFrame /= n;
  s.kpixPerFrame /= n;
  return s;
}

/// Axes (named) on which `b` strictly beats `a`.
std::vector<std::string> beats(const Score& b, const Score& a) {
  std::vector<std::string> axes;
  if (b.powerSavedPct > a.powerSavedPct) axes.push_back("power_saved");
  if (b.perceivedEmd < a.perceivedEmd) axes.push_back("perceived_emd");
  if (b.applyNsPerFrame < a.applyNsPerFrame) axes.push_back("apply_ns");
  if (b.kpixPerFrame < a.kpixPerFrame) axes.push_back("pixels_shipped");
  return axes;
}

}  // namespace

int main() {
  std::printf("backend_pareto: compensation backends vs the camera\n");
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);

  std::vector<media::VideoClip> clips;
  clips.push_back(engine_golden::goldenCatwomanClip());
  clips.push_back(engine_golden::goldenMixedCreditsClip());

  std::vector<compensate::BackendConfig> configs(3);
  configs[1].kind = compensate::BackendKind::kHebs;
  configs[2].kind = compensate::BackendKind::kSpatialScaling;

  std::vector<Aggregate> rows;
  for (const compensate::BackendConfig& cfg : configs) {
    Aggregate agg;
    agg.kind = cfg.kind;
    for (const media::VideoClip& clip : clips) {
      agg.perClip.push_back(scoreBackend(clip, cfg, device));
    }
    for (const Score& s : agg.perClip) {
      agg.mean.powerSavedPct += s.powerSavedPct;
      agg.mean.avgPointShift += s.avgPointShift;
      agg.mean.dynamicRangeChange += s.dynamicRangeChange;
      agg.mean.perceivedEmd += s.perceivedEmd;
      agg.mean.intersection += s.intersection;
      agg.mean.applyNsPerFrame += s.applyNsPerFrame;
      agg.mean.kpixPerFrame += s.kpixPerFrame;
    }
    const double n = static_cast<double>(agg.perClip.size());
    agg.mean.powerSavedPct /= n;
    agg.mean.avgPointShift /= n;
    agg.mean.dynamicRangeChange /= n;
    agg.mean.perceivedEmd /= n;
    agg.mean.intersection /= n;
    agg.mean.applyNsPerFrame /= n;
    agg.mean.kpixPerFrame /= n;
    rows.push_back(std::move(agg));
  }

  std::printf(
      "\n%-14s %-14s %10s %8s %8s %8s %8s %10s %10s\n", "backend", "clip",
      "saved%", "shift", "dr", "emd", "isect", "apply_ns", "kpix");
  for (const Aggregate& agg : rows) {
    for (const Score& s : agg.perClip) {
      std::printf("%-14s %-14s %10.2f %8.2f %8.2f %8.2f %8.3f %10.0f %10.2f\n",
                  compensate::backendName(agg.kind), s.clip.c_str(),
                  s.powerSavedPct, s.avgPointShift, s.dynamicRangeChange,
                  s.perceivedEmd, s.intersection, s.applyNsPerFrame,
                  s.kpixPerFrame);
    }
    std::printf("%-14s %-14s %10.2f %8.2f %8.2f %8.2f %8.3f %10.0f %10.2f\n",
                compensate::backendName(agg.kind), "MEAN",
                agg.mean.powerSavedPct, agg.mean.avgPointShift,
                agg.mean.dynamicRangeChange, agg.mean.perceivedEmd,
                agg.mean.intersection, agg.mean.applyNsPerFrame,
                agg.mean.kpixPerFrame);
  }

  const Score& linear = rows[0].mean;
  bool accepted = true;
  std::vector<std::vector<std::string>> wins(rows.size());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    wins[i] = beats(rows[i].mean, linear);
    std::printf("\n%s vs linear_gain: beats it on",
                compensate::backendName(rows[i].kind));
    if (wins[i].empty()) {
      std::printf(" NOTHING");
      accepted = false;
    }
    for (const std::string& a : wins[i]) std::printf(" %s", a.c_str());
    std::printf("\n");
  }

  const std::string jsonFile = jsonPath("PARETO_backends.json");
  if (std::FILE* json = std::fopen(jsonFile.c_str(), "w")) {
    std::fprintf(json,
                 "{\n  \"device\": \"%s\",\n  \"quality_indices\": [1, 2, 3, "
                 "4],\n  \"backends\": [\n",
                 device.name.c_str());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Aggregate& agg = rows[i];
      std::fprintf(json, "    {\"backend\": \"%s\", \"clips\": [\n",
                   compensate::backendName(agg.kind));
      for (std::size_t c = 0; c < agg.perClip.size(); ++c) {
        const Score& s = agg.perClip[c];
        std::fprintf(json,
                     "      {\"clip\": \"%s\", \"power_saved_pct\": %.3f, "
                     "\"avg_point_shift\": %.3f, \"dynamic_range_change\": "
                     "%.3f, \"perceived_emd\": %.3f, \"intersection\": %.4f, "
                     "\"apply_ns_per_frame\": %.0f, \"kpix_per_frame\": "
                     "%.2f}%s\n",
                     s.clip.c_str(), s.powerSavedPct, s.avgPointShift,
                     s.dynamicRangeChange, s.perceivedEmd, s.intersection,
                     s.applyNsPerFrame, s.kpixPerFrame,
                     c + 1 < agg.perClip.size() ? "," : "");
      }
      std::fprintf(json,
                   "    ], \"mean\": {\"power_saved_pct\": %.3f, "
                   "\"perceived_emd\": %.3f, \"apply_ns_per_frame\": %.0f, "
                   "\"kpix_per_frame\": %.2f}, \"beats_linear_on\": [",
                   agg.mean.powerSavedPct, agg.mean.perceivedEmd,
                   agg.mean.applyNsPerFrame, agg.mean.kpixPerFrame);
      for (std::size_t a = 0; a < wins[i].size(); ++a) {
        std::fprintf(json, "%s\"%s\"", a ? ", " : "", wins[i][a].c_str());
      }
      std::fprintf(json, "]}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"accepted\": %s\n}\n",
                 accepted ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote %s\n", jsonFile.c_str());
  }

  if (!accepted) {
    std::fprintf(stderr,
                 "FAIL: a backend beats linear_gain on no Pareto axis\n");
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
