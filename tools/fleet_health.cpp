// fleet_health: live-health acceptance drill for the rolling SLO engine and
// the anomaly-triggered flight recorder (DESIGN.md §16).
//
// Four deterministic runs of one diurnal traffic mix:
//
//   1. Calibration: the mix runs clean with the health arm off, yielding the
//      watts-saved-per-million-sessions expectation the band rule pins.
//   2. Clean: the same mix with every SLO rule armed.  A healthy fleet must
//      fire NOTHING -- zero events, zero flight captures.
//   3. Degraded: the same mix with four mid-run degradations injected
//      (cache-budget squeeze, service-budget squeeze, fault-rate step,
//      power regression).  The monitor must fire EXACTLY the expected rules,
//      each within its degradation's tick window, and the flight recorder
//      must freeze a Perfetto-loadable capture around each firing.
//   4. Degraded twin: run 3 repeated; the deterministic report core
//      (including every health event tick) must be byte-identical.
//
// Writes FLIGHT_RECORDER.json (the first anomaly capture, Chrome trace
// format) and HEALTH_events.json (the degraded run's event log + verdicts).
// Exits nonzero if any check fails.
//
// Run: ./build/tools/fleet_health [--sessions N] [--tenants N] [--seed X]
//        [--day-seconds S] [--policy rr|deadline] [--delivery-threads N]
//        [--out-trace FILE] [--out-events FILE]
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "soak/driver.h"
#include "soak/traffic_mix.h"
#include "telemetry/trace.h"

using namespace anno;

namespace {

struct Check {
  std::string name;
  bool pass = false;
  std::string detail;
};

void add(std::vector<Check>& checks, std::string name, bool pass,
         std::string detail) {
  std::printf("[%s] %-32s %s\n", pass ? "ok" : "FAIL", name.c_str(),
              detail.c_str());
  checks.push_back({std::move(name), pass, std::move(detail)});
}

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

/// Structural JSON scan: balanced braces/brackets outside string literals,
/// nothing trailing.  Not a parser -- a seatbelt for the exported trace.
bool balancedJson(const std::string& s) {
  long depth = 0;
  bool inString = false;
  bool escaped = false;
  bool sawAny = false;
  for (const char c : s) {
    if (inString) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    switch (c) {
      case '"': inString = true; break;
      case '{': case '[': ++depth; sawAny = true; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return sawAny && depth == 0 && !inString;
}

/// The first FIRED event per rule, or none.
std::map<std::string, std::uint64_t> firstFireTicks(
    const std::vector<soak::SoakHealthEvent>& events) {
  std::map<std::string, std::uint64_t> out;
  for (const soak::SoakHealthEvent& e : events) {
    if (e.fired && out.find(e.rule) == out.end()) out[e.rule] = e.tick;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  soak::SoakConfig cfg;
  cfg.mix.sessions = 8000;
  cfg.mix.tenantCount = 6;
  cfg.mix.daySeconds = 120.0;
  std::string tracePath = "FLIGHT_RECORDER.json";
  std::string eventsPath = "HEALTH_events.json";
  for (int i = 1; i < argc; ++i) {
    const auto intArg = [&](const char* name, auto& slot) {
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        slot = static_cast<std::decay_t<decltype(slot)>>(
            std::strtoull(argv[++i], nullptr, 0));
        return true;
      }
      return false;
    };
    if (intArg("--sessions", cfg.mix.sessions)) continue;
    if (intArg("--tenants", cfg.mix.tenantCount)) continue;
    if (intArg("--seed", cfg.mix.seed)) continue;
    if (intArg("--delivery-threads", cfg.deliveryThreads)) continue;
    if (std::strcmp(argv[i], "--day-seconds") == 0 && i + 1 < argc) {
      cfg.mix.daySeconds = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "rr") {
        cfg.policy = stream::SchedulePolicy::kRoundRobin;
      } else if (value == "deadline") {
        cfg.policy = stream::SchedulePolicy::kDeadline;
      } else {
        std::fprintf(stderr, "fleet_health: unknown policy '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--out-trace") == 0 && i + 1 < argc) {
      tracePath = argv[++i];
    } else if (std::strcmp(argv[i], "--out-events") == 0 && i + 1 < argc) {
      eventsPath = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: fleet_health [--sessions N] [--tenants N] [--seed X]\n"
          "         [--day-seconds S] [--policy rr|deadline]\n"
          "         [--delivery-threads N] [--out-trace FILE]"
          " [--out-events FILE]\n");
      return 2;
    }
  }

  std::vector<Check> checks;
  const double tickSeconds = cfg.mix.tickSeconds;
  const std::uint64_t hourTicks = std::max<std::uint64_t>(
      4, static_cast<std::uint64_t>(cfg.mix.daySeconds / 24.0 / tickSeconds));

  // 1. Calibration: clean run, health off -- pins the watts expectation.
  std::printf("calibration: %zu sessions, %zu tenants, day %.0fs...\n",
              cfg.mix.sessions, cfg.mix.tenantCount, cfg.mix.daySeconds);
  double expectedWatts = 0.0;
  try {
    const soak::FleetSoakReport base = soak::runSoak(cfg);
    expectedWatts = base.wattsSavedPerMillionSessions;
    std::printf("calibration: %.6g W/M-sessions, hit rate %.4f, "
                "%" PRIu64 " ticks\n",
                expectedWatts, base.cacheHitRate, base.ticks);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet_health: calibration crashed: %s\n", e.what());
    return 1;
  }
  add(checks, "calibration_watts_positive", expectedWatts > 0.0,
      fmt("%.6g W/M-sessions", expectedWatts));

  // 2. Clean run with every rule armed: a healthy fleet pages nobody.
  cfg.health = soak::defaultHealthOptions(cfg.mix, expectedWatts);
  soak::FleetSoakReport clean;
  try {
    clean = soak::runSoak(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet_health: clean run crashed: %s\n", e.what());
    return 1;
  }
  add(checks, "clean_run_fires_nothing", clean.healthEvents.empty(),
      fmt("%zu health events (want 0)", clean.healthEvents.size()));
  add(checks, "clean_run_no_captures",
      clean.flightTriggers == 0 && clean.flightCaptureCount == 0,
      fmt("%" PRIu64 " triggers, %zu captures", clean.flightTriggers,
          clean.flightCaptureCount));
  add(checks, "clean_rules_evaluated", !clean.healthRules.empty(),
      fmt("%zu rules reported", clean.healthRules.size()));

  // 3. Degraded run: four drills, each owning a tick window.  Expected
  // firings per drill (windows allow detection latency: the fast window
  // must fill with bad ticks, plus the fault arm's completion lag).
  const std::uint64_t dayTicks =
      static_cast<std::uint64_t>(cfg.mix.daySeconds / tickSeconds);
  soak::SoakConfig degraded = cfg;
  const std::uint64_t cacheFrom = 6 * hourTicks, cacheTo = 9 * hourTicks;
  const std::uint64_t faultFrom = 12 * hourTicks, faultTo = 15 * hourTicks;
  const std::uint64_t powerFrom = 18 * hourTicks;
  degraded.degradations = {
      // The squeeze must be total: a partial squeeze evicts only SOME
      // entries, and which ones depends on the LRU order parallel ingest
      // seeded (nondeterministic across runs).  1e-7 of the default budget
      // drives every shard to its 1-byte floor, so every entry evicts and
      // every lookup in the window misses -- order-independent, and the
      // hit rate collapses far below the 85% SLO.
      {soak::Degradation::Kind::kCacheSqueeze, cacheFrom, cacheTo, 1e-7},
      {soak::Degradation::Kind::kFaultRateStep, faultFrom, faultTo, 0.60},
      {soak::Degradation::Kind::kPowerRegression, powerFrom, 0, 0.05},
  };
  struct Expectation {
    const char* rule;
    std::uint64_t from;  ///< degradation start
    std::uint64_t to;    ///< latest acceptable first firing
  };
  const std::vector<Expectation> expected = {
      {"cache_hit_rate", cacheFrom, cacheTo + 2 * hourTicks},
      {"fault_session_rate", faultFrom, faultTo + 6 * hourTicks},
      {"watts_saved_per_million_sessions", powerFrom,
       dayTicks + 12 * hourTicks},
  };

  std::printf("degraded: injecting %zu degradations...\n",
              degraded.degradations.size());
  soak::FleetSoakReport bad;
  try {
    bad = soak::runSoak(degraded);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet_health: degraded run crashed: %s\n", e.what());
    return 1;
  }
  for (const soak::SoakHealthEvent& e : bad.healthEvents) {
    std::printf("  tick %6" PRIu64 " hour %2zu  %-7s %s (fast %.6g vs %.6g)\n",
                e.tick, e.hour, e.fired ? "FIRED" : "cleared", e.rule.c_str(),
                e.fastValue, e.limit);
  }

  // Exactly the expected rules fired, each inside its window.
  const std::map<std::string, std::uint64_t> fires =
      firstFireTicks(bad.healthEvents);
  for (const Expectation& want : expected) {
    const auto it = fires.find(want.rule);
    if (it == fires.end()) {
      add(checks, fmt("fires_%s", want.rule), false, "never fired");
      continue;
    }
    add(checks, fmt("fires_%s", want.rule),
        it->second >= want.from && it->second <= want.to,
        fmt("first fire at tick %" PRIu64 " (window [%" PRIu64 ", %" PRIu64
            "], hour %zu)",
            it->second, want.from, want.to,
            static_cast<std::size_t>(
                std::min<double>(23.0, static_cast<double>(it->second) *
                                           tickSeconds /
                                           cfg.mix.daySeconds * 24.0))));
  }
  {
    std::string unexpected;
    for (const auto& [rule, tick] : fires) {
      bool known = false;
      for (const Expectation& want : expected) known |= rule == want.rule;
      if (!known) unexpected += rule + " ";
    }
    add(checks, "no_unexpected_rules", unexpected.empty(),
        unexpected.empty() ? fmt("%zu rules fired, all expected",
                                 fires.size())
                           : "also fired: " + unexpected);
  }

  // Flight recorder: >= 1 capture, the firing marker inside, counter
  // context from the window before the anomaly, valid Chrome trace JSON.
  add(checks, "flight_captures", bad.flightCaptureCount >= 1,
      fmt("%zu captures, %" PRIu64 " triggers", bad.flightCaptureCount,
          bad.flightTriggers));
  std::string traceJson;
  if (!bad.flightCaptures.empty()) {
    const telemetry::FlightRecorder::Capture& cap = bad.flightCaptures.front();
    bool sawMarker = false;
    std::size_t contextCounters = 0;
    const double fireMedia =
        static_cast<double>(cap.trigger.tick) * tickSeconds;
    const double windowStart =
        fireMedia -
        2.0 * static_cast<double>(cfg.health.flight.rotateTicks) * tickSeconds;
    for (const telemetry::TraceSnapshotEvent& ev : cap.snapshot.events) {
      if (ev.name == "slo_fired" && ev.strValue == cap.trigger.rule) {
        sawMarker = true;
      }
      if (ev.type == telemetry::TraceEventType::kCounter &&
          !std::isnan(ev.mediaSeconds) && ev.mediaSeconds >= windowStart &&
          ev.mediaSeconds <= fireMedia + tickSeconds) {
        ++contextCounters;
      }
    }
    add(checks, "capture_has_firing_marker", sawMarker,
        fmt("rule %s at tick %" PRIu64, cap.trigger.rule.c_str(),
            cap.trigger.tick));
    add(checks, "capture_has_context", contextCounters > 0,
        fmt("%zu counter samples within the recorder window",
            contextCounters));
    traceJson = telemetry::toChromeTraceJson(cap.snapshot);
    add(checks, "capture_valid_chrome_json",
        balancedJson(traceJson) &&
            traceJson.find("\"traceEvents\"") != std::string::npos &&
            traceJson.find("slo_fired") != std::string::npos,
        fmt("%zu bytes, %zu events", traceJson.size(),
            cap.snapshot.events.size()));
  } else {
    add(checks, "capture_has_firing_marker", false, "no capture");
    add(checks, "capture_has_context", false, "no capture");
    add(checks, "capture_valid_chrome_json", false, "no capture");
  }

  // 4. Determinism: the degraded run, byte-for-byte, twice.
  {
    std::printf("determinism: re-running the degraded config...\n");
    const soak::FleetSoakReport twin = soak::runSoak(degraded);
    const std::string a = soak::deterministicJson(bad);
    const std::string b = soak::deterministicJson(twin);
    add(checks, "deterministic_degraded_run", a == b,
        a == b ? fmt("deterministic core identical (%zu bytes)", a.size())
               : "same config produced a different report");
  }

  // Artifacts: the anomaly trace + the event log.
  if (!traceJson.empty()) {
    std::ofstream out(tracePath, std::ios::binary);
    out << traceJson;
    out.close();
    if (!out) {
      std::fprintf(stderr, "fleet_health: cannot write %s\n",
                   tracePath.c_str());
      return 2;
    }
    std::printf("wrote %s\n", tracePath.c_str());
  }
  {
    std::string json = "{\n  \"expected_watts_per_million_sessions\": " +
                       fmt("%.10g", expectedWatts) + ",\n";
    json += "  \"clean_events\": " + std::to_string(clean.healthEvents.size()) +
            ",\n  \"degraded\": ";
    json += soak::deterministicJson(bad);
    bool allPass = true;
    for (const Check& c : checks) allPass = allPass && c.pass;
    json += ",\n  \"self_checks\": [\n";
    for (std::size_t i = 0; i < checks.size(); ++i) {
      json += "    {\"name\": \"" + checks[i].name + "\", \"pass\": " +
              (checks[i].pass ? "true" : "false") + "}";
      json += i + 1 < checks.size() ? ",\n" : "\n";
    }
    json += "  ],\n  \"pass\": ";
    json += allPass ? "true" : "false";
    json += "\n}\n";
    std::ofstream out(eventsPath, std::ios::binary);
    out << json;
    out.close();
    if (!out) {
      std::fprintf(stderr, "fleet_health: cannot write %s\n",
                   eventsPath.c_str());
      return 2;
    }
    std::printf("wrote %s\n", eventsPath.c_str());
  }

  bool allPass = true;
  for (const Check& c : checks) allPass = allPass && c.pass;
  std::printf("fleet_health: %s\n",
              allPass ? "ALL CHECKS PASSED" : "FAILED");
  return allPass ? 0 : 1;
}
