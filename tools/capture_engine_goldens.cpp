// Captures golden annotation tracks for the engine differential suite
// (tests/engine/golden_test.cpp).  For every previously-supported
// configuration -- detector x granularity x credits-protection x latency
// bound -- it annotates two deterministic clips and prints one table row
// per config: the scene count, encodeTrack byte count, and CRC-32 of the
// encoded bytes, formatted as a C++ initializer to paste into
// tests/engine/golden_tracks.inc.
//
// The committed .inc was generated at the last commit BEFORE the
// AnnotationEngine refactor (the legacy offline annotate() + the proxy's
// inline OnlineAnnotator), so the suite proves the adapter-based paths
// reproduce the legacy output byte-for-byte.  Re-running this tool captures
// the CURRENT code -- only regenerate goldens to bless an intentional
// output change.
//
// Run: ./build/tools/capture_engine_goldens > tests/engine/golden_tracks.inc
#include <cstdio>
#include <string>
#include <vector>

#include "core/anno_codec.h"
#include "core/annotate.h"
#include "golden_clips.h"
#include "media/clipgen.h"
#include "media/crc32.h"
#include "media/kernels/kernels.h"
#include "stream/proxy.h"

using namespace anno;

namespace {

std::string configName(const std::string& clip, core::SceneDetector det,
                       core::Granularity gran, bool credits,
                       std::uint32_t latency) {
  std::string name = clip;
  name += det == core::SceneDetector::kHistogramEmd ? "/emd" : "/maxluma";
  name += gran == core::Granularity::kPerFrame ? "/frame" : "/scene";
  name += credits ? "/credits" : "/plain";
  name += "/lat" + std::to_string(latency);
  return name;
}

void printRow(const std::string& name, const core::AnnotationTrack& track) {
  const std::vector<std::uint8_t> bytes = core::encodeTrack(track);
  std::printf("    {\"%s\", %zuu, %zuu, 0x%08Xu},\n", name.c_str(),
              track.scenes.size(), bytes.size(), media::crc32(bytes));
}

}  // namespace

int main() {
  // Goldens are dispatch-invariant (the kernel layer is bit-identical at
  // every level), but record what produced them anyway.
  std::fprintf(stderr, "capturing with SIMD dispatch level: %s\n",
               anno::media::kernels::levelName(
                   anno::media::kernels::activeLevel()));
  std::printf(
      "// Golden annotation tracks: scene count, encodeTrack() byte count and\n"
      "// CRC-32 per configuration, captured from the PRE-AnnotationEngine\n"
      "// code by tools/capture_engine_goldens.cpp (see that file's header).\n"
      "// clang-format off\n");
  std::printf("inline constexpr GoldenTrack kGoldenTracks[] = {\n");
  const std::vector<std::pair<std::string, media::VideoClip>> clips = {
      {"catwoman", engine_golden::goldenCatwomanClip()},
      {"mixed-credits", engine_golden::goldenMixedCreditsClip()},
  };
  for (const auto& [clipName, clip] : clips) {
    const std::vector<media::FrameStats> stats = media::profileClip(clip);
    for (const core::SceneDetector det :
         {core::SceneDetector::kMaxLuma, core::SceneDetector::kHistogramEmd}) {
      for (const core::Granularity gran :
           {core::Granularity::kPerScene, core::Granularity::kPerFrame}) {
        for (const bool credits : {false, true}) {
          core::AnnotatorConfig cfg;
          cfg.detector = det;
          cfg.granularity = gran;
          cfg.protectCredits = credits;
          // Offline path (latency 0 == unbounded lookahead).
          printRow(configName(clipName, det, gran, credits, 0),
                   core::annotate(clip.name, clip.fps, stats, cfg));
          // Online path with a latency bound.  Pre-refactor the online
          // annotator only implemented the max-luma detector (it silently
          // ignored kHistogramEmd), so only those configs have a legacy
          // golden; bounded-latency EMD is new behaviour covered by the
          // live differential tests instead.
          if (det != core::SceneDetector::kMaxLuma) continue;
          for (const std::uint32_t latency : {8u, 64u}) {
            stream::OnlineAnnotator online(cfg, latency);
            core::AnnotationTrack track;
            track.clipName = clip.name;
            track.fps = clip.fps;
            track.frameCount = static_cast<std::uint32_t>(stats.size());
            track.granularity = cfg.granularity;
            track.qualityLevels = cfg.qualityLevels;
            for (const media::FrameStats& fs : stats) {
              if (auto scene = online.push(fs)) track.scenes.push_back(*scene);
            }
            if (auto scene = online.flush()) track.scenes.push_back(*scene);
            core::validateTrack(track);
            printRow(configName(clipName, det, gran, credits, latency), track);
          }
        }
      }
    }
  }
  std::printf("};\n// clang-format on\n");
  return 0;
}
