// trace_report: captures an end-to-end traced session and renders every
// export the tracing subsystem offers.
//
// Default mode runs a canned server -> proxy -> client workload (one clip
// annotated at the server, re-annotated by the proxy, received by a thin
// client, its annotation track recovered over a lossy hop, and its playback
// simulated over a dipping wireless link) with ONE TraceRecorder attached
// to every layer, then writes:
//   <outdir>/trace_report.perfetto.json   Chrome trace-event JSON; load it
//                                         at ui.perfetto.dev
//   <outdir>/trace_report.dump            replayable plain-text capture
//   <outdir>/trace_report.timeline.json   reconstructed power/QoS timeline
//   <outdir>/trace_report.timeline.csv    per-frame rows of the same
//
// Doubles as the tracing determinism check: the workload runs at 1, 2 and
// 8 annotator threads into fresh recorders, and the per-(cat,name) event
// counts must be identical across thread counts.  Pool task spans (cat
// "pool") are exempt -- which thread claims which chunk is a race by
// design -- everything else differing is a bug and exits nonzero.
//
// Replay mode skips the workload and rebuilds the reports offline from a
// previous capture:
//   trace_report --replay trace_report.dump [--outdir DIR]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "power/power.h"
#include "soak/harness.h"
#include "telemetry/timeline.h"
#include "telemetry/trace.h"

using namespace anno;

namespace {

/// One full traced pass: every layer of Fig. 1 feeds the same recorder.
/// The shared canned harness (soak/harness.h) narrowed to a single-clip,
/// single-session timeline: the proxy re-annotates the SAME clip (its
/// transcode span and deduplicated scene spans land in the trace without a
/// second clip), the client receives only the server stream, and the lossy
/// annotation hop carries the per-scene track with NACK recovery.  The
/// playback simulation provably stalls once for rebuffer spans.
void runTracedWorkload(telemetry::TraceRecorder& trace, unsigned threads) {
  soak::HarnessOptions opts;
  opts.threads = threads;
  opts.trace = &trace;
  opts.proxySecondClip = false;
  opts.clientReceivesProxy = false;
  opts.faultCorpus = false;
  opts.negotiationMismatch = false;
  opts.lossyVideoHop = false;
  opts.annotationHopNoNack = false;
  opts.perFrameLossyTrack = false;
  opts.sessionSim = true;
  soak::runCannedWorkload(opts);
}

/// Event counts keyed by (cat, name), excluding the scheduling-dependent
/// pool track -- the semantic shape of a capture.
std::map<std::pair<std::string, std::string>, std::size_t> semanticCounts(
    const telemetry::TraceSnapshot& snapshot) {
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (const telemetry::TraceSnapshotEvent& ev : snapshot.events) {
    if (ev.cat == "pool") continue;
    ++counts[{ev.cat, ev.name}];
  }
  return counts;
}

bool checkDeterminism(
    const std::map<std::pair<std::string, std::string>, std::size_t>& a,
    const std::map<std::pair<std::string, std::string>, std::size_t>& b,
    unsigned threadsA, unsigned threadsB) {
  bool equal = true;
  for (const auto& [key, count] : a) {
    const auto it = b.find(key);
    const std::size_t other = it != b.end() ? it->second : 0;
    if (count != other) {
      std::printf(
          "DETERMINISM MISMATCH: %s/%s: %zu events at threads=%u, %zu at "
          "threads=%u\n",
          key.first.c_str(), key.second.c_str(), count, threadsA, other,
          threadsB);
      equal = false;
    }
  }
  for (const auto& [key, count] : b) {
    if (a.find(key) == a.end()) {
      std::printf(
          "DETERMINISM MISMATCH: %s/%s: absent at threads=%u, %zu at "
          "threads=%u\n",
          key.first.c_str(), key.second.c_str(), threadsA, count, threadsB);
      equal = false;
    }
  }
  return equal;
}

bool writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
  out.close();
  if (!out) {
    std::fprintf(stderr, "trace_report: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), contents.size());
  return true;
}

/// Renders every report from one snapshot into `outdir`.
bool writeReports(const telemetry::TraceSnapshot& snapshot,
                  const std::string& outdir) {
  const std::string base = outdir + "/trace_report";
  bool ok = writeFile(base + ".perfetto.json",
                      telemetry::toChromeTraceJson(snapshot));
  ok = writeFile(base + ".dump", telemetry::serializeTraceDump(snapshot)) && ok;
  const telemetry::SessionTimeline timeline =
      telemetry::reconstructTimeline(snapshot, power::makeIpaq5555Power());
  ok = writeFile(base + ".timeline.json", timeline.toJson()) && ok;
  ok = writeFile(base + ".timeline.csv", timeline.toCsv()) && ok;
  std::printf(
      "timeline: %s on %s, %lld frames @ %.3g fps, %zu scenes, "
      "backlight savings %.1f%%, device savings %.1f%%, %lld stalls "
      "(%.2fs)\n",
      timeline.clip.c_str(), timeline.device.c_str(),
      static_cast<long long>(timeline.frames), timeline.fps,
      timeline.scenes.size(), 100.0 * timeline.backlightSavingsFraction,
      100.0 * timeline.deviceSavingsFraction,
      static_cast<long long>(timeline.stallEvents), timeline.stallSeconds);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string outdir = ".";
  std::string replayPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--outdir") == 0 && i + 1 < argc) {
      outdir = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replayPath = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: trace_report [--outdir DIR] [--replay DUMP]\n");
      return 2;
    }
  }

  if (!replayPath.empty()) {
    std::ifstream in(replayPath, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "trace_report: cannot read %s\n",
                   replayPath.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const telemetry::TraceSnapshot snapshot =
        telemetry::parseTraceDump(buf.str());
    std::printf("replaying %s: %zu events, %llu dropped\n",
                replayPath.c_str(), snapshot.events.size(),
                static_cast<unsigned long long>(snapshot.droppedEvents));
    return writeReports(snapshot, outdir) ? 0 : 1;
  }

  // Determinism sweep: fresh recorder per thread count; semantic event
  // counts must agree.
  const unsigned sweep[] = {1, 2, 8};
  std::vector<telemetry::TraceSnapshot> snapshots;
  for (unsigned threads : sweep) {
    telemetry::TraceRecorder trace;
    runTracedWorkload(trace, threads);
    snapshots.push_back(telemetry::snapshotTrace(trace));
    std::printf("threads=%u: %zu events recorded, %llu dropped\n", threads,
                snapshots.back().events.size(),
                static_cast<unsigned long long>(
                    snapshots.back().droppedEvents));
  }
  bool deterministic = true;
  const auto reference = semanticCounts(snapshots[0]);
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    deterministic &= checkDeterminism(reference, semanticCounts(snapshots[i]),
                                      sweep[0], sweep[i]);
  }

  // Reports from the threads=2 capture (it exercises the pool tracks too);
  // the dump must replay to the exact same snapshot.
  const telemetry::TraceSnapshot& chosen = snapshots[1];
  const bool roundTrip =
      telemetry::parseTraceDump(telemetry::serializeTraceDump(chosen)) ==
      chosen;
  const bool wrote = writeReports(chosen, outdir);
  std::printf("dump round-trip: %s\n", roundTrip ? "ok" : "FAILED");
  std::printf("determinism across threads {1,2,8}: %s\n",
              deterministic ? "ok" : "FAILED");
  return deterministic && roundTrip && wrote ? 0 : 1;
}
