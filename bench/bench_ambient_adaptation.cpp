// Extension: ambient-aware backlight planning on transflective panels.
//
// The paper notes transflective displays "perform best both indoors (low
// light) and outdoors (in sunlight)"; the reflective path contributes
// perceived intensity for free.  Folding the negotiated ambient level into
// the planner (T(b) >= Ysafe/255 - (rho_r/rho_t)*A) buys extra dimming
// outdoors at unchanged perceived quality.
#include "bench_util.h"
#include "compensate/planner.h"
#include "core/annotate.h"
#include "media/clipgen.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Extension: ambient-aware planning (transflective reflective path)");
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);

  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kSpiderman2, 0.10, 96, 72);
  const core::AnnotationTrack track = core::annotateClip(clip);
  constexpr std::size_t kQ = 2;  // 10% quality level

  bench::Table table({"ambient_rel", "setting", "avg_backlight",
                      "bl_savings_pct"});
  for (double ambient : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    double levelSum = 0.0;
    double savedSum = 0.0;
    std::uint64_t frames = 0;
    for (const core::SceneAnnotation& scene : track.scenes) {
      const compensate::CompensationPlan plan =
          compensate::planForLumaAmbient(device, scene.safeLuma[kQ], ambient);
      levelSum += static_cast<double>(plan.backlightLevel) *
                  scene.span.frameCount;
      savedSum += device.backlightSavings(plan.backlightLevel) *
                  scene.span.frameCount;
      frames += scene.span.frameCount;
    }
    const char* setting = ambient == 0.0   ? "dark room"
                          : ambient <= 1.0 ? "indoor"
                          : ambient <= 4.0 ? "overcast outdoor"
                                           : "sunlight";
    table.addRow({bench::fmt(ambient, 1), setting,
                  bench::fmt(levelSum / static_cast<double>(frames), 0),
                  bench::pct(savedSum / static_cast<double>(frames))});
  }
  table.print();
  std::printf(
      "\nReading: the paper's dark-room numbers are the FLOOR; in sunlight\n"
      "the transflective path carries much of the image and the backlight\n"
      "drops toward the minimum level, with perceived intensity preserved\n"
      "by construction ((T(b) + (rho_r/rho_t)A) * k = 1, tested).\n");
  table.printCsv("ambient_adaptation");
  return 0;
}
