// Content-protection extensions:
//  (a) end-credits protection -- the paper's declared future work ("it may
//      distort the text if too many pixels are clipped and the background
//      is uniform (this is subject of future study)");
//  (b) user-supervised ROI annotation (Sec. 3: "the user may specify which
//      parts or objects of the video stream are more important").
#include "bench_util.h"
#include "compensate/planner.h"
#include "core/annotate.h"
#include "core/roi.h"
#include "media/clipgen.h"

using namespace anno;

int main() {
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);

  // ----- (a) end-credits protection --------------------------------------
  bench::printHeader(
      "Future work implemented: end-credits protection (uniform background)");
  {
    media::ClipProfile profile;
    profile.name = "movie+credits";
    profile.width = 96;
    profile.height = 72;
    profile.fps = 12.0;
    profile.seed = 77;
    // A mid-luminance scene followed by rolling credits (max luminance
    // differs enough for the detector to cut between them).
    media::SceneSpec action;
    action.backgroundLuma = 110;
    action.backgroundSpread = 45;
    action.highlightFraction = 0.0;
    action.durationSeconds = 4.0;
    profile.scenes.push_back(action);
    profile.scenes.push_back(media::creditsScene(4.0));
    const media::VideoClip clip = media::generateClip(profile);

    bench::Table table({"scene", "kind", "mode", "q=15%_safe_luma",
                        "backlight", "text_survives"});
    for (bool protect : {false, true}) {
      core::AnnotatorConfig cfg;
      cfg.qualityLevels = {0.15};
      cfg.protectCredits = protect;
      const core::AnnotationTrack track = core::annotateClip(clip, cfg);
      for (std::size_t s = 0; s < track.scenes.size(); ++s) {
        const std::uint8_t safe = track.scenes[s].safeLuma[0];
        const auto plan = compensate::planForLuma(device, safe);
        const bool credits = s + 1 == track.scenes.size();
        table.addRow({std::to_string(s), credits ? "credits" : "action",
                      protect ? "protected" : "unprotected",
                      std::to_string(safe),
                      std::to_string(plan.backlightLevel),
                      !credits ? "-" : (safe > 200 ? "YES" : "NO")});
      }
    }
    table.print();
    table.printCsv("credits_protection");
  }

  // ----- (b) ROI-weighted annotation --------------------------------------
  bench::printHeader(
      "Sec. 3 user supervision: ROI-weighted quality trade-off");
  {
    // Dark frame: a bright subject in the user's ROI + background sparkle.
    media::Image frame(96, 72, media::Rgb8{45, 45, 45});
    for (int y = 12; y < 30; ++y) {
      for (int x = 12; x < 30; ++x) frame(x, y) = media::Rgb8{225, 225, 225};
    }
    for (int i = 0; i < 90; ++i) {
      frame(50 + (i % 12), 30 + (i / 12) * 3) = media::Rgb8{252, 252, 252};
    }
    media::VideoClip clip;
    clip.name = "roi-demo";
    clip.fps = 12.0;
    clip.frames.assign(24, frame);

    const core::RoiRect roi{12, 12, 30, 30};
    bench::Table table({"roi_weight", "q=15%_safe_luma", "backlight",
                        "roi_protected", "bl_savings_pct"});
    core::AnnotatorConfig cfg;
    cfg.qualityLevels = {0.15};
    for (double w : {1.0, 2.0, 4.0, 8.0, 16.0}) {
      const core::AnnotationTrack track =
          core::annotateClipWithRoi(clip, std::span(&roi, 1), w, cfg);
      const std::uint8_t safe = track.scenes[0].safeLuma[0];
      const auto plan = compensate::planForLuma(device, safe);
      table.addRow({bench::fmt(w, 0), std::to_string(safe),
                    std::to_string(plan.backlightLevel),
                    safe >= 225 ? "YES" : "no",
                    bench::pct(device.backlightSavings(plan.backlightLevel))});
    }
    table.print();
    std::printf(
        "\nReading: at low weight the 15%% budget clips the user's subject\n"
        "(safe luma collapses to the background); raising the ROI weight\n"
        "makes the subject 'heavier' than the budget, so its highlights\n"
        "survive while the background sparkle is still traded for power.\n");
    table.printCsv("roi_weighting");
  }
  return 0;
}
