// Cost of the pluggable compensation backends along the three paths a
// backend touches: engine-side scene annotation (HEBS runs its
// equalization solver here), runtime decisions (per scene, per quality),
// and the client pixel transform (per frame).  Also reports the encoded
// ANN1 track size per backend -- the tone-curve chunks are the wire cost
// of shipping HEBS.  Emits BENCH_compensate_backends.json at the repo root.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "compensate/backend.h"
#include "core/anno_codec.h"
#include "core/annotate.h"
#include "core/engine.h"
#include "core/runtime.h"
#include "display/device.h"
#include "media/clipgen.h"
#include "power/power.h"

namespace {

using Clock = std::chrono::steady_clock;
using namespace anno;

constexpr int kReps = 7;

template <typename F>
double timeOp(std::size_t iters, const F& fn) {
  double best = 1e300;
  for (int r = 0; r < kReps; ++r) {
    const Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double s =
        std::chrono::duration<double>(Clock::now() - start).count();
    best = std::min(best, s / static_cast<double>(iters));
  }
  return best;
}

struct Row {
  const char* backend;
  double annotateNsPerFrame = 0.0;
  double decideNsPerScene = 0.0;
  double applyNsPerFrame = 0.0;
  std::size_t trackBytes = 0;
};

volatile std::uint64_t g_sink = 0;

}  // namespace

int main() {
  bench::printHeader(
      "compensation backends: annotate / decide / apply cost + wire size");

  // Engine-side workload: the paper trailer at profiling resolution.
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kCatwoman, 0.12, 96, 72);
  // Client-side workload: one paper-resolution frame.
  const media::VideoClip playClip =
      media::generatePaperClip(media::PaperClip::kCatwoman, 0.01, 320, 240);
  const media::Image& frame = playClip.frames.front();
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);

  std::vector<compensate::BackendConfig> configs(3);
  configs[1].kind = compensate::BackendKind::kHebs;
  configs[2].kind = compensate::BackendKind::kSpatialScaling;

  std::vector<Row> rows;
  for (const compensate::BackendConfig& backendCfg : configs) {
    core::AnnotatorConfig cfg;
    cfg.backend = backendCfg;
    Row row;
    row.backend = compensate::backendName(backendCfg.kind);

    row.annotateNsPerFrame =
        1e9 *
        timeOp(3,
               [&] {
                 const core::AnnotationTrack t =
                     core::annotateClip(clip, cfg);
                 g_sink += t.scenes.size();
               }) /
        static_cast<double>(clip.frames.size());

    const core::AnnotationTrack track = core::annotateClip(clip, cfg);
    row.trackBytes = core::encodeTrack(track).size();
    const std::unique_ptr<const compensate::Backend> backend =
        core::backendForTrack(track);

    row.decideNsPerScene =
        1e9 *
        timeOp(50,
               [&] {
                 for (std::size_t s = 0; s < track.scenes.size(); ++s) {
                   const compensate::CompensationDecision d =
                       core::decideForScene(*backend, track, s, 2, device);
                   g_sink += static_cast<std::uint64_t>(d.plan.backlightLevel);
                 }
               }) /
        static_cast<double>(track.scenes.size());

    // Apply with the darkest scene's decision so the transform actually
    // runs (a gain-1 decision degenerates to a copy for every backend).
    compensate::CompensationDecision deepest =
        core::decideForScene(*backend, track, 0, 4, device);
    for (std::size_t s = 1; s < track.scenes.size(); ++s) {
      const compensate::CompensationDecision d =
          core::decideForScene(*backend, track, s, 4, device);
      if (d.plan.backlightLevel < deepest.plan.backlightLevel) deepest = d;
    }
    row.applyNsPerFrame = 1e9 * timeOp(30, [&] {
                            const media::Image out =
                                backend->apply(frame, deepest);
                            g_sink += out.pixels().size();
                          });

    rows.push_back(row);
  }

  bench::Table table({"backend", "annotate ns/frame", "decide ns/scene",
                      "apply ns/frame", "track bytes"});
  for (const Row& r : rows) {
    table.addRow({r.backend, bench::fmt(r.annotateNsPerFrame, 0),
                  bench::fmt(r.decideNsPerScene, 0),
                  bench::fmt(r.applyNsPerFrame, 0),
                  std::to_string(r.trackBytes)});
  }
  table.print();
  table.printCsv("compensate_backends");

  const std::string jsonFile =
      bench::jsonPath("BENCH_compensate_backends.json");
  if (std::FILE* json = std::fopen(jsonFile.c_str(), "w")) {
    std::fprintf(json,
                 "{\n  \"annotate_clip\": {\"frames\": %zu, \"width\": 96, "
                 "\"height\": 72},\n  \"apply_frame\": {\"width\": 320, "
                 "\"height\": 240},\n  \"backends\": [\n",
                 clip.frames.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(json,
                   "    {\"backend\": \"%s\", \"annotate_ns_per_frame\": "
                   "%.0f, \"decide_ns_per_scene\": %.0f, "
                   "\"apply_ns_per_frame\": %.0f, \"track_bytes\": %zu}%s\n",
                   r.backend, r.annotateNsPerFrame, r.decideNsPerScene,
                   r.applyNsPerFrame, r.trackBytes,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", jsonFile.c_str());
  }
  return EXIT_SUCCESS;
}
