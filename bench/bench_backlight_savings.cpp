// Figure 9: "LCD backlight power savings (simulated)".
//
// Ten clips x five quality levels (0/5/10/15/20% of the brightest pixels
// allowed to clip); reports the fraction of backlight energy saved by the
// annotation scheme on the iPAQ 5555 model.  Paper shape: up to ~65% on
// dark clips; ice_age and hunter_subres limited (bright backgrounds).
#include "bench_util.h"
#include "media/clipgen.h"
#include "player/experiment.h"
#include "power/power.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Figure 9: LCD backlight power savings (simulated), iPAQ 5555");
  const bench::BenchParams params;
  const power::MobileDevicePower devicePower = power::makeIpaq5555Power();

  player::PlaybackConfig playbackCfg;
  playbackCfg.qualityEvalStride = 1 << 20;  // power-only experiment

  bench::Table table({"clip", "q=0%", "q=5%", "q=10%", "q=15%", "q=20%"});
  for (media::PaperClip clip : media::allPaperClips()) {
    const media::VideoClip video = media::generatePaperClip(
        clip, params.clipScale, params.width, params.height);
    const player::ClipExperimentResult result =
        player::runAnnotationExperiment(video, devicePower, {}, playbackCfg);
    std::vector<std::string> row = {result.clipName};
    for (const player::PlaybackReport& r : result.reports) {
      row.push_back(bench::pct(r.backlightSavings()));
    }
    table.addRow(std::move(row));
  }
  table.print();
  std::printf(
      "\nPaper reference: up to 65%% backlight power saved; hunter_subres &\n"
      "ice_age limited because their pixels concentrate in the high\n"
      "luminance range.  (values are %% of backlight energy saved)\n");
  table.printCsv("fig9_backlight_savings");
  return 0;
}
