// Per-kernel cost of the SIMD dispatch layer (src/media/kernels) at every
// level available on this machine, against the scalar reference.  This is
// the PR's acceptance bench: the fused frame profile must beat scalar by
// >= 2x and the 256-bin EMD by >= 4x on x86-64.  Every variant's output is
// checked equal to scalar before its timing is reported; divergence aborts
// with EXIT_FAILURE (the bit-identical contract is not a benchmark knob).
// Emits BENCH_simd_kernels.json at the repo root.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "media/image.h"
#include "media/kernels/kernels.h"
#include "media/pixel.h"
#include "media/rng.h"

namespace {

using Clock = std::chrono::steady_clock;
using namespace anno;
using media::kernels::FrameProfile;
using media::kernels::KernelTable;
using media::kernels::Level;
using media::kernels::Uint128;

constexpr int kWidth = 320;
constexpr int kHeight = 240;  // the paper's clip resolution
constexpr int kReps = 9;

/// Times fn() (already iterated internally) and returns best-of-reps
/// seconds per op.
template <typename F>
double timeOp(std::size_t iters, const F& fn) {
  double best = 1e300;
  for (int r = 0; r < kReps; ++r) {
    const Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double s =
        std::chrono::duration<double>(Clock::now() - start).count();
    best = std::min(best, s / static_cast<double>(iters));
  }
  return best;
}

struct LevelResult {
  Level level;
  double nsPerOp = 0.0;
  double speedup = 1.0;  // scalar time / this time
};

struct KernelResult {
  std::string kernel;
  double opsUnit = 0.0;  // pixels (or bins) per op, for the table
  std::vector<LevelResult> levels;
};

volatile std::uint64_t g_sink = 0;  // defeat dead-code elimination

}  // namespace

int main() {
  bench::printHeader(
      "SIMD kernel layer: per-kernel cost per dispatch level vs scalar");

  const std::vector<Level> levels = media::kernels::availableLevels();
  std::printf("dispatch levels available:");
  for (Level l : levels) std::printf(" %s", media::kernels::levelName(l));
  std::printf("  (active: %s)\n",
              media::kernels::levelName(media::kernels::activeLevel()));

  // Workload: one paper-resolution frame of random content, plus a second
  // frame for the EMD pair.  Deterministic, so runs are comparable.
  const std::size_t n = static_cast<std::size_t>(kWidth) * kHeight;
  media::Image frameA(kWidth, kHeight);
  media::Image frameB(kWidth, kHeight);
  media::SplitMix64 rng(0x51D);
  for (media::Rgb8& p : frameA.pixels()) {
    const std::uint64_t r = rng.next();
    p = media::Rgb8{static_cast<std::uint8_t>(r),
                    static_cast<std::uint8_t>(r >> 8),
                    static_cast<std::uint8_t>(r >> 16)};
  }
  for (media::Rgb8& p : frameB.pixels()) {
    const std::uint64_t r = rng.next();
    p = media::Rgb8{static_cast<std::uint8_t>(r),
                    static_cast<std::uint8_t>(r >> 8),
                    static_cast<std::uint8_t>(r >> 16)};
  }
  const media::Rgb8* pxA = frameA.pixels().data();

  FrameProfile profA;
  FrameProfile profB;
  media::kernels::tableFor(Level::kScalar)->profileRgb(pxA, n, profA);
  media::kernels::tableFor(Level::kScalar)
      ->profileRgb(frameB.pixels().data(), n, profB);

  const KernelTable* scalar = media::kernels::tableFor(Level::kScalar);
  bool identical = true;
  std::vector<KernelResult> results;

  const auto report = [&](const char* name, double unit, auto&& makeOp,
                          std::size_t iters) {
    KernelResult kr;
    kr.kernel = name;
    kr.opsUnit = unit;
    double scalarNs = 0.0;
    for (Level level : levels) {
      const KernelTable* table = media::kernels::tableFor(level);
      auto op = makeOp(table);  // returns closure; also checks correctness
      LevelResult lr;
      lr.level = level;
      lr.nsPerOp = 1e9 * timeOp(iters, op);
      if (level == Level::kScalar) scalarNs = lr.nsPerOp;
      lr.speedup = scalarNs > 0.0 ? scalarNs / lr.nsPerOp : 1.0;
      kr.levels.push_back(lr);
    }
    results.push_back(std::move(kr));
  };

  // (1) Fused frame profile.
  report(
      "profile_rgb", static_cast<double>(n),
      [&](const KernelTable* table) {
        FrameProfile check;
        table->profileRgb(pxA, n, check);
        identical = identical && check.hist == profA.hist &&
                    check.lumaSum == profA.lumaSum &&
                    check.minLuma == profA.minLuma &&
                    check.maxLuma == profA.maxLuma;
        return [table, pxA, n] {
          FrameProfile out;
          table->profileRgb(pxA, n, out);
          g_sink += out.lumaSum;
        };
      },
      40);

  // (3) 256-bin EMD numerator (the scene detector's per-frame cost).
  const Uint128 wantEmd =
      scalar->emdNumerator(profA.hist.data(), n, profB.hist.data(), n);
  report(
      "emd_256", 256.0,
      [&](const KernelTable* table) {
        identical =
            identical && table->emdNumerator(profA.hist.data(), n,
                                             profB.hist.data(), n) == wantEmd;
        return [table, &profA, &profB, n] {
          g_sink += static_cast<std::uint64_t>(table->emdNumerator(
              profA.hist.data(), n, profB.hist.data(), n));
        };
      },
      20000);

  // (4) Compensation transform and clipped counting.
  const double kGain = 1.6;
  std::vector<media::Rgb8> scaledWant(n);
  scalar->scalePixels(pxA, n, kGain, scaledWant.data());
  report(
      "scale_pixels", static_cast<double>(n),
      [&](const KernelTable* table) {
        std::vector<media::Rgb8> out(n);
        table->scalePixels(pxA, n, kGain, out.data());
        identical = identical &&
                    std::memcmp(out.data(), scaledWant.data(),
                                n * sizeof(media::Rgb8)) == 0;
        return [table, pxA, n, kGain] {
          static std::vector<media::Rgb8> dst(n);
          table->scalePixels(pxA, n, kGain, dst.data());
          g_sink += dst[0].r;
        };
      },
      40);

  const std::size_t wantClipped = scalar->countClipped(pxA, n, kGain);
  report(
      "count_clipped", static_cast<double>(n),
      [&](const KernelTable* table) {
        identical =
            identical && table->countClipped(pxA, n, kGain) == wantClipped;
        return [table, pxA, n, kGain] {
          g_sink += table->countClipped(pxA, n, kGain);
        };
      },
      100);

  // Max-channel histogram (clip-fraction planning; vectorized this PR).
  std::uint64_t maxHistWant[256] = {};
  scalar->maxChannelHistogram(pxA, n, maxHistWant);
  report(
      "max_channel_hist", static_cast<double>(n),
      [&](const KernelTable* table) {
        std::uint64_t got[256] = {};
        table->maxChannelHistogram(pxA, n, got);
        identical =
            identical && std::memcmp(got, maxHistWant, sizeof got) == 0;
        return [table, pxA, n] {
          std::uint64_t hist[256] = {};
          table->maxChannelHistogram(pxA, n, hist);
          g_sink += hist[128];
        };
      },
      100);

  // (2) Histogram accumulate (scene statistics merge).
  report(
      "hist_accumulate", 256.0,
      [&](const KernelTable* table) {
        std::uint64_t want[256];
        std::uint64_t got[256];
        std::copy(profB.hist.begin(), profB.hist.end(), want);
        std::copy(profB.hist.begin(), profB.hist.end(), got);
        scalar->histAccumulate(want, profA.hist.data());
        table->histAccumulate(got, profA.hist.data());
        identical = identical && std::memcmp(want, got, sizeof want) == 0;
        return [table, &profA] {
          static std::uint64_t dst[256] = {};
          table->histAccumulate(dst, profA.hist.data());
          g_sink += dst[0];
        };
      },
      50000);

  // Luma plane extraction (codec front-end).
  std::vector<std::uint8_t> planeWant(n);
  scalar->lumaPlane(pxA, n, planeWant.data());
  report(
      "luma_plane", static_cast<double>(n),
      [&](const KernelTable* table) {
        std::vector<std::uint8_t> out(n);
        table->lumaPlane(pxA, n, out.data());
        identical =
            identical && std::memcmp(out.data(), planeWant.data(), n) == 0;
        return [table, pxA, n] {
          static std::vector<std::uint8_t> dst(n);
          table->lumaPlane(pxA, n, dst.data());
          g_sink += dst[0];
        };
      },
      40);

  bench::Table table({"kernel", "level", "ns/op", "ns/Kelem", "speedup"});
  for (const KernelResult& kr : results) {
    for (const LevelResult& lr : kr.levels) {
      table.addRow({kr.kernel, media::kernels::levelName(lr.level),
                    bench::fmt(lr.nsPerOp, 1),
                    bench::fmt(1000.0 * lr.nsPerOp / kr.opsUnit, 2),
                    bench::fmt(lr.speedup, 2) + "x"});
    }
  }
  table.print();
  table.printCsv("simd_kernels");
  std::printf("\nall variants bit-identical to scalar: %s\n",
              identical ? "yes" : "NO");

  // Acceptance targets (x86-64): best level must reach 4x on EMD and 2x on
  // the fused profile.
  double bestEmd = 1.0;
  double bestProfile = 1.0;
  for (const KernelResult& kr : results) {
    for (const LevelResult& lr : kr.levels) {
      if (kr.kernel == "emd_256") bestEmd = std::max(bestEmd, lr.speedup);
      if (kr.kernel == "profile_rgb") {
        bestProfile = std::max(bestProfile, lr.speedup);
      }
    }
  }
#if defined(__x86_64__) || defined(_M_X64)
  const bool targetsApply = true;
#else
  const bool targetsApply = false;
#endif
  const bool targetsMet = bestEmd >= 4.0 && bestProfile >= 2.0;
  std::printf("best speedups: emd_256 %.2fx (target 4x), profile_rgb %.2fx "
              "(target 2x) -> %s\n",
              bestEmd, bestProfile,
              !targetsApply ? "n/a (non-x86)" : targetsMet ? "MET" : "MISSED");

  const std::string jsonFile = bench::jsonPath("BENCH_simd_kernels.json");
  if (std::FILE* json = std::fopen(jsonFile.c_str(), "w")) {
    std::fprintf(json, "{\n  \"workload\": {\"width\": %d, \"height\": %d},\n",
                 kWidth, kHeight);
    std::fprintf(json, "  \"levels\": [");
    for (std::size_t i = 0; i < levels.size(); ++i) {
      std::fprintf(json, "%s\"%s\"", i ? ", " : "",
                   media::kernels::levelName(levels[i]));
    }
    std::fprintf(json, "],\n  \"kernels\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const KernelResult& kr = results[i];
      std::fprintf(json, "    {\"kernel\": \"%s\", \"elems_per_op\": %.0f, "
                         "\"levels\": [",
                   kr.kernel.c_str(), kr.opsUnit);
      for (std::size_t j = 0; j < kr.levels.size(); ++j) {
        const LevelResult& lr = kr.levels[j];
        std::fprintf(json,
                     "%s{\"level\": \"%s\", \"ns_per_op\": %.1f, "
                     "\"speedup_vs_scalar\": %.3f}",
                     j ? ", " : "", media::kernels::levelName(lr.level),
                     lr.nsPerOp, lr.speedup);
      }
      std::fprintf(json, "]}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"bit_identical\": %s,\n"
                 "  \"best_emd_speedup\": %.3f,\n"
                 "  \"best_profile_speedup\": %.3f,\n"
                 "  \"targets\": {\"emd_min\": 4.0, \"profile_min\": 2.0, "
                 "\"apply\": %s, \"met\": %s}\n}\n",
                 identical ? "true" : "false", bestEmd, bestProfile,
                 targetsApply ? "true" : "false",
                 targetsMet ? "true" : "false");
    std::fclose(json);
    std::printf("wrote %s\n", jsonFile.c_str());
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: a SIMD variant diverged from the scalar reference\n");
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
