// Combined annotation dividend: backlight scaling (the paper's headline)
// plus the two Sec. 3 riders -- annotation-driven DVFS and radio
// scheduling -- composed into whole-device power.
//
// Baseline device: full backlight, race-to-idle CPU, always-on radio.
// Annotated device: scene-scheduled backlight, workload-scheduled CPU,
// burst-scheduled radio.  Every schedule is computable at the server and
// shipped in a few hundred bytes of annotations.
#include "bench_util.h"
#include "media/clipgen.h"
#include "media/codec.h"
#include "player/experiment.h"
#include "power/battery.h"
#include "power/dvfs.h"
#include "power/power.h"
#include "stream/traffic.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Combined annotation-driven savings: backlight + CPU DVFS + radio");
  const power::MobileDevicePower devicePower = power::makeIpaq5555Power();
  const power::DvfsCpu cpu = power::DvfsCpu::xscalePxa255();
  const power::NicModel nicModel;
  const stream::Link wifi = stream::makeReferencePath().lastHop();
  const power::BatteryModel battery = power::BatteryModel::ipaq5555();
  constexpr std::size_t kQ = 2;  // 10% quality level

  power::DecodeWorkModel work;
  work.cyclesPerByte = 6000.0;
  work.cyclesPerPixel = 500.0;

  player::PlaybackConfig playbackCfg;
  playbackCfg.qualityEvalStride = 1 << 20;

  bench::Table table({"clip", "component", "baseline_W", "annotated_W",
                      "savings_pct"});
  for (media::PaperClip clipId :
       {media::PaperClip::kTheMovie, media::PaperClip::kIceAge}) {
    const media::VideoClip clip =
        media::generatePaperClip(clipId, 0.10, 96, 72);
    const double duration = clip.durationSeconds();

    // --- Backlight: annotation experiment at 10% quality. ----------------
    const player::ClipExperimentResult bl = player::runAnnotationExperiment(
        clip, devicePower, {}, playbackCfg);
    const double blBase = devicePower.backlightWatts(255);
    const double blAnno =
        bl.reports[kQ].backlightEnergyJ / duration;

    // --- CPU: DVFS from the complexity annotation. ------------------------
    const media::EncodedClip enc = media::encodeClip(clip, {75, 12, 1.5});
    const power::ComplexityTrack complexity =
        power::ComplexityTrack::fromEncodedClip(enc, work);
    const double cpuBase =
        power::scheduleRaceToIdle(cpu, complexity, clip.fps).energyJoules /
        duration;
    const double cpuAnno =
        power::scheduleAnnotated(cpu, complexity, clip.fps).energyJoules /
        duration;

    // --- Radio: burst schedule from the size annotation. ------------------
    std::vector<std::size_t> wireBytes;
    for (const media::EncodedFrame& f : enc.frames) {
      wireBytes.push_back(
          stream::transferOverLink(wifi, f.sizeBytes()).wireBytes);
    }
    const double nicBase =
        stream::nicAlwaysOn(nicModel, wireBytes, wifi, clip.fps)
            .energyJoules /
        duration;
    const double nicAnno =
        stream::nicAnnotated(nicModel, wireBytes, wifi, clip.fps)
            .energyJoules /
        duration;

    // --- Fixed remainder (panel + base). ----------------------------------
    power::OperatingPoint idleOp{power::CpuState::kIdle,
                                 power::NicState::kSleep, 0, true};
    const double fixed = devicePower.totalWatts(idleOp) -
                         devicePower.cpu().idleWatts -
                         devicePower.nic().sleepWatts;

    const double totalBase = fixed + blBase + cpuBase + nicBase;
    const double totalAnno = fixed + blAnno + cpuAnno + nicAnno;

    const auto addRow = [&](const char* name, double base, double anno) {
      table.addRow({clip.name, name, bench::fmt(base, 3),
                    bench::fmt(anno, 3), bench::pct(1.0 - anno / base)});
    };
    addRow("backlight", blBase, blAnno);
    addRow("cpu", cpuBase, cpuAnno);
    addRow("radio", nicBase, nicAnno);
    addRow("TOTAL-device", totalBase, totalAnno);
    table.addRow({clip.name, "battery-hours",
                  bench::fmt(battery.runtimeHours(totalBase), 2),
                  bench::fmt(battery.runtimeHours(totalAnno), 2),
                  bench::pct(battery.extensionFactor(totalBase, totalAnno) -
                             1.0)});
  }
  table.print();
  std::printf(
      "\nReading: backlight scaling alone gives the paper's 15-20%% device\n"
      "savings; adding the Sec. 3 riders (CPU + radio, driven by the same\n"
      "annotation mechanism) roughly doubles the whole-device reduction --\n"
      "content-dependent as ever (ice_age gains little from backlight but\n"
      "still collects the CPU and radio dividends).\n");
  table.printCsv("combined_savings");
  return 0;
}
