// Serial vs parallel annotation throughput (the perf story behind the
// src/concurrency module): per-clip annotateClip at 1/2/4/8 threads, plus
// the batch annotateClips path a production server uses to ingest many
// clips concurrently.  Prints the usual table/CSV and emits a
// machine-readable BENCH_annotate_parallel.json at the repo root.
//
// Every parallel run is verified bit-identical to the serial tracks before
// its numbers are reported -- a run that diverges aborts with EXIT_FAILURE.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "concurrency/thread_pool.h"
#include "core/annotate.h"
#include "media/clipgen.h"

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Result {
  unsigned threads = 1;
  double perClipSeconds = 0.0;  // annotateClip over every clip, one at a time
  double batchSeconds = 0.0;    // one annotateClips call over the whole set
  bool identical = false;       // tracks match the serial reference
};

}  // namespace

int main() {
  using namespace anno;

  bench::printHeader(
      "Parallel annotation pipeline: serial vs thread-pool throughput");

  // Workload: the ten synthetic paper trailers.  Scale/resolution keep the
  // whole sweep in seconds while leaving enough frames per clip for the
  // pool to chew on.
  const double kScale = 0.25;
  const int kWidth = 160, kHeight = 120;
  std::vector<media::VideoClip> clips;
  std::size_t totalFrames = 0;
  for (const media::PaperClip pc : media::allPaperClips()) {
    clips.push_back(media::generatePaperClip(pc, kScale, kWidth, kHeight));
    totalFrames += clips.back().frameCount();
  }
  std::printf("workload: %zu clips, %zu frames total (%dx%d)\n", clips.size(),
              totalFrames, kWidth, kHeight);

  // Serial reference (threads = 1): both the baseline time and the ground
  // truth every parallel run must reproduce byte-for-byte.
  core::AnnotatorConfig serialCfg;
  serialCfg.threads = 1;
  std::vector<core::AnnotationTrack> reference;
  const Clock::time_point serialStart = Clock::now();
  for (const media::VideoClip& clip : clips) {
    reference.push_back(core::annotateClip(clip, serialCfg));
  }
  const double serialSeconds = secondsSince(serialStart);

  const auto bestOf = [](int reps, const auto& fn) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const Clock::time_point start = Clock::now();
      fn();
      best = std::min(best, secondsSince(start));
    }
    return best;
  };

  std::vector<Result> results;
  bool allIdentical = true;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    core::AnnotatorConfig cfg;
    cfg.threads = threads;
    Result res;
    res.threads = threads;

    std::vector<core::AnnotationTrack> perClip;
    res.perClipSeconds = bestOf(3, [&] {
      perClip.clear();
      for (const media::VideoClip& clip : clips) {
        perClip.push_back(core::annotateClip(clip, cfg));
      }
    });
    std::vector<core::AnnotationTrack> batch;
    res.batchSeconds = bestOf(3, [&] { batch = core::annotateClips(clips, cfg); });

    res.identical = perClip == reference && batch == reference;
    allIdentical = allIdentical && res.identical;
    results.push_back(res);
  }

  bench::Table table({"threads", "per-clip frames/s", "batch frames/s",
                      "batch clips/s", "speedup vs serial", "bit-identical"});
  for (const Result& r : results) {
    table.addRow({std::to_string(r.threads),
                  bench::fmt(static_cast<double>(totalFrames) / r.perClipSeconds, 0),
                  bench::fmt(static_cast<double>(totalFrames) / r.batchSeconds, 0),
                  bench::fmt(static_cast<double>(clips.size()) / r.batchSeconds, 1),
                  bench::fmt(serialSeconds / r.batchSeconds, 2),
                  r.identical ? "yes" : "NO"});
  }
  table.print();
  table.printCsv("annotate_parallel");
  std::printf("\nserial reference: %.3f s (%.0f frames/s)\n", serialSeconds,
              static_cast<double>(totalFrames) / serialSeconds);
  const unsigned hw = concurrency::resolveThreads(0);
  std::printf("hardware threads: %u%s\n", hw,
              hw < 4 ? "  (speedup is capped by the host; determinism still "
                       "verified)"
                     : "");

  const std::string jsonFile = bench::jsonPath("BENCH_annotate_parallel.json");
  std::FILE* json = std::fopen(jsonFile.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"workload\": {\"clips\": %zu, \"frames\": %zu, "
                 "\"width\": %d, \"height\": %d},\n",
                 clips.size(), totalFrames, kWidth, kHeight);
    std::fprintf(json, "  \"hardware_threads\": %u,\n", hw);
    std::fprintf(json, "  \"serial_seconds\": %.6f,\n", serialSeconds);
    std::fprintf(json, "  \"runs\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(
          json,
          "    {\"threads\": %u, \"per_clip_seconds\": %.6f, "
          "\"batch_seconds\": %.6f, \"per_clip_frames_per_sec\": %.1f, "
          "\"batch_frames_per_sec\": %.1f, \"batch_clips_per_sec\": %.2f, "
          "\"speedup_vs_serial\": %.3f, \"bit_identical\": %s}%s\n",
          r.threads, r.perClipSeconds, r.batchSeconds,
          static_cast<double>(totalFrames) / r.perClipSeconds,
          static_cast<double>(totalFrames) / r.batchSeconds,
          static_cast<double>(clips.size()) / r.batchSeconds,
          serialSeconds / r.batchSeconds, r.identical ? "true" : "false",
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", jsonFile.c_str());
  }

  if (!allIdentical) {
    std::fprintf(stderr,
                 "FATAL: parallel annotation diverged from the serial path\n");
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
