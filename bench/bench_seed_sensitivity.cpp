// Sensitivity of the headline results to the synthetic content realization:
// each paper clip's profile is re-drawn with several seeds (same statistics,
// different scenes) and the backlight savings are reported as mean +/- sd.
// Tight spreads mean the figures measure the content STATISTICS -- which the
// profiles encode from the paper's description -- not one lucky draw.
#include <cmath>

#include "bench_util.h"
#include "media/clipgen.h"
#include "player/experiment.h"
#include "power/power.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Seed sensitivity: backlight savings (q=10%) across content draws");
  const power::MobileDevicePower devicePower = power::makeIpaq5555Power();
  player::PlaybackConfig cfg;
  cfg.qualityEvalStride = 1 << 20;
  constexpr int kSeeds = 5;

  bench::Table table({"clip", "mean_pct", "stddev_pct", "min_pct",
                      "max_pct"});
  for (media::PaperClip clipId : media::allPaperClips()) {
    double sum = 0.0, sumSq = 0.0;
    double lo = 1.0, hi = 0.0;
    for (int s = 0; s < kSeeds; ++s) {
      const media::ClipProfile profile = media::paperClipProfile(
          clipId, 0.08, 96, 72, 0xBEEF0000ULL + s * 1299709ULL + s);
      const media::VideoClip clip = media::generateClip(profile);
      const player::ClipExperimentResult result =
          player::runAnnotationExperiment(clip, devicePower, {}, cfg);
      const double savings = result.reports[2].backlightSavings();
      sum += savings;
      sumSq += savings * savings;
      lo = std::min(lo, savings);
      hi = std::max(hi, savings);
    }
    const double mean = sum / kSeeds;
    const double var = std::max(0.0, sumSq / kSeeds - mean * mean);
    table.addRow({media::paperClipName(clipId), bench::pct(mean),
                  bench::pct(std::sqrt(var)), bench::pct(lo),
                  bench::pct(hi)});
  }
  table.print();
  std::printf(
      "\nReading: the per-clip ordering (dark >> bright) and magnitudes are\n"
      "stable across draws; spreads of a few points reflect scene-mix\n"
      "randomness, exactly like different trailers of the same genre.\n");
  table.printCsv("seed_sensitivity");
  return 0;
}
