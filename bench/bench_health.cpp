// Health-monitor overhead bench: what the live-health layer costs the
// serving stack.
//
// Two numbers gate the feature (DESIGN.md sec. 16): the micro cost of one
// HealthMonitor::observe() tick against the full default rule set, and the
// end-to-end soak overhead with health + flight recorder ON vs OFF --
// which must stay under 2% (min-of-3 wall clock on both arms).  A disabled
// health arm must also leave the deterministic fleet report untouched:
// observation may never change behavior.  Emits BENCH_health.json.
//
//   bench_health [--sessions N] [--daySeconds S] [--iters N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "soak/driver.h"
#include "soak/traffic_mix.h"
#include "telemetry/health.h"
#include "telemetry/metrics.h"

namespace anno {
namespace {

using Clock = std::chrono::steady_clock;

double minOf3Soak(const soak::SoakConfig& cfg, soak::FleetSoakReport* out) {
  double best = 1e300;
  for (int i = 0; i < 3; ++i) {
    const Clock::time_point start = Clock::now();
    soak::FleetSoakReport r = soak::runSoak(cfg);
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (wall < best) {
      best = wall;
      if (out != nullptr) *out = std::move(r);
    }
  }
  return best;
}

int run(std::size_t sessions, double daySeconds, std::size_t iters) {
  bench::printHeader("Live-health overhead (observe tick + soak on/off)");

  // --- micro: one observe() against the full default rule set ------------
  telemetry::Registry registry;
  telemetry::Counter& stalls =
      registry.counter("anno_fleet_stalls_total", {}, "bench");
  telemetry::Counter& ticks =
      registry.counter("anno_fleet_session_ticks_total", {}, "bench");
  telemetry::Counter& hits =
      registry.counter("anno_track_cache_hits_total", {}, "bench");
  (void)registry.counter("anno_track_cache_misses_total", {}, "bench");
  (void)registry.counter("anno_soak_fault_sessions_total", {}, "bench");
  (void)registry.counter("anno_fleet_sessions_completed_total", {}, "bench");
  (void)registry.counter("anno_fleet_sessions_left_total", {}, "bench");
  telemetry::Histogram& startup = registry.histogram(
      "anno_fleet_startup_seconds",
      {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}, {}, "bench");
  (void)registry.gauge("anno_fleet_sessions_playing", {}, "bench");
  (void)registry.gauge("anno_fleet_playing_power_milliwatts", {}, "bench");

  soak::TrafficMixConfig mix;
  const soak::HealthOptions opts =
      soak::defaultHealthOptions(mix, 400000.0);
  telemetry::HealthMonitor monitor(opts.config, &registry);
  // Warm the windows so the steady state (full rings, all rules live) is
  // what gets timed.
  for (int i = 0; i < 512; ++i) monitor.observe();
  const Clock::time_point microStart = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    stalls.inc(1);
    ticks.inc(40);
    hits.inc(7);
    startup.observe(0.5);
    monitor.observe();
  }
  const double microWall =
      std::chrono::duration<double>(Clock::now() - microStart).count();
  const double nsPerObserve = microWall / static_cast<double>(iters) * 1e9;

  // --- macro: the same soak with the health arm off vs on ----------------
  soak::SoakConfig off;
  off.mix.sessions = sessions;
  off.mix.daySeconds = daySeconds;
  soak::FleetSoakReport offReport;
  const double offWall = minOf3Soak(off, &offReport);

  soak::SoakConfig on = off;
  on.health = soak::defaultHealthOptions(
      on.mix, offReport.wattsSavedPerMillionSessions);
  soak::FleetSoakReport onReport;
  const double onWall = minOf3Soak(on, &onReport);

  const double overhead = (onWall - offWall) / offWall;

  bench::Table table({"metric", "value"});
  table.addRow({"observe() ns (default rules)", bench::fmt(nsPerObserve, 1)});
  table.addRow({"soak wall s (health off)", bench::fmt(offWall, 3)});
  table.addRow({"soak wall s (health on)", bench::fmt(onWall, 3)});
  table.addRow({"overhead %", bench::pct(overhead, 2)});
  table.addRow({"ticks observed", std::to_string(onReport.ticks)});
  table.addRow({"health events (clean mix)",
                std::to_string(onReport.healthEvents.size())});
  table.print();

  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::printf("SELF-CHECK FAILED: %s\n", what);
      ++failures;
    }
  };
  check(overhead < 0.02, "health + flight recorder overhead under 2%");
  check(nsPerObserve < 20000.0, "observe() under 20us");
  // Observation must not change behavior: every deterministic serving
  // number the off-run reports must survive the health arm unchanged.
  check(onReport.cacheHits == offReport.cacheHits &&
            onReport.cacheMisses == offReport.cacheMisses &&
            onReport.joulesSaved == offReport.joulesSaved &&
            onReport.stallEvents == offReport.stallEvents &&
            onReport.bytesDelivered == offReport.bytesDelivered,
        "health arm leaves the serving numbers untouched");
  check(!onReport.healthRules.empty(), "rules evaluated");
  check(onReport.healthEvents.empty(), "clean mix fires nothing");

  const std::string path = bench::jsonPath("BENCH_health.json");
  if (FILE* f = std::fopen(path.c_str(), "wb")) {
    std::fprintf(f,
                 "{\n"
                 "  \"sessions\": %zu,\n"
                 "  \"day_seconds\": %g,\n"
                 "  \"observe_ns\": %.6g,\n"
                 "  \"soak_wall_seconds_off\": %.6g,\n"
                 "  \"soak_wall_seconds_on\": %.6g,\n"
                 "  \"overhead_fraction\": %.6g,\n"
                 "  \"rules\": %zu,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 sessions, daySeconds, nsPerObserve, offWall, onWall,
                 overhead, onReport.healthRules.size(),
                 failures == 0 ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace anno

int main(int argc, char** argv) {
  std::size_t sessions = 4000;
  double daySeconds = 60.0;
  std::size_t iters = 200000;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--sessions") == 0) {
      sessions = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--daySeconds") == 0) {
      daySeconds = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      iters = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    }
  }
  return anno::run(sessions, daySeconds, iters);
}
