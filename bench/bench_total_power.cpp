// Figure 10: "Total power savings (measured)".
//
// Same sweep as Figure 9, but the metric is whole-device energy and the
// numbers come from the simulated DAQ measurement chain (20 kS/s sampling of
// the sense-resistor voltages), mirroring the paper's instrumented iPAQ 5555
// with batteries removed.  Paper shape: 15-20% for dark clips, ice_age ~0.
#include "bench_util.h"
#include "media/clipgen.h"
#include "player/experiment.h"
#include "power/daq.h"
#include "power/power.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Figure 10: Total device power savings (DAQ-measured), iPAQ 5555");
  const bench::BenchParams params{0.12, 96, 72};  // DAQ sampling is costly
  const power::MobileDevicePower devicePower = power::makeIpaq5555Power();

  player::PlaybackConfig playbackCfg;
  playbackCfg.qualityEvalStride = 1 << 20;

  bench::Table table({"clip", "q=0%", "q=5%", "q=10%", "q=15%", "q=20%"});
  for (media::PaperClip clip : media::allPaperClips()) {
    const media::VideoClip video = media::generatePaperClip(
        clip, params.clipScale, params.width, params.height);
    const player::ClipExperimentResult result =
        player::runAnnotationExperiment(video, devicePower, {}, playbackCfg);

    // Full-backlight reference, measured through the same DAQ chain.
    player::PlaybackReport fullRef = result.reports.front();
    for (double& w : fullRef.frameTotalPowerW) {
      // Reconstruct the no-dimming power: decode CPU + rx NIC + full panel.
      power::OperatingPoint op;
      op.backlightLevel = 255;
      w = devicePower.totalWatts(op);
    }
    const double fullWatts =
        player::measureAverageWatts(fullRef, video.fps);

    std::vector<std::string> row = {result.clipName};
    for (const player::PlaybackReport& r : result.reports) {
      const double measured = player::measureAverageWatts(r, video.fps);
      row.push_back(bench::pct(1.0 - measured / fullWatts));
    }
    table.addRow(std::move(row));
  }
  table.print();
  std::printf(
      "\nPaper reference: up to 15-20%% whole-device reduction, ice_age\n"
      "almost none.  Backlight share of device power: %.1f%%.\n",
      100.0 * devicePower.backlightShare());
  table.printCsv("fig10_total_power");
  return 0;
}
