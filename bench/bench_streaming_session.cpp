// Streaming-session dynamics: startup delay and rebuffering of the muxed
// stream over a wireless link, including the annotation preamble's (non-)
// effect on startup -- the delivery-side sanity check behind Fig. 1.
#include "bench_util.h"
#include "core/anno_codec.h"
#include "core/annotate.h"
#include "media/clipgen.h"
#include "media/codec.h"
#include "stream/session_sim.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Streaming-session dynamics: startup & stalls over 802.11b");
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kSpiderman2, 0.12, 96, 72);
  const media::EncodedClip encoded = media::encodeClip(clip, {75, 12, 1.5});
  const core::AnnotationTrack track = core::annotateClip(clip);
  const std::size_t annoBytes = core::encodeTrack(track).size();
  const stream::Link wifi = stream::makeReferencePath().lastHop();
  const double bitrate = static_cast<double>(encoded.totalBytes()) * 8.0 /
                         clip.durationSeconds();

  std::printf("clip bitrate: %.2f Mbit/s, annotation preamble: %zu bytes\n",
              bitrate / 1e6, annoBytes);

  bench::Table table({"link_condition", "bw_vs_bitrate", "startup_s",
                      "rebuffer_events", "stall_pct", "completed"});
  struct Case {
    const char* name;
    stream::BandwidthTrace bw;
    double ratio;
  };
  const std::vector<Case> cases = {
      {"wired-class", stream::BandwidthTrace::constant(bitrate * 10.0), 10.0},
      {"comfortable", stream::BandwidthTrace::constant(bitrate * 2.0), 2.0},
      {"tight", stream::BandwidthTrace::constant(bitrate * 1.1), 1.1},
      {"starved", stream::BandwidthTrace::constant(bitrate * 0.7), 0.7},
      {"dipping-AP",
       stream::BandwidthTrace::periodicDip(bitrate * 3.0, bitrate * 0.1, 3.0,
                                           1.0),
       3.0},
      {"fading",
       stream::BandwidthTrace::randomWalk(bitrate * 1.5, 0.25, 7, 0.25,
                                          clip.durationSeconds() * 3.0),
       1.5},
  };
  for (const Case& c : cases) {
    stream::SessionSimConfig cfg;
    cfg.preambleBytes = annoBytes;
    const stream::SessionSimResult r =
        stream::simulateSession(encoded, wifi, c.bw, cfg);
    table.addRow({c.name, bench::fmt(c.ratio, 1),
                  bench::fmt(r.startupDelaySeconds, 2),
                  std::to_string(r.rebufferEvents),
                  bench::pct(r.stallFraction()),
                  r.completed ? "yes" : "NO"});
  }
  table.print();

  // Annotation preamble sensitivity.
  std::printf("\nStartup delay vs preamble size (comfortable link):\n");
  for (std::size_t preamble :
       {std::size_t{0}, annoBytes, std::size_t{50000}, std::size_t{500000}}) {
    stream::SessionSimConfig cfg;
    cfg.preambleBytes = preamble;
    const stream::SessionSimResult r = stream::simulateSession(
        encoded, wifi, stream::BandwidthTrace::constant(bitrate * 2.0), cfg);
    std::printf("  preamble %7zu B -> startup %.2f s\n", preamble,
                r.startupDelaySeconds);
  }
  std::printf(
      "\nReading: the annotation track (tens of bytes) is startup-neutral;\n"
      "shipping equivalent information as bulky per-frame side data (the\n"
      "500 KB row) would visibly delay playback start.\n");
  table.printCsv("streaming_session");
  return 0;
}
