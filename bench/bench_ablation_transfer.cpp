// Ablation: device transfer function in the loop vs assumed-linear.
//
// The paper: "Our scheme allows us to tailor the technique to each PDA for
// better power savings, by including the display properties in the loop."
// This bench plans backlight levels twice -- once with the device's true
// (non-linear) transfer, once pretending it is linear -- and reports the
// power left on the table and the quality damage of the mismatch.
#include "bench_util.h"
#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "media/clipgen.h"
#include "quality/validate.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Ablation: transfer-aware planning vs assumed-linear transfer");
  quality::CameraModel camera;

  media::SceneSpec scene;
  scene.backgroundLuma = 70;
  scene.backgroundSpread = 30;
  scene.highlightFraction = 0.004;
  scene.highlightLuma = 240;
  const media::Image frame =
      media::renderSceneFrame(scene, 128, 96, 0.0, media::SplitMix64(5));
  const media::Histogram hist = media::Histogram::ofImage(frame);

  bench::Table table({"device", "planner", "backlight", "bl_savings_pct",
                      "avg_shift", "emd", "verdict"});
  for (display::KnownDevice id : display::allKnownDevices()) {
    const display::DeviceModel device = display::makeDevice(id);
    display::DeviceModel assumedLinear = device;
    assumedLinear.transfer = display::TransferFunction::linear();

    // True-transfer plan: level and gain from the real curve.
    {
      const compensate::CompensationPlan plan =
          compensate::planForHistogram(device, hist, 0.10);
      const media::Image comp = compensate::contrastEnhance(frame, plan.gainK);
      const quality::ValidationReport r = quality::validateCompensation(
          device, camera, frame, comp, plan.backlightLevel);
      table.addRow({device.name, "transfer-aware",
                    std::to_string(plan.backlightLevel),
                    bench::pct(device.backlightSavings(plan.backlightLevel)),
                    bench::fmt(r.comparison.averagePointShift, 1),
                    bench::fmt(r.comparison.earthMovers, 1),
                    r.pass ? "PASS" : "DEGRADED"});
    }
    // Linear-assumption plan: picks level & gain as if T were linear, but
    // the panel obeys its true transfer -- the mismatch shows as either
    // wasted power or visible error.
    {
      const compensate::CompensationPlan plan =
          compensate::planForHistogram(assumedLinear, hist, 0.10);
      const media::Image comp = compensate::contrastEnhance(frame, plan.gainK);
      const quality::ValidationReport r = quality::validateCompensation(
          device, camera, frame, comp, plan.backlightLevel);
      table.addRow({device.name, "assumed-linear",
                    std::to_string(plan.backlightLevel),
                    bench::pct(device.backlightSavings(plan.backlightLevel)),
                    bench::fmt(r.comparison.averagePointShift, 1),
                    bench::fmt(r.comparison.earthMovers, 1),
                    r.pass ? "PASS" : "DEGRADED"});
    }
  }
  table.print();
  std::printf(
      "\nReading: on the concave LED device the linear assumption picks a\n"
      "backlight level HIGHER than needed (less savings) and a gain that\n"
      "no longer matches 1/T(b) (visible brightness error); on CCFL devices\n"
      "it can fall below the lamp's strike threshold.  Characterizing each\n"
      "device (Figs. 7/8) removes both failure modes.\n");
  table.printCsv("ablation_transfer");
  return 0;
}
