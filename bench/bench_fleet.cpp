// Fleet-scale serving bench: N concurrent sessions over a multi-tenant,
// multi-clip catalog through the shared TrackCache + SessionScheduler.
//
// The claim under test (ROADMAP "one engine pass, N clients, M tenants"):
// engine-seconds are a function of unique (clip, tenant-fingerprint) pairs,
// NOT of session count -- so a 10k-session fleet on a 10-tenant, 100-clip
// mix pays ~1000 engine passes, a >90% annotation-cache hit rate, and a
// sub-linearity factor of sessions/fills.  The bench self-checks those
// invariants (exit 1 on violation) and emits BENCH_fleet.json.
//
//   bench_fleet [--sessions N] [--clips N] [--tenants N]
//               [--deviceGroups N] [--maxTicks N]
//
// CI runs a reduced mix (see .github/workflows/ci.yml); defaults reproduce
// the ISSUE's 10k-session acceptance numbers.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/track_cache.h"
#include "media/clipgen.h"
#include "stream/scheduler.h"
#include "stream/server.h"

namespace anno {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Ten plan-distinct tenants (distinct fingerprints by construction --
/// pinned in tests/fleet); index i % 10 picks tenant i's config.
std::vector<core::AnnotatorConfig> makeTenants(std::size_t count) {
  std::vector<core::AnnotatorConfig> tenants;
  for (std::size_t i = 0; i < count; ++i) {
    core::AnnotatorConfig cfg;
    switch (i % 10) {
      case 0: break;  // the server default
      case 1: cfg.granularity = core::Granularity::kPerFrame; break;
      case 2: cfg.detector = core::SceneDetector::kHistogramEmd; break;
      case 3:
        cfg.detector = core::SceneDetector::kHistogramEmd;
        cfg.granularity = core::Granularity::kPerFrame;
        break;
      case 4: cfg.qualityLevels = {0.0, 0.1, 0.2, 0.3}; break;
      case 5: cfg.protectCredits = true; break;
      case 6: cfg.sceneDetect.changeThreshold = 0.15; break;
      case 7:
        cfg.detector = core::SceneDetector::kHistogramEmd;
        cfg.histogramDetect.emdThreshold = 8.0;
        break;
      case 8:
        // Four levels minimum: device groups index up to quality 3.
        cfg.granularity = core::Granularity::kPerFrame;
        cfg.qualityLevels = {0.0, 0.05, 0.15, 0.3};
        break;
      case 9:
        cfg.protectCredits = true;
        cfg.detector = core::SceneDetector::kHistogramEmd;
        break;
    }
    // Past ten, perturb the ACTIVE detector's threshold so fingerprints
    // stay distinct (the inactive detector's knobs are cosmetic).
    if (i >= 10) {
      const double nudge = 0.001 * static_cast<double>(i);
      if (cfg.detector == core::SceneDetector::kHistogramEmd) {
        cfg.histogramDetect.emdThreshold += nudge;
      } else {
        cfg.sceneDetect.changeThreshold += nudge;
      }
    }
    tenants.push_back(std::move(cfg));
  }
  return tenants;
}

int run(std::size_t sessions, std::size_t clips, std::size_t tenantCount,
        std::size_t deviceGroups, std::uint64_t maxTicks) {
  bench::printHeader(
      "Fleet-scale serving: shared annotation cache + session scheduler\n"
      "(engine passes ~ unique (clip, tenant) pairs, not session count)");
  std::printf("sessions=%zu clips=%zu tenants=%zu deviceGroups=%zu\n\n",
              sessions, clips, tenantCount, deviceGroups);

  // --- Catalog ingest (profiling stats cached per clip) -------------------
  core::AnnotatorConfig serverCfg;
  serverCfg.threads = 0;  // parallel ingest; cosmetic for the fingerprint
  stream::MediaServer server(serverCfg);
  core::TrackCacheConfig cacheCfg;
  cacheCfg.byteBudget = 256u << 20;  // generous: measure sharing, not churn
  core::TrackCache cache(cacheCfg);
  server.attachTrackCache(cache);

  const auto ingestStart = Clock::now();
  {
    constexpr media::PaperClip kSources[] = {
        media::PaperClip::kTheMovie,     media::PaperClip::kCatwoman,
        media::PaperClip::kHunterSubres, media::PaperClip::kIRobot,
        media::PaperClip::kIceAge,       media::PaperClip::kOfficeXp,
        media::PaperClip::kReturnOfTheKing, media::PaperClip::kShrek2,
        media::PaperClip::kSpiderman2,   media::PaperClip::kIncrediblesTlr2};
    std::vector<media::VideoClip> batch;
    batch.reserve(clips);
    for (std::size_t c = 0; c < clips; ++c) {
      media::VideoClip clip = media::generatePaperClip(
          kSources[c % (sizeof kSources / sizeof kSources[0])], 0.01, 32, 24);
      clip.name += "-" + std::to_string(c);
      batch.push_back(std::move(clip));
    }
    server.addClips(std::move(batch));
  }
  const double ingestSeconds = secondsSince(ingestStart);

  const std::vector<core::AnnotatorConfig> tenants = makeTenants(tenantCount);
  const std::vector<std::string> catalog = server.catalog();
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);

  // Session i's assignment sweeps the full (clip, tenant, device-group)
  // cross-product: clip varies fastest, then tenant, then group -- so a
  // 10k-session run touches every one of the clips x tenants cache keys,
  // not an aliased subset.
  const auto clipOf = [&](std::size_t i) -> const std::string& {
    return catalog[i % catalog.size()];
  };
  const auto tenantOf = [&](std::size_t i) -> const core::AnnotatorConfig& {
    return tenants[(i / catalog.size()) % tenants.size()];
  };
  const auto groupOf = [&](std::size_t i) {
    return (i / (catalog.size() * tenants.size())) % deviceGroups;
  };

  // --- Per-session annotation resolution (the cache's hot path) ----------
  const auto resolveStart = Clock::now();
  for (std::size_t i = 0; i < sessions; ++i) {
    (void)server.annotationFor(clipOf(i), tenantOf(i));
  }
  const double resolveSeconds = secondsSince(resolveStart);

  // --- Fleet playback through the scheduler -------------------------------
  stream::SessionScheduler::Config schedCfg;
  schedCfg.tickSeconds = 0.1;
  stream::SessionScheduler sched(server, schedCfg);
  const auto joinStart = Clock::now();
  for (std::size_t i = 0; i < sessions; ++i) {
    stream::FleetSessionConfig s;
    s.clipName = clipOf(i);
    s.caps = stream::ClientCapabilities{
        device.name, device.transfer, groupOf(i)};
    // Tenant 0 is the server default; leaving tenantCfg unset exercises
    // the default-config serve path alongside the tenant path.
    if ((i / catalog.size()) % tenants.size() != 0) s.tenantCfg = tenantOf(i);
    s.bandwidth = stream::BandwidthTrace::constant(8e6);
    s.startupBufferSeconds = 0.2;
    (void)sched.join(s);
  }
  const double joinSeconds = secondsSince(joinStart);
  const auto runStart = Clock::now();
  const std::uint64_t ticks = sched.run(maxTicks);
  const double runSeconds = secondsSince(runStart);

  const core::TrackCacheStats cs = cache.stats();
  const stream::FleetStats fs = sched.stats();
  std::set<std::uint64_t> fingerprints;
  for (const core::AnnotatorConfig& t : tenants) {
    fingerprints.insert(t.fingerprint());
  }
  // Every (clip, fingerprint) pair the resolve loop touched, assuming
  // sessions >= clips x tenants (the defaults: 10000 >= 1000).
  const std::size_t uniqueKeys =
      sessions >= catalog.size() * tenants.size()
          ? catalog.size() * fingerprints.size()
          : cs.fills;  // undersized runs: skip the exact-fill check
  const double subLinear =
      cs.fills > 0 ? static_cast<double>(sessions) /
                         static_cast<double>(cs.fills)
                   : 0.0;

  bench::Table table({"metric", "value"});
  table.addRow({"sessions joined", std::to_string(fs.sessionsJoined)});
  table.addRow({"sessions completed", std::to_string(fs.sessionsCompleted)});
  table.addRow({"peak concurrent", std::to_string(fs.peakConcurrentSessions)});
  table.addRow({"scheduler ticks", std::to_string(ticks)});
  table.addRow({"unique streams", std::to_string(fs.uniqueStreams)});
  table.addRow({"cache requests", std::to_string(cs.hits + cs.misses)});
  table.addRow({"cache hits", std::to_string(cs.hits)});
  table.addRow({"cache fills (engine passes)", std::to_string(cs.fills)});
  table.addRow({"unique (clip, tenant) keys", std::to_string(uniqueKeys)});
  table.addRow({"cache hit rate %", bench::pct(cs.hitRate())});
  table.addRow({"engine seconds (fills)", bench::fmt(cs.fillSeconds, 3)});
  table.addRow({"ingest seconds", bench::fmt(ingestSeconds, 3)});
  table.addRow({"resolve seconds", bench::fmt(resolveSeconds, 3)});
  table.addRow({"join seconds", bench::fmt(joinSeconds, 3)});
  table.addRow({"playback seconds", bench::fmt(runSeconds, 3)});
  table.addRow({"sessions per engine pass", bench::fmt(subLinear, 1)});
  table.print();
  table.printCsv("fleet");

  // --- Self-checks (the ISSUE's acceptance criteria) ----------------------
  int failures = 0;
  if (cs.fills != uniqueKeys) {
    std::printf("FAIL: fills (%llu) != unique keys (%zu) -- single-flight "
                "or keying broken\n",
                static_cast<unsigned long long>(cs.fills), uniqueKeys);
    ++failures;
  }
  if (cs.hitRate() <= 0.9) {
    std::printf("FAIL: cache hit rate %.1f%% <= 90%%\n",
                100.0 * cs.hitRate());
    ++failures;
  }
  if (fs.sessionsCompleted != sessions) {
    std::printf("FAIL: %zu/%zu sessions completed\n", fs.sessionsCompleted,
                sessions);
    ++failures;
  }
  if (fs.peakConcurrentSessions != sessions) {
    std::printf("FAIL: peak concurrency %zu != %zu\n",
                fs.peakConcurrentSessions, sessions);
    ++failures;
  }

  const std::string path = bench::jsonPath("BENCH_fleet.json");
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"sessions\": %zu,\n"
                 "  \"clips\": %zu,\n"
                 "  \"tenants\": %zu,\n"
                 "  \"device_groups\": %zu,\n"
                 "  \"sessions_completed\": %zu,\n"
                 "  \"peak_concurrent_sessions\": %zu,\n"
                 "  \"scheduler_ticks\": %llu,\n"
                 "  \"unique_streams\": %zu,\n"
                 "  \"cache_hits\": %llu,\n"
                 "  \"cache_misses\": %llu,\n"
                 "  \"cache_fills\": %llu,\n"
                 "  \"cache_hit_rate\": %.4f,\n"
                 "  \"single_flight_waits\": %llu,\n"
                 "  \"unique_clip_tenant_keys\": %zu,\n"
                 "  \"engine_seconds\": %.6f,\n"
                 "  \"ingest_seconds\": %.6f,\n"
                 "  \"resolve_seconds\": %.6f,\n"
                 "  \"join_seconds\": %.6f,\n"
                 "  \"playback_seconds\": %.6f,\n"
                 "  \"sessions_per_engine_pass\": %.2f,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 sessions, clips, tenantCount, deviceGroups,
                 fs.sessionsCompleted, fs.peakConcurrentSessions,
                 static_cast<unsigned long long>(ticks), fs.uniqueStreams,
                 static_cast<unsigned long long>(cs.hits),
                 static_cast<unsigned long long>(cs.misses),
                 static_cast<unsigned long long>(cs.fills),
                 cs.hitRate(),
                 static_cast<unsigned long long>(cs.singleFlightWaits),
                 uniqueKeys, cs.fillSeconds, ingestSeconds, resolveSeconds,
                 joinSeconds, runSeconds, subLinear,
                 failures == 0 ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace anno

int main(int argc, char** argv) {
  std::size_t sessions = 10000;
  std::size_t clips = 100;
  std::size_t tenants = 10;
  std::size_t deviceGroups = 4;
  std::uint64_t maxTicks = 1'000'000;
  for (int i = 1; i + 1 < argc; i += 2) {
    const auto value = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    if (std::strcmp(argv[i], "--sessions") == 0) sessions = value;
    else if (std::strcmp(argv[i], "--clips") == 0) clips = value;
    else if (std::strcmp(argv[i], "--tenants") == 0) tenants = value;
    else if (std::strcmp(argv[i], "--deviceGroups") == 0) deviceGroups = value;
    else if (std::strcmp(argv[i], "--maxTicks") == 0) maxTicks = value;
  }
  return anno::run(sessions, clips, tenants, deviceGroups, maxTicks);
}
