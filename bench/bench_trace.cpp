// Trace-recorder overhead on the engine hot path: the per-frame push cost
// of core::AnnotationEngine with a null TraceRecorder pointer (the
// shipping default) vs the same loop emitting scene spans into a live
// recorder.  The tracing contract is the registry's, sharpened: DETACHED
// IS FREE (a null recorder costs one predictable branch, never reads a
// clock -- enforced here by timing the null-safe helper directly) and
// ATTACHED IS CHEAP (the traced push loop must stay within 5% of the
// detached baseline; EXIT_FAILURE otherwise, so CI catches a fattened
// hot path).
//
// Prints the usual table/CSV and emits BENCH_trace.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "media/clipgen.h"
#include "media/video.h"
#include "telemetry/trace.h"

namespace {

using Clock = std::chrono::steady_clock;
using namespace anno;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Run {
  std::string name;
  double seconds = 0.0;  // min over reps
  std::size_t scenes = 0;
};

/// One timed pass of the pure engine push loop (profiling excluded --
/// stats are precomputed) with the given recorder attached.
double onePass(const std::vector<media::FrameStats>& stats,
               telemetry::TraceRecorder* trace, std::size_t& scenesOut) {
  core::AnnotatorConfig cfg;
  cfg.trace = trace;
  core::AnnotationEngine engine(cfg);
  std::size_t scenes = 0;
  const Clock::time_point start = Clock::now();
  for (const media::FrameStats& fs : stats) {
    if (auto s = engine.push(fs)) ++scenes;
  }
  if (auto s = engine.flush()) ++scenes;
  const double seconds = secondsSince(start);
  scenesOut = scenes;
  return seconds;
}

}  // namespace

int main() {
  bench::printHeader(
      "Trace overhead: engine push loop, detached vs attached recorder");

  // Same workload as bench_telemetry: the ten synthetic paper trailers
  // profiled once up front, so only the push loop is timed.
  const double kScale = 0.25;
  const int kWidth = 160, kHeight = 120;
  std::vector<media::FrameStats> stats;
  for (const media::PaperClip pc : media::allPaperClips()) {
    const media::VideoClip clip =
        media::generatePaperClip(pc, kScale, kWidth, kHeight);
    const std::vector<media::FrameStats> clipStats = media::profileClip(clip);
    stats.insert(stats.end(), clipStats.begin(), clipStats.end());
  }
  std::printf("workload: %zu frames of per-frame statistics (%dx%d)\n",
              stats.size(), kWidth, kHeight);

  // Detached-is-free half: a null recorder through the null-safe helper
  // must cost a branch, not a clock read.  Timed directly because the
  // engine loop cannot isolate it (the branch is all that remains there).
  const std::size_t kNullOps = 50'000'000;
  telemetry::TraceRecorder* nullRecorder = nullptr;
  const Clock::time_point nullStart = Clock::now();
  for (std::size_t i = 0; i < kNullOps; ++i) {
    telemetry::traceInstant(nullRecorder, "noop", "bench",
                            {{"i", static_cast<double>(i)}});
  }
  const double nullHelperSeconds = secondsSince(nullStart);
  const double nsPerNullOp = 1e9 * nullHelperSeconds /
                             static_cast<double>(kNullOps);

  // Attached-is-cheap half: min-of-reps over interleaved passes (the
  // delta is small; alternation keeps clock drift from biasing one side).
  // Each attached rep gets a FRESH recorder -- a long-lived one would
  // fill its ring mid-sweep and measure the (cheaper) drop path instead
  // -- with its thread buffer registered by a warm-up event so the timed
  // region never pays the one-off registration mutex + allocation.
  const int kReps = 101;
  Run detached{"detached (null recorder)", 1e300, 0};
  Run attached{"attached TraceRecorder", 1e300, 0};
  std::uint64_t recordedLastRep = 0;
  std::uint64_t droppedTotal = 0;
  (void)onePass(stats, nullptr, detached.scenes);  // warm code paths
  for (int r = 0; r < kReps; ++r) {
    detached.seconds =
        std::min(detached.seconds, onePass(stats, nullptr, detached.scenes));
    telemetry::TraceRecorder trace;
    trace.instant("warmup", "bench");  // register this thread's buffer
    attached.seconds =
        std::min(attached.seconds, onePass(stats, &trace, attached.scenes));
    recordedLastRep = trace.recordedEvents();
    droppedTotal += trace.droppedEvents();
  }

  const double frames = static_cast<double>(stats.size());
  const double overhead = attached.seconds / detached.seconds - 1.0;
  const double kBudget = 0.05;
  const double kNullBudgetNs = 3.0;
  const bool withinBudget = overhead < kBudget;
  const bool nullFree = nsPerNullOp < kNullBudgetNs;

  bench::Table table({"path", "ns/frame", "frames/s", "scenes", "overhead"});
  for (const Run* r : {&detached, &attached}) {
    table.addRow({r->name, bench::fmt(1e9 * r->seconds / frames, 1),
                  bench::fmt(frames / r->seconds, 0),
                  std::to_string(r->scenes),
                  bench::pct(r->seconds / detached.seconds - 1.0, 2) + "%"});
  }
  table.print();
  table.printCsv("trace");

  std::printf("\nnull-recorder helper: %.3f ns/op (budget < %.1f ns): %s\n",
              nsPerNullOp, kNullBudgetNs, nullFree ? "ok" : "EXCEEDED");
  std::printf("attached run recorded %llu events (%llu dropped across "
              "reps)\n",
              static_cast<unsigned long long>(recordedLastRep),
              static_cast<unsigned long long>(droppedTotal));
  std::printf("attached vs detached overhead: %s%% (budget < %.0f%%): %s\n",
              bench::pct(overhead, 2).c_str(), 100.0 * kBudget,
              withinBudget ? "ok" : "EXCEEDED");

  const std::string jsonFile = bench::jsonPath("BENCH_trace.json");
  std::FILE* json = std::fopen(jsonFile.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"workload_frames\": %zu,\n"
                 "  \"detached_seconds\": %.6f,\n"
                 "  \"attached_seconds\": %.6f,\n"
                 "  \"detached_ns_per_frame\": %.1f,\n"
                 "  \"attached_ns_per_frame\": %.1f,\n"
                 "  \"overhead_fraction\": %.5f,\n"
                 "  \"budget_fraction\": %.2f,\n"
                 "  \"null_helper_ns_per_op\": %.3f,\n"
                 "  \"null_helper_budget_ns\": %.1f,\n"
                 "  \"events_recorded_last_rep\": %llu,\n"
                 "  \"within_budget\": %s\n}\n",
                 stats.size(), detached.seconds, attached.seconds,
                 1e9 * detached.seconds / frames,
                 1e9 * attached.seconds / frames, overhead, kBudget,
                 nsPerNullOp, kNullBudgetNs,
                 static_cast<unsigned long long>(recordedLastRep),
                 withinBudget && nullFree ? "true" : "false");
    std::fclose(json);
    std::printf("wrote %s\n", jsonFile.c_str());
  }

  if (attached.scenes != detached.scenes || recordedLastRep == 0 ||
      droppedTotal != 0) {
    std::fprintf(stderr,
                 "FATAL: attached run diverged, recorded nothing, or "
                 "dropped events\n");
    return EXIT_FAILURE;
  }
  return withinBudget && nullFree ? EXIT_SUCCESS : EXIT_FAILURE;
}
