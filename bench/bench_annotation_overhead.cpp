// Sec. 4.3 overhead claim: "The annotations are RLE compressed, so the
// overhead is minimal, in the order of hundreds of bytes for our video clips
// which are on the order of a few megabytes."
//
// Encodes every paper clip with the toy codec, serializes its annotation
// track, and reports both sizes and the ratio.
#include "bench_util.h"
#include "core/anno_codec.h"
#include "core/annotate.h"
#include "media/clipgen.h"
#include "media/codec.h"

using namespace anno;

int main() {
  bench::printHeader("Sec 4.3: annotation overhead vs video stream size");
  bench::Table table({"clip", "frames", "scenes", "video_KB", "anno_B",
                      "anno_raw_B", "overhead_pct"});
  double worst = 0.0;
  for (media::PaperClip clip : media::allPaperClips()) {
    // Moderate scale: sizes scale linearly, the ratio is what matters.
    const media::VideoClip video =
        media::generatePaperClip(clip, 0.15, 96, 72);
    const media::EncodedClip encoded = media::encodeClip(video, {75});
    const core::AnnotationTrack track = core::annotateClip(video);
    const core::AnnotationSizeReport anno = core::measureEncoding(track);
    const double overhead = static_cast<double>(anno.encodedBytes) /
                            static_cast<double>(encoded.totalBytes());
    worst = std::max(worst, overhead);
    table.addRow({video.name, std::to_string(video.frames.size()),
                  std::to_string(anno.sceneCount),
                  bench::fmt(encoded.totalBytes() / 1024.0, 1),
                  std::to_string(anno.encodedBytes),
                  std::to_string(anno.rawLumaBytes + anno.sceneCount),
                  bench::fmt(100.0 * overhead, 3)});
  }
  table.print();
  std::printf(
      "\nWorst-case overhead: %.3f%% of the stream.  At the paper's full\n"
      "clip durations (30 s - 3 min of MPEG at 320x240) the video grows\n"
      "~25x while the annotation grows only with scene count, landing the\n"
      "absolute overhead in the paper's 'hundreds of bytes per megabytes'.\n",
      100.0 * worst);
  table.printCsv("annotation_overhead");
  return 0;
}
