// Figure 4: "Original (full backlight) frame vs compensated (50% backlight)
// frame - camera snapshots".
//
// Reproduces the paper's example: a dark news-style frame is shown at full
// backlight, then compensated and shown at a halved backlight luminance;
// the digital camera photographs both and the histograms are compared
// (average brightness figures in the paper's caption: ~190 vs ~170).
#include "bench_util.h"
#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "media/clipgen.h"
#include "quality/validate.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Figure 4: camera validation of a compensated dark frame");
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);

  // A dark scene with sparse highlights, the paper's news-clip example.
  media::SceneSpec scene;
  scene.backgroundLuma = 60;
  scene.backgroundSpread = 28;
  scene.highlightFraction = 0.005;
  scene.highlightLuma = 248;
  const media::Image original =
      media::renderSceneFrame(scene, 128, 96, 0.0, media::SplitMix64(42));

  quality::CameraModel camera;
  bench::Table table({"quality_clip_pct", "backlight_level", "gain_k",
                      "ref_avg", "comp_avg", "avg_shift", "dyn_range_delta",
                      "emd", "verdict"});
  for (double q : {0.0, 0.05, 0.10, 0.15, 0.20}) {
    const compensate::CompensationPlan plan = compensate::planForHistogram(
        device, media::Histogram::ofImage(original), q);
    const media::Image compensated =
        compensate::contrastEnhance(original, plan.gainK);
    const quality::ValidationReport report = quality::validateCompensation(
        device, camera, original, compensated, plan.backlightLevel);
    table.addRow({bench::pct(q, 0), std::to_string(plan.backlightLevel),
                  bench::fmt(plan.gainK, 2),
                  bench::fmt(report.referenceHistogram.averagePoint(), 1),
                  bench::fmt(report.compensatedHistogram.averagePoint(), 1),
                  bench::fmt(report.comparison.averagePointShift, 1),
                  bench::fmt(report.comparison.dynamicRangeChange, 1),
                  bench::fmt(report.comparison.earthMovers, 1),
                  report.pass ? "PASS" : "DEGRADED"});
  }
  table.print();
  std::printf(
      "\nUncompensated dimming for contrast (must fail validation):\n");
  {
    const quality::ValidationReport bad = quality::validateCompensation(
        device, camera, original, original, 100);
    std::printf("  level=100, no gain: %s -> %s\n",
                quality::toString(bad.comparison).c_str(),
                bad.pass ? "PASS (unexpected)" : "DEGRADED (expected)");
  }
  table.printCsv("fig4_camera_validation");
  return 0;
}
