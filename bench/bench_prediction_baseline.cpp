// Baseline comparison (Sec. 3's argument against history-based prediction):
// annotation vs per-frame oracle vs history prediction vs QABS-like PSNR
// scaling vs full backlight, on power, quality and flicker.
#include <memory>

#include "bench_util.h"
#include "core/annotate.h"
#include "core/sketch.h"
#include "core/runtime.h"
#include "media/clipgen.h"
#include "player/baselines.h"
#include "player/playback.h"
#include "power/power.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Baselines: annotation vs oracle vs history vs QABS (quality=10%)");
  const power::MobileDevicePower devicePower = power::makeIpaq5555Power();
  const display::DeviceModel& device = devicePower.displayDevice();
  constexpr std::size_t kQ = 2;  // 10%
  constexpr double kClip = 0.10;

  bench::Table table({"clip", "policy", "bl_savings_pct", "total_savings_pct",
                      "switches", "mean_emd", "mispredicts"});
  for (media::PaperClip clipId :
       {media::PaperClip::kTheMovie, media::PaperClip::kIceAge,
        media::PaperClip::kSpiderman2}) {
    const media::VideoClip clip =
        media::generatePaperClip(clipId, 0.12, 96, 72);
    const core::AnnotationTrack track = core::annotateClip(clip);
    const core::BacklightSchedule schedule =
        core::buildSchedule(track, kQ, device);
    const media::VideoClip compensated =
        core::compensateClip(clip, track, kQ, device);

    player::PlaybackConfig cfg;
    cfg.qualityEvalStride = 6;

    const auto addRow = [&](const player::PlaybackReport& r,
                            std::size_t mispredicts) {
      table.addRow({clip.name, r.policyName, bench::pct(r.backlightSavings()),
                    bench::pct(r.totalSavings()),
                    std::to_string(r.backlightSwitches),
                    bench::fmt(r.meanEmd, 2), std::to_string(mispredicts)});
    };

    {
      player::FullBacklightPolicy p;
      addRow(player::play(clip, clip, p, devicePower, cfg), 0);
    }
    {
      player::AnnotationPolicy p(schedule);
      addRow(player::play(clip, compensated, p, devicePower, cfg), 0);
    }
    {
      player::OracleFramePolicy p(device, kClip);
      addRow(player::play(clip, clip, p, devicePower, cfg), 0);
    }
    {
      player::HistoryPolicy p(device, kClip);
      const player::PlaybackReport r =
          player::play(clip, clip, p, devicePower, cfg);
      addRow(r, p.mispredictions());
    }
    {
      player::QabsPolicy p(device, 35.0);
      addRow(player::play(clip, clip, p, devicePower, cfg), 0);
    }
    {
      player::DtmPolicy p(device, 9.0);
      addRow(player::play(clip, clip, p, devicePower, cfg), 0);
    }
    {
      const core::SketchTrack sketches =
          core::buildSketchTrack(track, media::profileClip(clip));
      player::SketchDtmPolicy p(device, track, sketches, 9.0);
      addRow(player::play(clip, clip, p, devicePower, cfg), 0);
    }
  }
  table.print();
  std::printf(
      "\nReading: the oracle is the per-frame upper bound but flickers (high\n"
      "switch count) and burns client CPU; history approaches the oracle's\n"
      "power but mispredicts at scene changes (quality violations, Sec. 3);\n"
      "the annotation scheme gets close to the oracle's savings with scene-\n"
      "rate switching, no client analysis and no mispredictions.\n");
  table.printCsv("baseline_comparison");
  return 0;
}
