// Per-frame cost of the unified core::AnnotationEngine push path vs the
// legacy inline proxy annotator it replaced (the max-luma-only
// OnlineAnnotator that lived in src/stream/proxy.cpp before the engine
// extraction -- reproduced locally below as the baseline).  The engine is
// the hot loop of every streaming proxy, so its per-push cost is the
// regression budget this bench tracks.  Prints the usual table/CSV and
// emits BENCH_online_annotate.json.
//
// The engine's max-luma runs are verified to produce the identical scene
// partition as the legacy baseline before numbers are reported; divergence
// aborts with EXIT_FAILURE.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "media/clipgen.h"
#include "media/video.h"

namespace {

using Clock = std::chrono::steady_clock;
using namespace anno;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The pre-refactor stream::OnlineAnnotator, verbatim in behaviour: causal
/// max-luma detection only (it silently ignored cfg.detector -- the bug the
/// unified engine fixed), inline credits capping and safe-luma planning.
class LegacyOnlineAnnotator {
 public:
  explicit LegacyOnlineAnnotator(core::AnnotatorConfig cfg,
                                 std::uint32_t maxLatencyFrames = 0)
      : cfg_(std::move(cfg)), maxLatencyFrames_(maxLatencyFrames) {}

  [[nodiscard]] std::optional<core::SceneAnnotation> push(
      const media::FrameStats& stats) {
    std::optional<core::SceneAnnotation> finished;
    const double current = stats.luminance.maxLuma;
    if (frame_ == 0) {
      reference_ = current;
    } else {
      const double base = std::max(reference_, 1.0);
      const bool bigChange = std::abs(current - reference_) / base >=
                             cfg_.sceneDetect.changeThreshold;
      const bool longEnough =
          frame_ - sceneStart_ >=
          static_cast<std::uint32_t>(cfg_.sceneDetect.minSceneFrames);
      const bool latencyForced =
          maxLatencyFrames_ != 0 && frame_ - sceneStart_ >= maxLatencyFrames_;
      if ((bigChange && longEnough) || latencyForced) {
        finished = finishScene(frame_);
        reference_ = current;
      } else {
        reference_ = std::max(reference_, current);
      }
    }
    if (cfg_.granularity == core::Granularity::kPerFrame && frame_ > 0) {
      if (!finished) finished = finishScene(frame_);
    }
    sceneHist_.accumulate(stats.histogram);
    ++frame_;
    return finished;
  }

  [[nodiscard]] std::optional<core::SceneAnnotation> flush() {
    if (frame_ == sceneStart_) return std::nullopt;
    return finishScene(frame_);
  }

 private:
  [[nodiscard]] core::SceneAnnotation finishScene(std::uint32_t endFrame) {
    core::SceneAnnotation sa;
    sa.span = core::SceneSpan{sceneStart_, endFrame - sceneStart_};
    if (cfg_.protectCredits && core::looksLikeCredits(sceneHist_)) {
      std::vector<double> capped = cfg_.qualityLevels;
      for (double& q : capped) q = std::min(q, cfg_.creditsClipCap);
      sa.safeLuma = core::safeLumaLevels(sceneHist_, capped);
    } else {
      sa.safeLuma = core::safeLumaLevels(sceneHist_, cfg_.qualityLevels);
    }
    sceneHist_ = media::Histogram{};
    sceneStart_ = endFrame;
    return sa;
  }

  core::AnnotatorConfig cfg_;
  std::uint32_t maxLatencyFrames_;
  std::uint32_t frame_ = 0;
  std::uint32_t sceneStart_ = 0;
  double reference_ = 0.0;
  media::Histogram sceneHist_;
};

struct Run {
  std::string name;
  double seconds = 0.0;
  std::size_t scenes = 0;
};

template <typename Annotator>
Run timeRun(std::string name, const std::vector<media::FrameStats>& stats,
            int reps, const auto& makeAnnotator) {
  Run run;
  run.name = std::move(name);
  run.seconds = 1e300;
  for (int r = 0; r < reps; ++r) {
    Annotator annotator = makeAnnotator();
    std::size_t scenes = 0;
    const Clock::time_point start = Clock::now();
    for (const media::FrameStats& fs : stats) {
      if (auto s = annotator.push(fs)) ++scenes;
    }
    if (auto s = annotator.flush()) ++scenes;
    run.seconds = std::min(run.seconds, secondsSince(start));
    run.scenes = scenes;
  }
  return run;
}

std::vector<core::SceneSpan> partition(const std::vector<media::FrameStats>& stats,
                                       auto&& annotator) {
  std::vector<core::SceneSpan> spans;
  for (const media::FrameStats& fs : stats) {
    if (auto s = annotator.push(fs)) spans.push_back(s->span);
  }
  if (auto s = annotator.flush()) spans.push_back(s->span);
  return spans;
}

}  // namespace

int main() {
  bench::printHeader(
      "Online annotation engine: per-frame push cost vs legacy proxy path");

  // Workload: the ten synthetic paper trailers profiled once up front -- the
  // bench isolates the annotator push loop, not pixel profiling.
  const double kScale = 0.25;
  const int kWidth = 160, kHeight = 120;
  std::vector<media::FrameStats> stats;
  for (const media::PaperClip pc : media::allPaperClips()) {
    const media::VideoClip clip =
        media::generatePaperClip(pc, kScale, kWidth, kHeight);
    const std::vector<media::FrameStats> clipStats = media::profileClip(clip);
    stats.insert(stats.end(), clipStats.begin(), clipStats.end());
  }
  std::printf("workload: %zu frames of per-frame statistics (%dx%d)\n",
              stats.size(), kWidth, kHeight);

  const int kReps = 11;
  core::AnnotatorConfig cfg;  // defaults: max-luma, per-scene, no credits cap

  // Correctness gate: the engine must reproduce the legacy max-luma
  // partition exactly (bounded and unbounded) before any timing counts.
  bool identical = true;
  for (const std::uint32_t latency : {0u, 8u, 64u}) {
    identical = identical &&
                partition(stats, LegacyOnlineAnnotator(cfg, latency)) ==
                    partition(stats, core::AnnotationEngine(cfg, latency));
  }

  std::vector<Run> runs;
  runs.push_back(timeRun<LegacyOnlineAnnotator>(
      "legacy proxy (max-luma)", stats, kReps,
      [&] { return LegacyOnlineAnnotator(cfg); }));
  runs.push_back(timeRun<core::AnnotationEngine>(
      "engine (max-luma)", stats, kReps,
      [&] { return core::AnnotationEngine(cfg); }));
  runs.push_back(timeRun<core::AnnotationEngine>(
      "engine (max-luma, lat=8)", stats, kReps,
      [&] { return core::AnnotationEngine(cfg, 8); }));
  core::AnnotatorConfig emdCfg = cfg;
  emdCfg.detector = core::SceneDetector::kHistogramEmd;
  runs.push_back(timeRun<core::AnnotationEngine>(
      "engine (histogram EMD)", stats, kReps,
      [&] { return core::AnnotationEngine(emdCfg); }));
  core::AnnotatorConfig frameCfg = cfg;
  frameCfg.granularity = core::Granularity::kPerFrame;
  runs.push_back(timeRun<core::AnnotationEngine>(
      "engine (per-frame)", stats, kReps,
      [&] { return core::AnnotationEngine(frameCfg); }));

  const double frames = static_cast<double>(stats.size());
  const double legacySeconds = runs.front().seconds;
  bench::Table table(
      {"path", "ns/frame", "frames/s", "scenes", "vs legacy"});
  for (const Run& r : runs) {
    table.addRow({r.name, bench::fmt(1e9 * r.seconds / frames, 1),
                  bench::fmt(frames / r.seconds, 0), std::to_string(r.scenes),
                  bench::fmt(r.seconds / legacySeconds, 2) + "x"});
  }
  table.print();
  table.printCsv("online_annotate");
  std::printf("\nmax-luma partitions bit-identical to legacy: %s\n",
              identical ? "yes" : "NO");

  const std::string jsonFile = bench::jsonPath("BENCH_online_annotate.json");
  std::FILE* json = std::fopen(jsonFile.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"workload_frames\": %zu,\n  \"runs\": [\n",
                 stats.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const Run& r = runs[i];
      std::fprintf(json,
                   "    {\"path\": \"%s\", \"seconds\": %.6f, "
                   "\"ns_per_frame\": %.1f, \"frames_per_sec\": %.0f, "
                   "\"scenes\": %zu, \"relative_to_legacy\": %.3f}%s\n",
                   r.name.c_str(), r.seconds, 1e9 * r.seconds / frames,
                   frames / r.seconds, r.scenes, r.seconds / legacySeconds,
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"partitions_identical\": %s\n}\n",
                 identical ? "true" : "false");
    std::fclose(json);
    std::printf("wrote %s\n", jsonFile.c_str());
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: engine diverged from the legacy online partition\n");
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
