// Annotation-driven radio scheduling (the paper's Sec. 3 "network packet
// optimizations" example): with per-frame sizes annotated in the stream,
// the client radio wakes exactly when bursts arrive, instead of idle-
// listening (always-on) or blind periodic wakeups (802.11 PSM).
#include "bench_util.h"
#include "media/clipgen.h"
#include "media/codec.h"
#include "stream/traffic.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Sec. 3 application: annotation-driven WLAN scheduling (802.11b)");
  const power::NicModel nic;
  const stream::Link wifi = stream::makeReferencePath().lastHop();

  bench::Table table({"clip", "policy", "nic_energy_J", "awake_pct",
                      "wakeups", "savings_vs_always_on_pct"});
  for (media::PaperClip clipId :
       {media::PaperClip::kTheMovie, media::PaperClip::kIceAge}) {
    const media::VideoClip clip =
        media::generatePaperClip(clipId, 0.15, 96, 72);
    const media::EncodedClip enc = media::encodeClip(clip, {75, 12, 1.5});
    std::vector<std::size_t> wireBytes;
    wireBytes.reserve(enc.frames.size());
    for (const media::EncodedFrame& f : enc.frames) {
      const stream::TransferStats t =
          stream::transferOverLink(wifi, f.sizeBytes());
      wireBytes.push_back(t.wireBytes);
    }

    const stream::NicScheduleResult on =
        stream::nicAlwaysOn(nic, wireBytes, wifi, clip.fps);
    const stream::NicScheduleResult psm =
        stream::nicPsm(nic, wireBytes, wifi, clip.fps);
    const stream::NicScheduleResult ann =
        stream::nicAnnotated(nic, wireBytes, wifi, clip.fps);

    const auto addRow = [&](const char* name,
                            const stream::NicScheduleResult& r) {
      table.addRow({clip.name, name, bench::fmt(r.energyJoules, 3),
                    bench::pct(r.awakeFraction),
                    std::to_string(r.wakeups), bench::pct(r.savingsVs(on))});
    };
    addRow("always-on", on);
    addRow("psm-100ms", psm);
    addRow("annotated", ann);
  }
  table.print();
  std::printf(
      "\nReading: PSM already sleeps most of the time but pays a blind\n"
      "listen window every beacon; the annotated schedule wakes only for\n"
      "real bursts and knows their exact length, cutting radio energy by\n"
      "a further margin.  Darker clips -> smaller P frames -> less airtime\n"
      "-> deeper radio sleep (content-dependence, like the backlight).\n");
  table.printCsv("nic_scheduling");
  return 0;
}
