// Client runtime overhead microbenchmarks (google-benchmark).
//
// The paper's claim: with annotations, the client's extra work is a
// per-scene table lookup plus an occasional backlight write -- negligible
// next to decoding.  Without annotations the client must analyze and
// compensate every frame itself.  These benchmarks quantify the gap.
#include <benchmark/benchmark.h>

#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "core/annotate.h"
#include "core/runtime.h"
#include "media/clipgen.h"
#include "media/codec.h"

using namespace anno;

namespace {

const media::VideoClip& clip() {
  static const media::VideoClip c =
      media::generatePaperClip(media::PaperClip::kSpiderman2, 0.05, 96, 72);
  return c;
}

const core::AnnotationTrack& track() {
  static const core::AnnotationTrack t = core::annotateClip(clip());
  return t;
}

const display::DeviceModel& device() {
  static const display::DeviceModel d =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  return d;
}

// --- What the ANNOTATION client does -------------------------------------

void BM_Client_ScheduleLookup(benchmark::State& state) {
  const core::BacklightSchedule schedule =
      core::buildSchedule(track(), 2, device());
  std::uint32_t frame = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.levelAt(frame));
    frame = (frame + 1) % schedule.frameCount;
  }
}
BENCHMARK(BM_Client_ScheduleLookup);

void BM_Client_BuildSchedule(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::buildSchedule(track(), 2, device()));
  }
}
BENCHMARK(BM_Client_BuildSchedule);

// --- What a client WITHOUT annotations must do per frame -----------------

void BM_NoAnnotations_FrameAnalysis(benchmark::State& state) {
  const media::Image& frame = clip().frames.front();
  for (auto _ : state) {
    const media::FrameStats stats = media::profileFrame(frame);
    benchmark::DoNotOptimize(
        compensate::planForHistogram(device(), stats.histogram, 0.10));
  }
}
BENCHMARK(BM_NoAnnotations_FrameAnalysis);

void BM_NoAnnotations_FrameCompensation(benchmark::State& state) {
  const media::Image& frame = clip().frames.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(compensate::contrastEnhance(frame, 1.6));
  }
}
BENCHMARK(BM_NoAnnotations_FrameCompensation);

// --- Context: the decode work both clients share --------------------------

void BM_Decode_Frame(benchmark::State& state) {
  const media::EncodedFrame encoded = media::encodeFrame(clip().frames.front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        media::decodeFrame(encoded, clip().width(), clip().height()));
  }
}
BENCHMARK(BM_Decode_Frame);

// --- Server-side costs (run once per clip, amortized) ---------------------

void BM_Server_AnnotateClip(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::annotateClip(clip()));
  }
}
BENCHMARK(BM_Server_AnnotateClip);

}  // namespace

BENCHMARK_MAIN();
