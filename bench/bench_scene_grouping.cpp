// Figure 6: "Scene grouping during playback".
//
// For a short clip at the 10% quality level, prints the per-frame series the
// figure plots: original per-frame max luminance, the annotated scene max
// luminance (step function), and the instantaneous backlight power saved.
#include "bench_util.h"
#include "core/annotate.h"
#include "core/runtime.h"
#include "media/clipgen.h"
#include "player/baselines.h"
#include "player/playback.h"
#include "power/power.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Figure 6: Scene grouping during playback (spiderman2, quality=10%)");
  const power::MobileDevicePower devicePower = power::makeIpaq5555Power();
  const display::DeviceModel& device = devicePower.displayDevice();

  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kSpiderman2, 0.12, 96, 72);
  const core::AnnotationTrack track = core::annotateClip(clip);
  constexpr std::size_t kQuality10 = 2;
  const core::BacklightSchedule schedule =
      core::buildSchedule(track, kQuality10, device);
  const media::VideoClip compensated =
      core::compensateClip(clip, track, kQuality10, device);

  player::AnnotationPolicy policy(schedule);
  player::PlaybackConfig cfg;
  cfg.qualityEvalStride = 1 << 20;
  const player::PlaybackReport report =
      player::play(clip, compensated, policy, devicePower, cfg);

  const double fullBacklightW = devicePower.backlightWatts(255);
  bench::Table table({"time_s", "frame_max_luma", "scene_max_luma",
                      "backlight_level", "power_saved_pct"});
  // Scene max luma at the chosen quality, expanded per frame.
  std::vector<std::uint8_t> sceneLuma(clip.frames.size());
  for (const core::SceneAnnotation& s : track.scenes) {
    for (std::uint32_t f = s.span.firstFrame; f <= s.span.lastFrame(); ++f) {
      sceneLuma[f] = s.safeLuma[kQuality10];
    }
  }
  for (std::size_t f = 0; f < clip.frames.size(); ++f) {
    const double saved =
        1.0 - report.frameBacklightPowerW[f] / fullBacklightW;
    table.addRow({bench::fmt(static_cast<double>(f) / clip.fps, 2),
                  std::to_string(report.frameMaxLuma[f]),
                  std::to_string(sceneLuma[f]),
                  std::to_string(report.frameBacklightLevel[f]),
                  bench::pct(saved)});
  }
  table.print();
  std::printf(
      "\nScenes detected: %zu over %zu frames; backlight switches: %zu\n"
      "(the paper's thresholds -- 10%% max-luminance change, minimum scene\n"
      "interval -- were chosen to minimize visible spikes).\n",
      track.scenes.size(), clip.frames.size(), report.backlightSwitches);
  table.printCsv("fig6_scene_grouping");
  return 0;
}
