// Figure 3: "Image histogram properties" -- the average point and dynamic
// range of representative frames, plus how compensation + backlight dimming
// transform the histogram (shift of the average, change of the range).
#include "bench_util.h"
#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "display/panel.h"
#include "media/clipgen.h"
#include "media/histogram.h"

using namespace anno;

namespace {

media::Image sceneFrame(std::uint8_t bg, std::uint8_t spread, double hlFrac,
                        std::uint64_t seed) {
  media::SceneSpec scene;
  scene.backgroundLuma = bg;
  scene.backgroundSpread = spread;
  scene.highlightFraction = hlFrac;
  scene.highlightLuma = 250;
  return media::renderSceneFrame(scene, 128, 96, 0.0, media::SplitMix64(seed));
}

}  // namespace

int main() {
  bench::printHeader("Figure 3: image histogram properties");
  struct Case {
    const char* name;
    media::Image frame;
  };
  const std::vector<Case> cases = {
      {"dark_scene", sceneFrame(50, 20, 0.0, 1)},
      {"dark_with_highlights", sceneFrame(55, 25, 0.006, 2)},
      {"medium_scene", sceneFrame(120, 45, 0.002, 3)},
      {"bright_scene", sceneFrame(200, 35, 0.08, 4)},
  };

  bench::Table table({"frame", "avg_point", "dyn_range", "low", "high",
                      "frac_above_200"});
  for (const Case& c : cases) {
    const media::Histogram h = media::Histogram::ofImage(c.frame);
    table.addRow({c.name, bench::fmt(h.averagePoint(), 1),
                  std::to_string(h.dynamicRange()),
                  std::to_string(h.lowPoint()),
                  std::to_string(h.highPoint()),
                  bench::fmt(h.fractionAbove(200), 4)});
  }
  table.print();

  std::printf("\nEffect of compensation (dark_with_highlights, 10%% clip):\n");
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  const media::Image& frame = cases[1].frame;
  const media::Histogram before = media::Histogram::ofImage(frame);
  const compensate::CompensationPlan plan =
      compensate::planForHistogram(device, before, 0.10);
  const media::Image comp = compensate::contrastEnhance(frame, plan.gainK);
  const media::Histogram after = media::Histogram::ofImage(comp);
  std::printf(
      "  gain k=%.2f backlight=%d: avg %.1f -> %.1f, range %d -> %d\n",
      plan.gainK, plan.backlightLevel, before.averagePoint(),
      after.averagePoint(), before.dynamicRange(), after.dynamicRange());
  std::printf("\nPixel-value histogram (before | after compensation):\n%s\n%s",
              before.asciiPlot(8, 60).c_str(), after.asciiPlot(8, 60).c_str());
  table.printCsv("fig3_histogram_properties");

  const std::string jsonFile = bench::jsonPath("BENCH_histogram.json");
  if (std::FILE* json = std::fopen(jsonFile.c_str(), "w")) {
    std::fprintf(json, "{\n  \"frames\": [\n");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const media::Histogram h = media::Histogram::ofImage(cases[i].frame);
      std::fprintf(json,
                   "    {\"frame\": \"%s\", \"avg_point\": %.3f, "
                   "\"dyn_range\": %d, \"low\": %d, \"high\": %d, "
                   "\"frac_above_200\": %.6f}%s\n",
                   cases[i].name, h.averagePoint(), h.dynamicRange(),
                   h.lowPoint(), h.highPoint(), h.fractionAbove(200),
                   i + 1 < cases.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"compensation\": {\"gain_k\": %.4f, "
                 "\"backlight_level\": %d, \"avg_before\": %.3f, "
                 "\"avg_after\": %.3f, \"range_before\": %d, "
                 "\"range_after\": %d}\n}\n",
                 plan.gainK, plan.backlightLevel, before.averagePoint(),
                 after.averagePoint(), before.dynamicRange(),
                 after.dynamicRange());
    std::fclose(json);
    std::printf("wrote %s\n", jsonFile.c_str());
  }
  return 0;
}
