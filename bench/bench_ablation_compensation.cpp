// Ablation: contrast enhancement vs brightness compensation (Sec. 4.1
// offers both; the paper picks contrast enhancement with k = L/L').
//
// For matched backlight levels, compares the camera-validated quality of
// the two compensation schemes on dark and medium frames.
#include "bench_util.h"
#include "compensate/compensate.h"
#include "compensate/planner.h"
#include "media/clipgen.h"
#include "quality/validate.h"

using namespace anno;

namespace {

media::Image sceneFrame(std::uint8_t bg, std::uint8_t spread, double hlFrac,
                        std::uint64_t seed) {
  media::SceneSpec scene;
  scene.backgroundLuma = bg;
  scene.backgroundSpread = spread;
  scene.highlightFraction = hlFrac;
  scene.highlightLuma = 246;
  return media::renderSceneFrame(scene, 128, 96, 0.0, media::SplitMix64(seed));
}

}  // namespace

int main() {
  bench::printHeader(
      "Ablation: contrast enhancement vs brightness compensation");
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);
  quality::CameraModel camera;

  struct Case {
    const char* name;
    media::Image frame;
  };
  const std::vector<Case> cases = {
      {"dark", sceneFrame(55, 25, 0.004, 10)},
      {"medium", sceneFrame(115, 45, 0.002, 11)},
  };

  bench::Table table({"frame", "scheme", "backlight", "avg_shift", "emd",
                      "dyn_range_delta", "verdict"});
  for (const Case& c : cases) {
    const compensate::CompensationPlan plan = compensate::planForHistogram(
        device, media::Histogram::ofImage(c.frame), 0.10);

    // Contrast enhancement: C' = C*k with k = 1/T(b) (paper's choice).
    {
      const media::Image comp =
          compensate::contrastEnhance(c.frame, plan.gainK);
      const quality::ValidationReport r = quality::validateCompensation(
          device, camera, c.frame, comp, plan.backlightLevel);
      table.addRow({c.name, "contrast(k)", std::to_string(plan.backlightLevel),
                    bench::fmt(r.comparison.averagePointShift, 1),
                    bench::fmt(r.comparison.earthMovers, 1),
                    bench::fmt(r.comparison.dynamicRangeChange, 1),
                    r.pass ? "PASS" : "DEGRADED"});
    }
    // Brightness compensation: C' = C + delta, delta chosen so the frame's
    // MEAN perceived intensity is restored (a constant offset cannot match
    // the multiplicative display model everywhere).
    {
      const double meanLuma =
          media::Histogram::ofImage(c.frame).averagePoint();
      const double delta = meanLuma * (plan.gainK - 1.0);
      const media::Image comp = compensate::brightnessCompensate(c.frame, delta);
      const quality::ValidationReport r = quality::validateCompensation(
          device, camera, c.frame, comp, plan.backlightLevel);
      table.addRow({c.name, "brightness(+d)",
                    std::to_string(plan.backlightLevel),
                    bench::fmt(r.comparison.averagePointShift, 1),
                    bench::fmt(r.comparison.earthMovers, 1),
                    bench::fmt(r.comparison.dynamicRangeChange, 1),
                    r.pass ? "PASS" : "DEGRADED"});
    }
  }
  table.print();
  std::printf(
      "\nReading: perceived intensity is multiplicative in the backlight\n"
      "(I = rho*L*Y), so only a multiplicative gain restores it uniformly;\n"
      "an additive offset over-brightens shadows and compresses the dynamic\n"
      "range -- why the paper selects contrast enhancement with k = L/L'.\n");
  table.printCsv("ablation_compensation");
  return 0;
}
