// Figures 7 & 8: display characterization.
//
// Fig. 7: measured brightness vs backlight level (white patch) -- distinctly
//         NON-linear, different per device technology.
// Fig. 8: measured brightness vs displayed white value at backlight 255 and
//         128 -- almost linear in the image value.
// The sweep runs through the camera meter (the paper's methodology) and
// reports the transfer-function fit error against the true device model.
#include "bench_util.h"
#include "display/characterize.h"
#include "quality/camera.h"

using namespace anno;

int main() {
  bench::printHeader("Figures 7 & 8: display/backlight characterization");
  quality::CameraConfig camCfg;
  camCfg.noiseRms = 0.5;

  for (display::KnownDevice id : display::allKnownDevices()) {
    const display::DeviceModel device = display::makeDevice(id);
    quality::CameraMeter meter(camCfg);
    const display::CharacterizationResult result =
        display::characterizeDevice(device, meter, 18);

    std::printf("\nDevice: %s (%s panel, %s backlight)\n", device.name.c_str(),
                toString(device.panel.type).c_str(),
                toString(device.backlight.type).c_str());

    bench::Table fig7({"backlight_level", "measured_brightness",
                       "linear_reference"});
    const double top = result.backlightSweep.back().brightness;
    for (const display::SweepPoint& p : result.backlightSweep) {
      fig7.addRow({std::to_string(p.x), bench::fmt(p.brightness / top, 3),
                   bench::fmt(p.x / 255.0, 3)});
    }
    std::printf("Fig. 7 sweep (white=255):\n");
    fig7.print();

    bench::Table fig8({"white_value", "brightness_bl255", "brightness_bl128"});
    for (std::size_t i = 0; i < result.whiteSweepFull.size(); ++i) {
      fig8.addRow({std::to_string(result.whiteSweepFull[i].x),
                   bench::fmt(result.whiteSweepFull[i].brightness / top, 3),
                   bench::fmt(result.whiteSweepHalf[i].brightness / top, 3)});
    }
    std::printf("Fig. 8 sweep:\n");
    fig8.print();

    std::printf("Transfer fit error (camera meter vs true curve): %.3f\n",
                result.maxAbsFitError);
    fig7.printCsv("fig7_" + device.name);
    fig8.printCsv("fig8_" + device.name);
  }
  std::printf(
      "\nPaper reference: luminance is almost linear in the image value but\n"
      "NOT in the backlight level, and each display technology has its own\n"
      "transfer characteristic -- hence per-device tables in the loop.\n");
  return 0;
}
