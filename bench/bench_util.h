// Shared helpers for the figure-regeneration benches: fixed-width table
// printing and the standard experiment configuration.
//
// Every bench prints (a) a header naming the paper figure it regenerates,
// (b) the rows/series of that figure, and (c) a CSV block that can be piped
// into any plotting tool.  Bench parameters (clip scale, resolution) are
// smaller than the paper's 320x240 / 30s-3min clips so the whole suite runs
// in seconds; savings percentages are resolution-independent.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace anno::bench {

/// Standard knobs used by the playback benches.
struct BenchParams {
  double clipScale = 0.20;  ///< fraction of the paper clip duration
  int width = 96;
  int height = 72;
};

inline void printHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void printRule(int width = 62) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Simple aligned table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void addRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> w(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < w.size(); ++c) {
        w[c] = std::max(w[c], row[c].size());
      }
    }
    const auto printRow = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(w[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    printRow(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + 2;
    printRule(static_cast<int>(total));
    for (const auto& row : rows_) printRow(row);
  }

  /// CSV block (machine-readable companion to the pretty table).
  void printCsv(const std::string& tag) const {
    std::printf("\n[csv:%s]\n", tag.c_str());
    const auto printRow = [](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%s%s", c ? "," : "", row[c].c_str());
      }
      std::printf("\n");
    };
    printRow(header_);
    for (const auto& row : rows_) printRow(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

inline std::string pct(double fraction, int decimals = 1) {
  return fmt(100.0 * fraction, decimals);
}

/// Where a bench's BENCH_*.json artifact lands: $ANNO_BENCH_JSON_DIR if
/// set, else the repo root baked in at configure time
/// (ANNO_BENCH_JSON_DEFAULT_DIR), else the working directory.  One
/// location regardless of where the binary is invoked from, so the perf
/// trajectory files can be tracked in-tree.
inline std::string jsonPath(const std::string& filename) {
  const char* dir = std::getenv("ANNO_BENCH_JSON_DIR");
#ifdef ANNO_BENCH_JSON_DEFAULT_DIR
  if (dir == nullptr || *dir == '\0') dir = ANNO_BENCH_JSON_DEFAULT_DIR;
#endif
  if (dir == nullptr || *dir == '\0') return filename;
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  return path + filename;
}

}  // namespace anno::bench
