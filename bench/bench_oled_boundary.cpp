// Applicability boundary: what happens to the paper's technique on an
// emissive (OLED) panel, where power follows CONTENT, not a backlight.
//
//   - Backlight scaling: inapplicable (no lamp to dim).
//   - The paper's server-side COMPENSATION actively raises OLED power --
//     compensated streams must never reach emissive clients, which is the
//     strongest argument for the capability negotiation being mandatory.
//   - The OLED dual is content dimming, traded against visible brightness.
#include "bench_util.h"
#include "core/annotate.h"
#include "display/device.h"
#include "display/emissive.h"
#include "core/sketch.h"
#include "media/clipgen.h"
#include "player/oled.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Applicability boundary: emissive (OLED) panels vs backlit LCD");
  const display::EmissiveDisplay oled = display::makeGenericOled();
  const display::DeviceModel lcd =
      display::makeDevice(display::KnownDevice::kIpaq5555);

  bench::Table table({"clip", "oled_original_W", "oled_compensated_W",
                      "penalty_pct", "oled_annotated_W",
                      "annotated_savings_pct", "mean_luma_drop"});
  for (media::PaperClip clipId :
       {media::PaperClip::kTheMovie, media::PaperClip::kIceAge,
        media::PaperClip::kOfficeXp}) {
    const media::VideoClip clip =
        media::generatePaperClip(clipId, 0.08, 96, 72);
    const core::AnnotationTrack track = core::annotateClip(clip);
    const media::VideoClip compensated =
        core::compensateClip(clip, track, 2, lcd);
    // Annotation-driven OLED adaptation: per-scene dim factors from the
    // histogram-sketch annotations, bounded mean-luminance drop.
    const core::SketchTrack sketches =
        core::buildSketchTrack(track, media::profileClip(clip));
    const auto plan = player::planOledDimming(track, sketches);
    const player::OledPlaybackReport r =
        player::playEmissive(clip, track, plan, oled);
    const double orig = oled.averagePowerWatts(clip);
    const double comp = oled.averagePowerWatts(compensated);
    const double annotated =
        r.panelEnergyJ / clip.durationSeconds();
    table.addRow({clip.name, bench::fmt(orig, 3), bench::fmt(comp, 3),
                  bench::pct(comp / orig - 1.0), bench::fmt(annotated, 3),
                  bench::pct(r.panelSavings()),
                  bench::fmt(r.meanLumaDrop, 1)});
  }
  table.print();
  std::printf(
      "\nReading: the LCD-compensated stream costs an OLED up to ~4x MORE\n"
      "power on dark clips (exactly the clips the paper helps most on LCD:\n"
      "their large gains come from large gains k, which drive emissive\n"
      "pixels hardest).  The negotiation phase is what routes each display\n"
      "technology its own adaptation: backlight scaling for LCD, and --\n"
      "from the SAME annotations (sketches) -- bounded content dimming for\n"
      "OLED, with the client again doing one multiply per scene.\n");
  table.printCsv("oled_boundary");
  return 0;
}
