// Battery-life projection: the user-facing bottom line ("battery life still
// remains a major limitation", paper Sec. 1).  Converts the Fig. 10 average
// power into hours of playback on the iPAQ 5555's 1250 mAh pack, with the
// rate-capacity effect making the savings slightly superlinear.
#include "bench_util.h"
#include "media/clipgen.h"
#include "player/experiment.h"
#include "power/battery.h"
#include "power/power.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Battery life: hours of playback on the iPAQ 5555 pack (1250 mAh)");
  const power::MobileDevicePower devicePower = power::makeIpaq5555Power();
  const power::BatteryModel pack = power::BatteryModel::ipaq5555();

  player::PlaybackConfig cfg;
  cfg.qualityEvalStride = 1 << 20;

  bench::Table table({"clip", "baseline_h", "q=5%_h", "q=20%_h",
                      "extension_q5_pct", "extension_q20_pct"});
  for (media::PaperClip clipId :
       {media::PaperClip::kTheMovie, media::PaperClip::kCatwoman,
        media::PaperClip::kIceAge, media::PaperClip::kShrek2}) {
    const media::VideoClip clip =
        media::generatePaperClip(clipId, 0.12, 96, 72);
    const player::ClipExperimentResult result =
        player::runAnnotationExperiment(clip, devicePower, {}, cfg);

    const auto avgWatts = [&](const player::PlaybackReport& r) {
      return r.totalEnergyJ / r.durationSeconds;
    };
    const double baseW =
        result.reports[0].totalEnergyFullJ / result.reports[0].durationSeconds;
    const double q5W = avgWatts(result.reports[1]);
    const double q20W = avgWatts(result.reports[4]);

    table.addRow({clip.name, bench::fmt(pack.runtimeHours(baseW), 2),
                  bench::fmt(pack.runtimeHours(q5W), 2),
                  bench::fmt(pack.runtimeHours(q20W), 2),
                  bench::pct(pack.extensionFactor(baseW, q5W) - 1.0),
                  bench::pct(pack.extensionFactor(baseW, q20W) - 1.0)});
  }
  table.print();
  std::printf(
      "\nReading: the 15-20%% device-power savings of Fig. 10 translate to\n"
      "~20-27%% longer playback per charge (Peukert effect adds a little on\n"
      "top of the linear gain); bright content (ice_age) gains almost\n"
      "nothing, exactly as its power savings predicted.\n");
  table.printCsv("battery_life");
  return 0;
}
