// Telemetry overhead on the engine hot path: the per-frame push cost of
// core::AnnotationEngine with a null observer (the shipping default) vs
// the same loop with an EngineTelemetry observer recording into a live
// telemetry::Registry.  The subsystem's contract is "zero-cost when
// unattached, cheap when attached": this bench quantifies both halves on
// the bench_online_annotate workload and enforces the attached budget --
// instrumented must stay within 2% of the null-observer baseline
// (EXIT_FAILURE otherwise, so CI catches a fattened hot path).
//
// Prints the usual table/CSV and emits BENCH_telemetry.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "core/engine_metrics.h"
#include "media/clipgen.h"
#include "media/video.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace {

using Clock = std::chrono::steady_clock;
using namespace anno;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Run {
  std::string name;
  double seconds = 0.0;   // min over reps
  std::size_t scenes = 0;
};

/// One timed pass of the pure engine push loop (profiling excluded --
/// stats are precomputed) with the given observer attached.
double onePass(const std::vector<media::FrameStats>& stats,
               core::EngineObserver* observer, std::size_t& scenesOut) {
  core::AnnotatorConfig cfg;
  cfg.observer = observer;
  core::AnnotationEngine engine(cfg);
  std::size_t scenes = 0;
  const Clock::time_point start = Clock::now();
  for (const media::FrameStats& fs : stats) {
    if (auto s = engine.push(fs)) ++scenes;
  }
  if (auto s = engine.flush()) ++scenes;
  const double seconds = secondsSince(start);
  scenesOut = scenes;
  return seconds;
}

}  // namespace

int main() {
  bench::printHeader(
      "Telemetry overhead: engine push loop, null vs attached observer");

  // Same workload as bench_online_annotate: the ten synthetic paper
  // trailers profiled once up front, so only the push loop is timed.
  const double kScale = 0.25;
  const int kWidth = 160, kHeight = 120;
  std::vector<media::FrameStats> stats;
  for (const media::PaperClip pc : media::allPaperClips()) {
    const media::VideoClip clip =
        media::generatePaperClip(pc, kScale, kWidth, kHeight);
    const std::vector<media::FrameStats> clipStats = media::profileClip(clip);
    stats.insert(stats.end(), clipStats.begin(), clipStats.end());
  }
  std::printf("workload: %zu frames of per-frame statistics (%dx%d)\n",
              stats.size(), kWidth, kHeight);

  // More reps than the online bench, and the two paths run in alternation:
  // the delta under measurement is small, so min-of-reps needs more draws
  // to shake scheduler noise out, and interleaving keeps slow clock /
  // frequency drift from biasing one side.
  const int kReps = 101;
  telemetry::Registry registry;
  core::EngineTelemetry observer(registry);

  Run nullRun{"null observer (default)", 1e300, 0};
  Run instrumented{"EngineTelemetry attached", 1e300, 0};
  // Warm both paths once (page in code + registry) before timing.
  (void)onePass(stats, nullptr, nullRun.scenes);
  (void)onePass(stats, &observer, instrumented.scenes);
  for (int r = 0; r < kReps; ++r) {
    nullRun.seconds =
        std::min(nullRun.seconds, onePass(stats, nullptr, nullRun.scenes));
    instrumented.seconds = std::min(
        instrumented.seconds, onePass(stats, &observer, instrumented.scenes));
  }

  const double frames = static_cast<double>(stats.size());
  const double overhead = instrumented.seconds / nullRun.seconds - 1.0;
  const bool withinBudget = overhead < 0.02;

  bench::Table table({"path", "ns/frame", "frames/s", "scenes", "overhead"});
  for (const Run* r : {&nullRun, &instrumented}) {
    table.addRow({r->name, bench::fmt(1e9 * r->seconds / frames, 1),
                  bench::fmt(frames / r->seconds, 0),
                  std::to_string(r->scenes),
                  bench::pct(r->seconds / nullRun.seconds - 1.0, 2) + "%"});
  }
  table.print();
  table.printCsv("telemetry");

  // Sanity: the attached run must actually have recorded the workload.
  const telemetry::Snapshot snap = telemetry::scrape(registry);
  const std::uint64_t framesSeen =
      snap.counterValue("anno_engine_frames_total");
  std::printf("\nattached runs recorded %llu frames into the registry\n",
              static_cast<unsigned long long>(framesSeen));
  std::printf("instrumented vs null overhead: %s%% (budget < 2%%): %s\n",
              bench::pct(overhead, 2).c_str(),
              withinBudget ? "ok" : "EXCEEDED");

  const std::string jsonFile = bench::jsonPath("BENCH_telemetry.json");
  std::FILE* json = std::fopen(jsonFile.c_str(), "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"workload_frames\": %zu,\n"
                 "  \"null_seconds\": %.6f,\n"
                 "  \"instrumented_seconds\": %.6f,\n"
                 "  \"null_ns_per_frame\": %.1f,\n"
                 "  \"instrumented_ns_per_frame\": %.1f,\n"
                 "  \"overhead_fraction\": %.5f,\n"
                 "  \"budget_fraction\": 0.02,\n"
                 "  \"within_budget\": %s\n}\n",
                 stats.size(), nullRun.seconds, instrumented.seconds,
                 1e9 * nullRun.seconds / frames,
                 1e9 * instrumented.seconds / frames, overhead,
                 withinBudget ? "true" : "false");
    std::fclose(json);
    std::printf("wrote %s\n", jsonFile.c_str());
  }

  if (instrumented.scenes != nullRun.scenes || framesSeen == 0) {
    std::fprintf(stderr, "FATAL: instrumented run diverged or recorded "
                         "nothing\n");
    return EXIT_FAILURE;
  }
  return withinBudget ? EXIT_SUCCESS : EXIT_FAILURE;
}
