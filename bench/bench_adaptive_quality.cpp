// Battery-aware adaptive quality (paper Sec. 4.2's QoS-energy trade-off,
// closed-loop): given a state of charge and a required playback time, the
// controller slides each scene along the annotation track's quality axis
// only as far as the battery demands.
#include "bench_util.h"
#include "core/annotate.h"
#include "media/clipgen.h"
#include "player/adaptive.h"
#include "power/battery.h"
#include "power/power.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Adaptive QoS-energy control: quality vs battery and target runtime");
  const power::MobileDevicePower devicePower = power::makeIpaq5555Power();
  const power::BatteryModel battery = power::BatteryModel::ipaq5555();
  const core::AnnotationTrack track = core::annotateClip(
      media::generatePaperClip(media::PaperClip::kSpiderman2, 0.10, 96, 72));

  bench::Table table({"charge_pct", "target_h", "feasible", "worst_quality",
                      "mean_quality", "projected_W"});
  for (double charge : {1.0, 0.6, 0.3}) {
    for (double hours : {0.5, 1.0, 1.5, 2.0, 3.0}) {
      player::AdaptiveConfig cfg;
      cfg.batteryChargeFraction = charge;
      cfg.targetSeconds = hours * 3600.0;
      const player::AdaptivePlan plan =
          planAdaptivePlayback(track, devicePower, battery, cfg);
      double meanQ = 0.0;
      for (const player::AdaptiveDecision& d : plan.decisions) {
        meanQ += track.qualityLevels[d.qualityIndex];
      }
      meanQ /= static_cast<double>(plan.decisions.size());
      table.addRow(
          {bench::pct(charge, 0), bench::fmt(hours, 1),
           plan.feasible ? "yes" : "NO",
           bench::pct(track.qualityLevels[plan.worstQualityUsed], 0),
           bench::pct(meanQ, 1),
           bench::fmt(plan.projectedEnergyJoules / cfg.targetSeconds, 2)});
    }
  }
  table.print();
  std::printf(
      "\nReading: with headroom the controller stays lossless (0%% clip);\n"
      "as the target stretches past what the charge can carry it degrades\n"
      "the most expensive (brightest) scenes first, and reports NO when\n"
      "even 20%% clipping everywhere cannot make the movie fit the battery\n"
      "-- the user decides, exactly the paper's power-quality contract.\n");
  table.printCsv("adaptive_quality");
  return 0;
}
