// Ablation: scene-detection thresholds.
//
// The paper fixes a 10% max-luminance change threshold and a minimum scene
// interval, "experimentally set for minimizing visible spikes".  This sweep
// shows the trade-off those knobs navigate: finer thresholds buy a little
// more power at the cost of many more backlight switches (flicker).
#include "bench_util.h"
#include "core/anno_codec.h"
#include "core/annotate.h"
#include "core/runtime.h"
#include "media/clipgen.h"
#include "player/baselines.h"
#include "player/playback.h"
#include "power/power.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Ablation: scene-change threshold & minimum scene interval");
  const power::MobileDevicePower devicePower = power::makeIpaq5555Power();
  const display::DeviceModel& device = devicePower.displayDevice();
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kSpiderman2, 0.15, 96, 72);

  bench::Table table({"change_thresh", "min_frames", "scenes", "switches",
                      "bl_savings_pct", "anno_bytes"});
  player::PlaybackConfig cfg;
  cfg.qualityEvalStride = 1 << 20;
  for (double thresh : {0.02, 0.05, 0.10, 0.20, 0.40}) {
    for (int minFrames : {1, 6, 24}) {
      core::AnnotatorConfig acfg;
      acfg.sceneDetect.changeThreshold = thresh;
      acfg.sceneDetect.minSceneFrames = minFrames;
      const core::AnnotationTrack track = core::annotateClip(clip, acfg);
      const core::BacklightSchedule schedule =
          core::buildSchedule(track, 2, device);
      const media::VideoClip compensated =
          core::compensateClip(clip, track, 2, device);
      player::AnnotationPolicy policy(schedule);
      const player::PlaybackReport r =
          player::play(clip, compensated, policy, devicePower, cfg);
      table.addRow({bench::fmt(thresh, 2), std::to_string(minFrames),
                    std::to_string(track.scenes.size()),
                    std::to_string(r.backlightSwitches),
                    bench::pct(r.backlightSavings()),
                    std::to_string(core::measureEncoding(track).encodedBytes)});
    }
  }
  table.print();
  std::printf(
      "\nReading: below the paper's 10%%/0.5s point the switch count climbs\n"
      "(flicker) for marginal extra savings; above it, savings start to\n"
      "erode because dissimilar scenes share one conservative level.\n");
  table.printCsv("ablation_scene_threshold");
  return 0;
}
