// Fleet-soak throughput bench: how fast the soak driver replays a diurnal
// traffic mix against the real serving stack, and what the run costs.
//
// The numbers that matter for sizing the CI soak job and the full-scale
// harness: sessions per wall-second through the scheduler, ticks per
// second, engine wall-seconds per served-hour, and the watts-saved roll-up
// they pay for.  Self-checks the same invariants the fleet_soak tool gates
// (all sessions terminal, fault arm live, zero client throws) and emits
// BENCH_soak.json.
//
//   bench_soak [--sessions N] [--tenants N] [--daySeconds S]
//              [--deliveryThreads N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "soak/driver.h"
#include "soak/traffic_mix.h"

namespace anno {
namespace {

using Clock = std::chrono::steady_clock;

int run(std::size_t sessions, std::size_t tenants, double daySeconds,
        unsigned deliveryThreads) {
  bench::printHeader(
      "Fleet soak throughput (mix -> scheduler -> fleet report)");

  soak::SoakConfig cfg;
  cfg.mix.sessions = sessions;
  cfg.mix.tenantCount = tenants;
  cfg.mix.daySeconds = daySeconds;
  cfg.deliveryThreads = deliveryThreads;

  const Clock::time_point start = Clock::now();
  const soak::FleetSoakReport r = soak::runSoak(cfg);
  const double wall = std::chrono::duration<double>(Clock::now() - start)
                          .count();

  bench::Table table({"metric", "value"});
  table.addRow({"sessions", std::to_string(r.sessionsJoined)});
  table.addRow({"wall seconds", bench::fmt(wall, 3)});
  table.addRow({"sessions / wall-second",
                bench::fmt(static_cast<double>(r.sessionsJoined) / wall, 0)});
  table.addRow({"scheduler ticks / wall-second",
                bench::fmt(static_cast<double>(r.ticks) / wall, 0)});
  table.addRow({"peak concurrent sessions",
                std::to_string(r.peakConcurrentSessions)});
  table.addRow({"served hours", bench::fmt(r.servedHours, 2)});
  table.addRow({"cache hit rate", bench::fmt(r.cacheHitRate, 4)});
  table.addRow({"engine passes", std::to_string(r.cacheFills)});
  table.addRow({"engine wall-s / served-hour",
                bench::fmt(r.engineSecondsPerServedHour, 4)});
  table.addRow({"W saved / million sessions",
                bench::fmt(r.wattsSavedPerMillionSessions, 0)});
  table.addRow({"fault sessions (decoded damaged)",
                std::to_string(r.faultSessions)});
  table.print();

  int failures = 0;
  const auto check = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::printf("SELF-CHECK FAILED: %s\n", what);
      ++failures;
    }
  };
  check(r.sessionsJoined == r.sessionsPlanned, "all sessions joined");
  check(r.sessionsCompleted + r.sessionsLeft == r.sessionsJoined,
        "all sessions terminal");
  check(r.faultSessions > 0, "fault arm live");
  check(r.faultThrows == 0, "client never throws");
  check(r.cacheFills < r.sessionsJoined,
        "engine passes sublinear in sessions");
  check(r.wattsSavedPerMillionSessions > 0.0, "positive fleet savings");

  const std::string path = bench::jsonPath("BENCH_soak.json");
  if (FILE* f = std::fopen(path.c_str(), "wb")) {
    std::fprintf(
        f,
        "{\n"
        "  \"sessions\": %zu,\n"
        "  \"tenants\": %zu,\n"
        "  \"day_seconds\": %g,\n"
        "  \"delivery_threads\": %u,\n"
        "  \"wall_seconds\": %.6g,\n"
        "  \"sessions_per_wall_second\": %.6g,\n"
        "  \"ticks_per_wall_second\": %.6g,\n"
        "  \"peak_concurrent_sessions\": %zu,\n"
        "  \"served_hours\": %.6g,\n"
        "  \"cache_hit_rate\": %.6g,\n"
        "  \"engine_passes\": %llu,\n"
        "  \"engine_seconds_per_served_hour\": %.6g,\n"
        "  \"watts_saved_per_million_sessions\": %.6g,\n"
        "  \"pass\": %s\n"
        "}\n",
        r.sessionsJoined, tenants, daySeconds, deliveryThreads, wall,
        static_cast<double>(r.sessionsJoined) / wall,
        static_cast<double>(r.ticks) / wall, r.peakConcurrentSessions,
        r.servedHours, r.cacheHitRate,
        static_cast<unsigned long long>(r.cacheFills),
        r.engineSecondsPerServedHour, r.wattsSavedPerMillionSessions,
        failures == 0 ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace anno

int main(int argc, char** argv) {
  std::size_t sessions = 20000;
  std::size_t tenants = 8;
  double daySeconds = 240.0;
  unsigned deliveryThreads = 1;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--sessions") == 0) {
      sessions = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      tenants = static_cast<std::size_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--daySeconds") == 0) {
      daySeconds = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--deliveryThreads") == 0) {
      deliveryThreads = static_cast<unsigned>(std::atoi(argv[i + 1]));
    }
  }
  return anno::run(sessions, tenants, daySeconds, deliveryThreads);
}
