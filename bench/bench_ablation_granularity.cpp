// Ablation: per-scene vs per-frame backlight adaptation.
//
// Paper Sec. 4.3: "Sometimes, better results are obtained if we allow
// backlight changes for each frame (but it may introduce some flicker)."
// This bench quantifies both sides, plus the smoothed per-frame variant.
#include <memory>

#include "bench_util.h"
#include "core/annotate.h"
#include "core/runtime.h"
#include "media/clipgen.h"
#include "player/baselines.h"
#include "player/playback.h"
#include "power/power.h"

using namespace anno;

int main() {
  bench::printHeader("Ablation: per-scene vs per-frame backlight adaptation");
  const power::MobileDevicePower devicePower = power::makeIpaq5555Power();
  const display::DeviceModel& device = devicePower.displayDevice();

  bench::Table table({"clip", "granularity", "bl_savings_pct", "switches",
                      "switches_per_sec"});
  player::PlaybackConfig cfg;
  cfg.qualityEvalStride = 1 << 20;
  for (media::PaperClip clipId :
       {media::PaperClip::kTheMovie, media::PaperClip::kShrek2}) {
    const media::VideoClip clip =
        media::generatePaperClip(clipId, 0.15, 96, 72);

    for (core::Granularity g :
         {core::Granularity::kPerScene, core::Granularity::kPerFrame}) {
      core::AnnotatorConfig acfg;
      acfg.granularity = g;
      const core::AnnotationTrack track = core::annotateClip(clip, acfg);
      const core::BacklightSchedule schedule =
          core::buildSchedule(track, 2, device);
      const media::VideoClip compensated =
          core::compensateClip(clip, track, 2, device);
      player::AnnotationPolicy policy(schedule);
      const player::PlaybackReport r =
          player::play(clip, compensated, policy, devicePower, cfg);
      table.addRow(
          {clip.name,
           g == core::Granularity::kPerScene ? "per-scene" : "per-frame",
           bench::pct(r.backlightSavings()),
           std::to_string(r.backlightSwitches),
           bench::fmt(r.backlightSwitches / clip.durationSeconds(), 1)});
    }

    // Smoothed per-frame: the anti-flicker postprocessing of [4] that the
    // per-scene annotation scheme makes unnecessary.
    {
      core::AnnotatorConfig acfg;
      acfg.granularity = core::Granularity::kPerFrame;
      const core::AnnotationTrack track = core::annotateClip(clip, acfg);
      const core::BacklightSchedule schedule =
          core::buildSchedule(track, 2, device);
      player::SmoothedPolicy policy(
          std::make_unique<player::AnnotationClientPolicy>(schedule), device,
          6);
      const player::PlaybackReport r =
          player::play(clip, clip, policy, devicePower, cfg);
      table.addRow({clip.name, "per-frame+smoothed",
                    bench::pct(r.backlightSavings()),
                    std::to_string(r.backlightSwitches),
                    bench::fmt(r.backlightSwitches / clip.durationSeconds(),
                               1)});
    }
  }
  table.print();
  std::printf(
      "\nReading: per-frame gains a few points of savings but switches the\n"
      "backlight every few frames; per-scene keeps switches at scene rate,\n"
      "which is why the paper 'avoids a postprocessing step by limiting\n"
      "backlight changes'.\n");
  table.printCsv("ablation_granularity");
  return 0;
}
