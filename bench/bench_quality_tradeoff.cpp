// Figure 5: "Quality trade-off shown in a histogram" -- how the clipping
// budget (percent of the brightest pixels lost) moves the luminance ceiling
// and what that buys in backlight level, per quality step.
#include "bench_util.h"
#include "compensate/planner.h"
#include "core/annotate.h"
#include "media/clipgen.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Figure 5: clipped-pixel quality trade-off (per-scene histograms)");
  const display::DeviceModel device =
      display::makeDevice(display::KnownDevice::kIpaq5555);

  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kIRobot, 0.10, 96, 72);
  const core::AnnotationTrack track = core::annotateClip(clip);
  const auto stats = media::profileClip(clip);

  bench::Table table({"scene", "frames", "q_pct", "safe_luma", "ceiling",
                      "backlight", "clipped_pct", "bl_savings_pct"});
  std::size_t printed = 0;
  for (std::size_t s = 0; s < track.scenes.size() && printed < 6; ++s) {
    const core::SceneAnnotation& scene = track.scenes[s];
    media::Histogram sceneHist;
    for (std::uint32_t f = scene.span.firstFrame; f <= scene.span.lastFrame();
         ++f) {
      sceneHist.accumulate(stats[f].histogram);
    }
    for (std::size_t q = 0; q < track.qualityLevels.size(); ++q) {
      const compensate::CompensationPlan plan =
          compensate::planForLuma(device, scene.safeLuma[q]);
      table.addRow(
          {std::to_string(s), std::to_string(scene.span.frameCount),
           bench::pct(track.qualityLevels[q], 0),
           std::to_string(scene.safeLuma[q]),
           bench::fmt(plan.lumaCeiling, 1),
           std::to_string(plan.backlightLevel),
           bench::pct(compensate::plannedClipFraction(plan, sceneHist), 2),
           bench::pct(device.backlightSavings(plan.backlightLevel))});
    }
    ++printed;
  }
  table.print();
  std::printf(
      "\nInvariant (tested): clipped_pct never exceeds the requested q.\n"
      "The ceiling drops as q grows, buying lower backlight levels --\n"
      "\"we can safely allow clipping for some of these pixels without\n"
      "noticeable quality loss\" (Sec. 4.3).\n");
  table.printCsv("fig5_quality_tradeoff");
  return 0;
}
