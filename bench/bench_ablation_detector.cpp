// Ablation: the paper's max-luminance scene heuristic vs full-histogram
// (EMD) scene detection.  The cheap heuristic reads ONE number per frame;
// the histogram detector compares 256 bins -- when does the extra cost buy
// anything?
#include "bench_util.h"
#include "core/annotate.h"
#include "core/runtime.h"
#include "media/clipgen.h"
#include "player/baselines.h"
#include "player/playback.h"
#include "power/power.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Ablation: max-luminance vs histogram-EMD scene detection");
  const power::MobileDevicePower devicePower = power::makeIpaq5555Power();
  const display::DeviceModel& device = devicePower.displayDevice();
  player::PlaybackConfig cfg;
  cfg.qualityEvalStride = 6;

  bench::Table table({"clip", "detector", "scenes", "switches",
                      "bl_savings_pct", "mean_emd"});
  for (media::PaperClip clipId :
       {media::PaperClip::kTheMovie, media::PaperClip::kShrek2,
        media::PaperClip::kIceAge}) {
    const media::VideoClip clip =
        media::generatePaperClip(clipId, 0.12, 96, 72);
    for (core::SceneDetector det :
         {core::SceneDetector::kMaxLuma, core::SceneDetector::kHistogramEmd}) {
      core::AnnotatorConfig acfg;
      acfg.detector = det;
      const core::AnnotationTrack track = core::annotateClip(clip, acfg);
      const core::BacklightSchedule schedule =
          core::buildSchedule(track, 2, device);
      const media::VideoClip compensated =
          core::compensateClip(clip, track, 2, device);
      player::AnnotationPolicy policy(schedule);
      const player::PlaybackReport r =
          player::play(clip, compensated, policy, devicePower, cfg);
      table.addRow({clip.name,
                    det == core::SceneDetector::kMaxLuma ? "max-luma"
                                                         : "histogram-emd",
                    std::to_string(track.scenes.size()),
                    std::to_string(r.backlightSwitches),
                    bench::pct(r.backlightSavings()),
                    bench::fmt(r.meanEmd, 2)});
    }
  }
  table.print();
  std::printf(
      "\nReading: on most clips the detectors tie (themovie, ice_age) -- the\n"
      "quantity that matters for backlight IS the luminance ceiling, and\n"
      "the cheap heuristic tracks it.  Where distinct scenes share a peak\n"
      "but differ in body (shrek2), the EMD detector's extra cuts let dark\n"
      "sub-scenes earn their own dimmer level (+6 points here), at ~256x\n"
      "the per-frame comparison cost and a few more backlight switches --\n"
      "the server-side trade the annotator's `detector` knob exposes.\n");
  table.printCsv("ablation_detector");
  return 0;
}
