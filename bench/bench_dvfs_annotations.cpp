// Annotation-driven DVFS (the paper's Sec. 3 application: "frequency/
// voltage scaling can be applied before decoding is finished, because the
// annotated information is available early from the data stream").
//
// GOP-coded clips alternate heavy I frames with cheap P frames.  Annotated
// DVFS knows each frame's decode workload ahead of time and picks the
// lowest feasible operating point; reactive DVFS predicts from the previous
// frame and blows deadlines at every P->I transition; race-to-idle burns
// the top OPP always.
#include "bench_util.h"
#include "media/clipgen.h"
#include "media/codec.h"
#include "power/dvfs.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Sec. 3 application: annotation-driven CPU DVFS (XScale PXA255)");
  const power::DvfsCpu cpu = power::DvfsCpu::xscalePxa255();
  // Work model scaled so a (bench-sized) I frame needs close to the frame
  // deadline at the top OPP -- the software-MPEG reality of the paper's
  // 400 MHz PDA playing at its limit.
  power::DecodeWorkModel work;
  work.cyclesPerByte = 6000.0;
  work.cyclesPerPixel = 500.0;

  bench::Table table(
      {"clip", "policy", "cpu_energy_J", "avg_freq_MHz", "missed_deadlines",
       "savings_vs_race_pct"});
  for (media::PaperClip clipId :
       {media::PaperClip::kTheMovie, media::PaperClip::kIceAge,
        media::PaperClip::kOfficeXp}) {
    const media::VideoClip clip =
        media::generatePaperClip(clipId, 0.10, 96, 72);
    const media::EncodedClip enc = media::encodeClip(clip, {75, 12, 1.5});
    const power::ComplexityTrack track =
        power::ComplexityTrack::fromEncodedClip(enc, work);

    const power::DvfsResult race =
        power::scheduleRaceToIdle(cpu, track, clip.fps);
    const power::DvfsResult annotated =
        power::scheduleAnnotated(cpu, track, clip.fps);
    const power::DvfsResult reactive =
        power::scheduleReactive(cpu, track, clip.fps);

    const auto addRow = [&](const char* name, const power::DvfsResult& r) {
      table.addRow({clip.name, name, bench::fmt(r.energyJoules, 3),
                    bench::fmt(r.averageFreqMHz, 0),
                    std::to_string(r.missedDeadlines),
                    bench::pct(r.savingsVs(race))});
    };
    addRow("race-to-idle", race);
    addRow("reactive", reactive);
    addRow("annotated", annotated);
  }
  table.print();
  std::printf(
      "\nAnnotation track cost: the per-frame workload annotation adds ~1-2\n"
      "bytes/frame (delta-varint) to the stream.  Reading: annotated DVFS\n"
      "matches or beats reactive on energy with ZERO deadline misses --\n"
      "reactive mispredicts every P->I transition, the same failure mode\n"
      "the paper describes for history-based backlight prediction.\n");
  table.printCsv("dvfs_annotations");
  return 0;
}
