// Robustness of the stream under packet loss: GOP length trades compression
// (smaller streams, longer radio sleep) against loss resilience (a lost
// frame poisons the P chain until the next I frame).  Context for picking
// the codec settings the annotations ride on.
#include "bench_util.h"
#include "media/clipgen.h"
#include "quality/metrics.h"
#include "stream/loss.h"

using namespace anno;

int main() {
  bench::printHeader(
      "Packet-loss resilience vs GOP length (802.11b, concealment)");
  const media::VideoClip clip =
      media::generatePaperClip(media::PaperClip::kSpiderman2, 0.08, 96, 72);
  const stream::Link wifi = stream::makeReferencePath().lastHop();

  bench::Table table({"gop", "stream_KB", "loss_pct", "concealed_frames",
                      "mean_psnr_db"});
  for (int gop : {1, 6, 12, 24}) {
    const media::EncodedClip enc = media::encodeClip(clip, {75, gop, 1.5});
    for (double loss : {0.0, 0.01, 0.05}) {
      const stream::ConcealedPlayback out = stream::decodeWithConcealment(
          enc, stream::deliverFrames(enc, wifi, {loss, 11}));
      double psnrSum = 0.0;
      int n = 0;
      for (std::size_t i = 0; i < clip.frames.size(); i += 4) {
        psnrSum += quality::psnr(clip.frames[i], out.video.frames[i]);
        ++n;
      }
      table.addRow({std::to_string(gop),
                    bench::fmt(enc.totalBytes() / 1024.0, 0),
                    bench::pct(loss, 0),
                    std::to_string(out.concealedFrames),
                    bench::fmt(psnrSum / n, 1)});
    }
  }
  table.print();
  std::printf(
      "\nReading: long GOPs shrink the stream (deeper radio sleep, Fig. in\n"
      "bench_nic_scheduling) but amplify loss damage; intra-only confines\n"
      "damage to the lost frames.  The backlight annotations are untouched\n"
      "either way -- scene luminance ceilings remain valid over concealed\n"
      "frames, since concealment repeats frames from the same scene.\n");
  table.printCsv("loss_resilience");
  return 0;
}
